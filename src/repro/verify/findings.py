"""Lint findings: the machine-readable diagnostic record + waivers.

Every lint rule emits :class:`Finding` objects (rule id, severity,
file:line:col, message).  Findings can be *waived* two ways, mirroring
how real lint flows silence known-acceptable violations:

* an in-source comment on the offending line (or the line above)
  containing ``repro-lint: waive`` — optionally scoped to rules with
  ``repro-lint: waive=WIDTH,UNUSED``.  The marker text is what matters,
  so it works behind ``//`` (Verilog), ``--`` (VHDL) or ``#`` comment
  leaders alike;
* a waiver file of ``RULE:FILE_GLOB:LINE`` entries (``*`` wildcards
  allowed for any field; ``#`` starts a comment).

Waived findings stay in the report (marked) but do not make it
*blocking* — the lint exit code only reflects unwaived findings.
"""

from __future__ import annotations

import fnmatch
import json
import re
from dataclasses import dataclass, field

SEV_ERROR = "error"
SEV_WARNING = "warning"

_WAIVE_RE = re.compile(r"repro-lint:\s*waive(?:=([A-Za-z0-9_,\-]+))?")


@dataclass
class Finding:
    """One lint diagnostic, machine-readable and renderable."""

    rule: str
    severity: str           # SEV_ERROR | SEV_WARNING
    message: str
    file: str
    line: int
    col: int = 0
    waived: bool = False
    waived_by: str = ""     # "comment" | "waiver-file" | ""

    def location(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"

    def format(self) -> str:
        tag = f" [waived: {self.waived_by}]" if self.waived else ""
        return (f"{self.location()}: {self.severity}: "
                f"{self.rule}: {self.message}{tag}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "waived": self.waived,
            "waived_by": self.waived_by,
        }


@dataclass(frozen=True)
class WaiverEntry:
    """One waiver-file line: rule / file-glob / line (``*`` = any)."""

    rule: str
    file_glob: str = "*"
    line: str = "*"

    def matches(self, finding: Finding) -> bool:
        if self.rule != "*" and self.rule != finding.rule:
            return False
        if not fnmatch.fnmatch(finding.file, self.file_glob):
            return False
        return self.line in ("*", str(finding.line))


def parse_waiver_file(text: str, filename: str = "<waivers>") -> list[WaiverEntry]:
    entries: list[WaiverEntry] = []
    for n, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(":")
        if len(parts) > 3 or not parts[0]:
            raise ValueError(
                f"{filename}:{n}: bad waiver {raw.strip()!r}; "
                "expected RULE[:FILE_GLOB[:LINE]]"
            )
        parts += ["*"] * (3 - len(parts))
        entries.append(WaiverEntry(parts[0], parts[1] or "*", parts[2] or "*"))
    return entries


def apply_waivers(
    findings: list[Finding],
    sources: dict[str, str],
    entries: list[WaiverEntry] = (),
) -> None:
    """Mark findings waived by in-source comments or waiver entries.

    *sources* maps filename -> source text, used to scan for the
    ``repro-lint: waive`` comment on the finding's line or the one above.
    """
    line_cache: dict[str, list[str]] = {
        name: text.splitlines() for name, text in sources.items()
    }
    for finding in findings:
        lines = line_cache.get(finding.file, [])
        for ln in (finding.line, finding.line - 1):
            if not (1 <= ln <= len(lines)):
                continue
            m = _WAIVE_RE.search(lines[ln - 1])
            if m is None:
                continue
            rules = m.group(1)
            if rules is None or finding.rule in rules.split(","):
                finding.waived = True
                finding.waived_by = "comment"
                break
        if finding.waived:
            continue
        for entry in entries:
            if entry.matches(finding):
                finding.waived = True
                finding.waived_by = "waiver-file"
                break


@dataclass
class LintReport:
    """All findings for one lint run (possibly several files)."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def blocking(self) -> list[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def clean(self) -> bool:
        return not self.blocking

    def format_text(self) -> str:
        if not self.findings:
            return "lint: clean (no findings)"
        lines = [f.format() for f in self.findings]
        waived = sum(1 for f in self.findings if f.waived)
        lines.append(
            f"lint: {len(self.findings)} finding(s), {waived} waived, "
            f"{len(self.blocking)} blocking"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "blocking": len(self.blocking),
            },
            indent=2,
            sort_keys=True,
        )
