"""Static lint: a pass pipeline over the shared HDL AST.

Because both frontends lower to one AST (:mod:`repro.hdl.ast`), a single
rule set serves Verilog and VHDL designs alike — the same way the
elaborator serves both.  The pipeline is deliberately *static*: it folds
parameters with their declared defaults, resolves declared widths, and
never needs to elaborate (so it can diagnose designs the elaborator
would reject).

Rules
-----
``MULTIDRIVEN``   a net driven from more than one place (two continuous
                  assignments, two always blocks, instance output vs.
                  local driver, ...)
``LATCH``         a combinational always block assigns a signal on some
                  but not all control paths (storage is inferred)
``WIDTH``         implicit truncation in an assignment, or a port
                  connection whose width differs from the port
``CASE``          a case statement with no default arm that does not
                  cover every subject value
``UNUSED``        a declared net that is never read (outputs exempt)
``UNDRIVEN``      a net that is read but never driven (inputs exempt)
``ASYNCRESET``    an async reset in the sensitivity list that the body
                  does not test first / with the matching polarity, or
                  one reset used with both polarities across blocks
``SNOOPDRIVE``    a ``snoop_``-prefixed output port assigned on some but
                  not all paths of a clocked block — a coherence probe
                  response must be driven in every FSM state, or a
                  participant can observe a stale acknowledge
``SYNTAX``        a frontend :class:`~repro.hdl.HDLSyntaxError`,
                  rendered as a finding instead of a traceback

Every rule is exercised positively and negatively by
``tests/verify/test_lint_rules.py``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..hdl import ast
from ..hdl.common import HDLSyntaxError
from .findings import (
    SEV_ERROR,
    SEV_WARNING,
    Finding,
    LintReport,
    WaiverEntry,
    apply_waivers,
)

RULE_MULTIDRIVEN = "MULTIDRIVEN"
RULE_LATCH = "LATCH"
RULE_WIDTH = "WIDTH"
RULE_CASE = "CASE"
RULE_UNUSED = "UNUSED"
RULE_UNDRIVEN = "UNDRIVEN"
RULE_ASYNCRESET = "ASYNCRESET"
RULE_SNOOPDRIVE = "SNOOPDRIVE"
RULE_SYNTAX = "SYNTAX"

#: rule id -> (severity, one-line description)
RULES: dict[str, tuple[str, str]] = {
    RULE_MULTIDRIVEN: (SEV_ERROR, "net driven from multiple places"),
    RULE_LATCH: (SEV_WARNING, "inferred latch in combinational block"),
    RULE_WIDTH: (SEV_WARNING, "width mismatch in assignment or port"),
    RULE_CASE: (SEV_WARNING, "case statement does not cover all values"),
    RULE_UNUSED: (SEV_WARNING, "signal declared but never read"),
    RULE_UNDRIVEN: (SEV_WARNING, "signal read but never driven"),
    RULE_ASYNCRESET: (SEV_WARNING, "inconsistent async reset usage"),
    RULE_SNOOPDRIVE: (SEV_WARNING,
                      "snoop output not driven in every state"),
    RULE_SYNTAX: (SEV_ERROR, "source failed to parse"),
}

#: maximum subject width for exhaustive case-coverage counting
_MAX_CASE_WIDTH = 20


# ---------------------------------------------------------------------------
# Static module model: folded params + declared widths
# ---------------------------------------------------------------------------


def _fold(expr: Optional[ast.Expr], params: dict[str, int]) -> Optional[int]:
    """Evaluate *expr* using parameter values only; None if not constant."""
    if expr is None:
        return None
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Ident):
        return params.get(expr.name)
    if isinstance(expr, ast.Unary):
        v = _fold(expr.operand, params)
        if v is None:
            return None
        if expr.op == "-":
            return -v
        if expr.op == "+":
            return v
        if expr.op == "!":
            return 0 if v else 1
        return None
    if isinstance(expr, ast.Binary):
        lv = _fold(expr.left, params)
        rv = _fold(expr.right, params)
        if lv is None or rv is None:
            return None
        op = expr.op
        try:
            if op == "+":
                return lv + rv
            if op == "-":
                return lv - rv
            if op == "*":
                return lv * rv
            if op == "/":
                return lv // rv if rv else 0
            if op == "%":
                return lv % rv if rv else 0
            if op == "<<":
                return lv << rv
            if op == ">>":
                return lv >> rv
            if op == "==":
                return 1 if lv == rv else 0
            if op == "!=":
                return 1 if lv != rv else 0
            if op == "<":
                return 1 if lv < rv else 0
            if op == "<=":
                return 1 if lv <= rv else 0
            if op == ">":
                return 1 if lv > rv else 0
            if op == ">=":
                return 1 if lv >= rv else 0
            if op == "&":
                return lv & rv
            if op == "|":
                return lv | rv
            if op == "^":
                return lv ^ rv
        except (ValueError, OverflowError):  # pragma: no cover - defensive
            return None
        return None
    if isinstance(expr, ast.Ternary):
        c = _fold(expr.cond, params)
        if c is None:
            return None
        return _fold(expr.then if c else expr.other, params)
    return None


class _ModuleInfo:
    """Folded parameters and declared widths for one module."""

    def __init__(self, mod: ast.ModuleDecl,
                 param_over: Optional[dict[str, int]] = None) -> None:
        self.mod = mod
        self.params: dict[str, int] = {}
        self.widths: dict[str, Optional[int]] = {}
        self.mem_widths: dict[str, Optional[int]] = {}
        self.kinds: dict[str, str] = {}
        self.dirs: dict[str, Optional[str]] = {}
        self.decl_locs: dict[str, ast.Loc] = {}
        for item in mod.items:
            if isinstance(item, ast.ParamDecl):
                if param_over and not item.is_local and item.name in param_over:
                    self.params[item.name] = param_over[item.name]
                    continue
                v = _fold(item.value, self.params)
                if v is not None:
                    self.params[item.name] = v
            elif isinstance(item, ast.NetDecl):
                self._declare(item)

    def _declare(self, decl: ast.NetDecl) -> None:
        if decl.kind == "integer":
            width: Optional[int] = 32
        elif decl.rng is None:
            width = 1
        else:
            msb = _fold(decl.rng.msb, self.params)
            lsb = _fold(decl.rng.lsb, self.params)
            width = (msb - lsb + 1) if (msb is not None and lsb is not None
                                        and msb >= lsb) else None
        self.kinds[decl.name] = decl.kind
        self.dirs[decl.name] = decl.direction
        self.decl_locs[decl.name] = decl.loc
        if decl.mem_range is not None:
            self.mem_widths[decl.name] = width
        else:
            self.widths[decl.name] = width

    # -- expression/lvalue widths (None = unknown or context-sized) -------

    def expr_width(self, e: ast.Expr) -> Optional[int]:
        if isinstance(e, (ast.Literal, ast.WildcardLiteral)):
            return e.width  # None for unsized literals (context width)
        if isinstance(e, ast.Ident):
            if e.name in self.params:
                return None  # parameters size from context
            return self.widths.get(e.name)
        if isinstance(e, ast.Index):
            if e.name in self.mem_widths:
                return self.mem_widths[e.name]
            return 1
        if isinstance(e, ast.Slice):
            msb = _fold(e.msb, self.params)
            lsb = _fold(e.lsb, self.params)
            if msb is None or lsb is None or msb < lsb:
                return None
            return msb - lsb + 1
        if isinstance(e, ast.Concat):
            widths = [self.expr_width(p) for p in e.parts]
            if any(w is None for w in widths):
                return None
            return sum(widths)  # type: ignore[arg-type]
        if isinstance(e, ast.Repeat):
            count = _fold(e.count, self.params)
            w = self.expr_width(e.value)
            if count is None or w is None:
                return None
            return count * w
        if isinstance(e, ast.Unary):
            if e.op in ("~", "-", "+"):
                return self.expr_width(e.operand)
            return 1  # reductions and !
        if isinstance(e, ast.Binary):
            if e.op in ("<", ">", "<=", ">=", "==", "!=", "&&", "||"):
                return 1
            if e.op in ("<<", ">>"):
                return self.expr_width(e.left)
            lw = self.expr_width(e.left)
            rw = self.expr_width(e.right)
            if lw is None or rw is None:
                return None
            return max(lw, rw)
        if isinstance(e, ast.Ternary):
            tw = self.expr_width(e.then)
            fw = self.expr_width(e.other)
            if tw is None or fw is None:
                return None
            return max(tw, fw)
        return None

    def lvalue_width(self, lv: ast.Lvalue) -> Optional[int]:
        if isinstance(lv, ast.LvId):
            return self.widths.get(lv.name)
        if isinstance(lv, ast.LvIndex):
            if lv.name in self.mem_widths:
                return self.mem_widths[lv.name]
            return 1
        if isinstance(lv, ast.LvSlice):
            msb = _fold(lv.msb, self.params)
            lsb = _fold(lv.lsb, self.params)
            if msb is None or lsb is None or msb < lsb:
                return None
            return msb - lsb + 1
        if isinstance(lv, ast.LvConcat):
            widths = [self.lvalue_width(p) for p in lv.parts]
            if any(w is None for w in widths):
                return None
            return sum(widths)  # type: ignore[arg-type]
        return None


# ---------------------------------------------------------------------------
# AST walking helpers
# ---------------------------------------------------------------------------


def _walk_stmts(stmt: Optional[ast.Stmt]) -> Iterator[ast.Stmt]:
    """Pre-order traversal of a statement tree."""
    if stmt is None:
        return
    yield stmt
    if isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            yield from _walk_stmts(s)
    elif isinstance(stmt, ast.If):
        yield from _walk_stmts(stmt.then)
        yield from _walk_stmts(stmt.other)
    elif isinstance(stmt, ast.Case):
        for item in stmt.items:
            yield from _walk_stmts(item.body)
    elif isinstance(stmt, ast.For):
        yield from _walk_stmts(stmt.body)


def _expr_reads(e: Optional[ast.Expr], out: set[str]) -> None:
    """Collect every identifier an expression reads."""
    if e is None:
        return
    if isinstance(e, ast.Ident):
        out.add(e.name)
    elif isinstance(e, ast.Index):
        out.add(e.name)
        _expr_reads(e.index, out)
    elif isinstance(e, ast.Slice):
        out.add(e.name)
        _expr_reads(e.msb, out)
        _expr_reads(e.lsb, out)
    elif isinstance(e, ast.Concat):
        for p in e.parts:
            _expr_reads(p, out)
    elif isinstance(e, ast.Repeat):
        _expr_reads(e.count, out)
        _expr_reads(e.value, out)
    elif isinstance(e, ast.Unary):
        _expr_reads(e.operand, out)
    elif isinstance(e, ast.Binary):
        _expr_reads(e.left, out)
        _expr_reads(e.right, out)
    elif isinstance(e, ast.Ternary):
        _expr_reads(e.cond, out)
        _expr_reads(e.then, out)
        _expr_reads(e.other, out)


def _lvalue_targets(lv: ast.Lvalue) -> list[tuple[str, bool]]:
    """``(name, is_full_write)`` pairs assigned by an lvalue."""
    if isinstance(lv, ast.LvId):
        return [(lv.name, True)]
    if isinstance(lv, (ast.LvIndex, ast.LvSlice)):
        return [(lv.name, False)]
    if isinstance(lv, ast.LvConcat):
        out: list[tuple[str, bool]] = []
        for p in lv.parts:
            out.extend(_lvalue_targets(p))
        return out
    return []


def _lvalue_reads(lv: ast.Lvalue, out: set[str]) -> None:
    """Identifiers an lvalue *reads* (index/slice bound expressions)."""
    if isinstance(lv, ast.LvIndex):
        _expr_reads(lv.index, out)
    elif isinstance(lv, ast.LvSlice):
        _expr_reads(lv.msb, out)
        _expr_reads(lv.lsb, out)
    elif isinstance(lv, ast.LvConcat):
        for p in lv.parts:
            _lvalue_reads(p, out)


def _stmt_reads(stmt: ast.Stmt, out: set[str]) -> None:
    for s in _walk_stmts(stmt):
        if isinstance(s, ast.Assign):
            _expr_reads(s.rhs, out)
            _lvalue_reads(s.lhs, out)
        elif isinstance(s, ast.If):
            _expr_reads(s.cond, out)
        elif isinstance(s, ast.Case):
            _expr_reads(s.subject, out)
            for item in s.items:
                for m in item.matches or ():
                    _expr_reads(m, out)
        elif isinstance(s, ast.For):
            _expr_reads(s.init, out)
            _expr_reads(s.cond, out)
            _expr_reads(s.step, out)


def _stmt_writes(stmt: ast.Stmt) -> list[tuple[str, bool, ast.Loc]]:
    out: list[tuple[str, bool, ast.Loc]] = []
    for s in _walk_stmts(stmt):
        if isinstance(s, ast.Assign):
            for name, full in _lvalue_targets(s.lhs):
                out.append((name, full, s.loc))
        elif isinstance(s, ast.For):
            out.append((s.var, True, s.loc))
    return out


def _behavioral_items(
    mod: ast.ModuleDecl,
) -> Iterator[ast.Item]:
    """Module items including those inside generate loops (un-unrolled)."""
    def rec(items: Iterable) -> Iterator[ast.Item]:
        for item in items:
            if isinstance(item, ast.GenerateFor):
                yield from rec(item.items)
            else:
                yield item

    yield from rec(mod.items)


# ---------------------------------------------------------------------------
# Rule passes
# ---------------------------------------------------------------------------


def _finding(rule: str, loc: ast.Loc, message: str) -> Finding:
    severity = RULES[rule][0]
    return Finding(rule, severity, message, loc.filename, loc.line, loc.col)


def _pass_multidriven(
    info: _ModuleInfo, modules: dict[str, ast.ModuleDecl]
) -> list[Finding]:
    cont_full: dict[str, list[ast.Loc]] = {}
    cont_partial: dict[str, list[ast.Loc]] = {}
    always_drv: dict[str, list[ast.Loc]] = {}
    inst_drv: dict[str, list[ast.Loc]] = {}

    for item in _behavioral_items(info.mod):
        if isinstance(item, ast.ContAssign):
            for name, full in _lvalue_targets(item.lhs):
                (cont_full if full else cont_partial).setdefault(
                    name, []
                ).append(item.loc)
        elif isinstance(item, ast.AlwaysBlock):
            block_targets = {name for name, _full, _loc
                             in _stmt_writes(item.body)}
            for name in block_targets:
                always_drv.setdefault(name, []).append(item.loc)
        elif isinstance(item, ast.Instance):
            child = modules.get(item.module)
            if child is None:
                continue
            out_ports = {p.name for p in child.ports()
                         if p.direction == ast.DIR_OUTPUT}
            for port, conn in item.conns.items():
                if port not in out_ports or conn is None:
                    continue
                if isinstance(conn, (ast.Ident, ast.Index, ast.Slice)):
                    inst_drv.setdefault(conn.name, []).append(item.loc)

    findings: list[Finding] = []
    names = sorted(set(cont_full) | set(cont_partial) | set(always_drv)
                   | set(inst_drv))
    for name in names:
        cf = cont_full.get(name, [])
        cp = cont_partial.get(name, [])
        ab = always_drv.get(name, [])
        iv = inst_drv.get(name, [])
        # loop variables are conventionally shared across procedural code
        is_loop_var = info.kinds.get(name) == "integer"
        conflict = None
        if len(cf) >= 2:
            conflict = "multiple continuous assignments"
        elif cf and cp:
            conflict = "full and partial continuous assignments"
        elif (cf or cp) and ab:
            conflict = "continuous assignment and always block"
        elif len(ab) >= 2 and not is_loop_var:
            conflict = f"{len(ab)} always blocks"
        elif iv and (cf or cp or ab):
            conflict = "instance output and local driver"
        elif len(iv) >= 2:
            conflict = "multiple instance outputs"
        if conflict is None:
            continue
        loc = (cf + cp + ab + iv)[0]
        findings.append(_finding(
            RULE_MULTIDRIVEN, loc,
            f"net '{name}' is driven from multiple places ({conflict})",
        ))
    return findings


def _assign_paths(stmt: ast.Stmt) -> tuple[set[str], set[str]]:
    """``(always_assigned, sometimes_assigned)`` names for a statement."""
    if isinstance(stmt, ast.Block):
        always: set[str] = set()
        sometimes: set[str] = set()
        for s in stmt.stmts:
            a, m = _assign_paths(s)
            always |= a
            sometimes |= m
        return always, sometimes
    if isinstance(stmt, ast.Assign):
        names = {name for name, _full in _lvalue_targets(stmt.lhs)}
        return set(names), set(names)
    if isinstance(stmt, ast.If):
        t_a, t_s = _assign_paths(stmt.then)
        if stmt.other is None:
            return set(), t_s
        e_a, e_s = _assign_paths(stmt.other)
        return t_a & e_a, t_s | e_s
    if isinstance(stmt, ast.Case):
        arms = [_assign_paths(item.body) for item in stmt.items]
        sometimes = set().union(*(s for _a, s in arms)) if arms else set()
        has_default = any(item.matches is None for item in stmt.items)
        if not has_default or not arms:
            return set(), sometimes
        always = arms[0][0]
        for a, _s in arms[1:]:
            always &= a
        return always, sometimes
    if isinstance(stmt, ast.For):
        # the init assignment of the loop variable always executes
        _b_a, b_s = _assign_paths(stmt.body)
        return {stmt.var}, {stmt.var} | b_s
    return set(), set()


def _pass_latch(info: _ModuleInfo) -> list[Finding]:
    findings: list[Finding] = []
    for item in _behavioral_items(info.mod):
        if not isinstance(item, ast.AlwaysBlock) or item.sensitivity is not None:
            continue
        always, sometimes = _assign_paths(item.body)
        for name in sorted(sometimes - always):
            findings.append(_finding(
                RULE_LATCH, item.loc,
                f"'{name}' is not assigned on every path of this "
                "combinational block; storage (a latch) is inferred",
            ))
    return findings


def _pass_width(
    info: _ModuleInfo, modules: dict[str, ast.ModuleDecl]
) -> list[Finding]:
    findings: list[Finding] = []

    def check_assign(lhs: ast.Lvalue, rhs: ast.Expr, loc: ast.Loc) -> None:
        lw = info.lvalue_width(lhs)
        rw = info.expr_width(rhs)
        if lw is None or rw is None or rw <= lw:
            return
        findings.append(_finding(
            RULE_WIDTH, loc,
            f"{rw}-bit expression implicitly truncated to {lw}-bit target",
        ))

    for item in _behavioral_items(info.mod):
        if isinstance(item, ast.ContAssign):
            check_assign(item.lhs, item.rhs, item.loc)
        elif isinstance(item, ast.AlwaysBlock):
            for s in _walk_stmts(item.body):
                if isinstance(s, ast.Assign):
                    check_assign(s.lhs, s.rhs, s.loc)
        elif isinstance(item, ast.Instance):
            child = modules.get(item.module)
            if child is None:
                continue
            over = {name: v for name, expr in item.params.items()
                    if (v := _fold(expr, info.params)) is not None}
            child_info = _ModuleInfo(child, over)
            for port_decl in child.ports():
                conn = item.conns.get(port_decl.name)
                if conn is None:
                    continue
                pw = child_info.widths.get(port_decl.name)
                cw = info.expr_width(conn)
                if pw is None or cw is None or pw == cw:
                    continue
                findings.append(_finding(
                    RULE_WIDTH, item.loc,
                    f"port '{port_decl.name}' of '{item.module}' is "
                    f"{pw}-bit but connected to a {cw}-bit expression",
                ))
    return findings


def _pass_case(info: _ModuleInfo) -> list[Finding]:
    findings: list[Finding] = []
    for item in _behavioral_items(info.mod):
        if not isinstance(item, ast.AlwaysBlock):
            continue
        for s in _walk_stmts(item.body):
            if not isinstance(s, ast.Case):
                continue
            if any(it.matches is None for it in s.items):
                continue  # default arm covers the rest
            width = info.expr_width(s.subject)
            values: set[int] = set()
            exact = True
            for it in s.items:
                for m in it.matches or ():
                    if isinstance(m, ast.WildcardLiteral):
                        exact = False
                        continue
                    v = _fold(m, info.params)
                    if v is None:
                        exact = False
                    else:
                        values.add(v)
            if (exact and width is not None and width <= _MAX_CASE_WIDTH
                    and len(values) == (1 << width)):
                continue  # exhaustive without a default
            missing = ""
            if exact and width is not None and width <= _MAX_CASE_WIDTH:
                missing = (f" ({(1 << width) - len(values)} of "
                           f"{1 << width} values unmatched)")
            findings.append(_finding(
                RULE_CASE, s.loc,
                "case statement has no default arm and does not cover "
                f"every subject value{missing}",
            ))
    return findings


def _module_reads_writes(
    info: _ModuleInfo, modules: dict[str, ast.ModuleDecl]
) -> tuple[set[str], set[str]]:
    reads: set[str] = set()
    writes: set[str] = set()
    for item in _behavioral_items(info.mod):
        if isinstance(item, ast.ContAssign):
            _expr_reads(item.rhs, reads)
            _lvalue_reads(item.lhs, reads)
            writes.update(n for n, _f in _lvalue_targets(item.lhs))
        elif isinstance(item, ast.AlwaysBlock):
            for sens in item.sensitivity or ():
                reads.add(sens.name)
            _stmt_reads(item.body, reads)
            writes.update(n for n, _f, _l in _stmt_writes(item.body))
        elif isinstance(item, ast.Instance):
            child = modules.get(item.module)
            out_ports = (
                {p.name for p in child.ports()
                 if p.direction == ast.DIR_OUTPUT}
                if child is not None else set()
            )
            for expr in item.params.values():
                _expr_reads(expr, reads)
            for port, conn in item.conns.items():
                if conn is None:
                    continue
                if port in out_ports and isinstance(
                    conn, (ast.Ident, ast.Index, ast.Slice)
                ):
                    writes.add(conn.name)
                    if isinstance(conn, ast.Index):
                        _expr_reads(conn.index, reads)
                    elif isinstance(conn, ast.Slice):
                        _expr_reads(conn.msb, reads)
                        _expr_reads(conn.lsb, reads)
                else:
                    _expr_reads(conn, reads)
    return reads, writes


def _pass_unused_undriven(
    info: _ModuleInfo, modules: dict[str, ast.ModuleDecl]
) -> list[Finding]:
    reads, writes = _module_reads_writes(info, modules)
    findings: list[Finding] = []
    declared = sorted(set(info.widths) | set(info.mem_widths))
    for name in declared:
        direction = info.dirs.get(name)
        loc = info.decl_locs[name]
        if name not in reads and direction != ast.DIR_OUTPUT:
            findings.append(_finding(
                RULE_UNUSED, loc, f"'{name}' is declared but never read",
            ))
        if (name in reads and name not in writes
                and direction != ast.DIR_INPUT):
            findings.append(_finding(
                RULE_UNDRIVEN, loc, f"'{name}' is read but never driven",
            ))
    return findings


def _cond_polarity(cond: ast.Expr, name: str) -> Optional[str]:
    """How *cond* tests *name* at its top level: "pos", "neg" or None."""
    if isinstance(cond, ast.Ident) and cond.name == name:
        return "pos"
    if (isinstance(cond, ast.Unary) and cond.op in ("!", "~")
            and isinstance(cond.operand, ast.Ident)
            and cond.operand.name == name):
        return "neg"
    if isinstance(cond, ast.Binary) and cond.op in ("==", "!="):
        ident, lit = cond.left, cond.right
        if isinstance(lit, ast.Ident) and isinstance(ident, ast.Literal):
            ident, lit = lit, ident
        if isinstance(ident, ast.Ident) and ident.name == name and \
                isinstance(lit, ast.Literal):
            truthy = (lit.value != 0) == (cond.op == "==")
            return "pos" if truthy else "neg"
    return None


def _pass_async_reset(info: _ModuleInfo) -> list[Finding]:
    findings: list[Finding] = []
    styles: dict[str, set[str]] = {}
    for item in _behavioral_items(info.mod):
        if not isinstance(item, ast.AlwaysBlock) or not item.sensitivity:
            continue
        if len(item.sensitivity) < 2:
            continue
        body = item.body
        if isinstance(body, ast.Block) and body.stmts:
            body = body.stmts[0]
        for sens in item.sensitivity[1:]:
            name = sens.name
            styles.setdefault(name, set()).add(sens.edge or "pos")
            if not isinstance(body, ast.If):
                findings.append(_finding(
                    RULE_ASYNCRESET, item.loc,
                    f"async reset '{name}' is in the sensitivity list but "
                    "the block body does not start with a reset test",
                ))
                continue
            polarity = _cond_polarity(body.cond, name)
            reads: set[str] = set()
            _expr_reads(body.cond, reads)
            if name not in reads:
                findings.append(_finding(
                    RULE_ASYNCRESET, item.loc,
                    f"async reset '{name}' is in the sensitivity list but "
                    "the first condition does not test it",
                ))
            elif polarity is not None and polarity != (sens.edge or "pos"):
                findings.append(_finding(
                    RULE_ASYNCRESET, item.loc,
                    f"async reset '{name}' is sensitive to the "
                    f"{sens.edge}edge but tested with "
                    f"{'active-high' if polarity == 'pos' else 'active-low'}"
                    " polarity",
                ))
    for name, used in sorted(styles.items()):
        if len(used) > 1:
            loc = info.mod.loc
            findings.append(_finding(
                RULE_ASYNCRESET, loc,
                f"reset '{name}' is used with both posedge and negedge "
                "sensitivity across always blocks",
            ))
    return findings


def _pass_snoopdrive(info: _ModuleInfo) -> list[Finding]:
    """Snoop response ports must be driven in every state of a clocked
    block: a ``snoop_`` output that is only assigned on some paths holds
    its previous value on the others, so a coherence participant polling
    it can see a stale acknowledge or hit flag from an earlier probe."""
    findings: list[Finding] = []
    for item in _behavioral_items(info.mod):
        if not isinstance(item, ast.AlwaysBlock) or not item.sensitivity:
            continue
        always, sometimes = _assign_paths(item.body)
        for name in sorted(sometimes - always):
            if not name.startswith("snoop_"):
                continue
            if info.dirs.get(name) != ast.DIR_OUTPUT:
                continue
            findings.append(_finding(
                RULE_SNOOPDRIVE, item.loc,
                f"snoop port '{name}' is assigned on some but not all "
                "paths of this clocked block; drive it (e.g. a default "
                "clear) in every state so probes never observe a stale "
                "response",
            ))
    return findings


# ---------------------------------------------------------------------------
# Pipeline entry points
# ---------------------------------------------------------------------------

_PASSES = (
    _pass_multidriven,
    _pass_latch,
    _pass_width,
    _pass_case,
    _pass_unused_undriven,
    _pass_async_reset,
    _pass_snoopdrive,
)


def lint_modules(modules: dict[str, ast.ModuleDecl]) -> list[Finding]:
    """Run every pass over every module; deterministic ordering."""
    findings: list[Finding] = []
    for name in sorted(modules):
        info = _ModuleInfo(modules[name])
        for rule_pass in _PASSES:
            if rule_pass in (_pass_multidriven, _pass_width,
                             _pass_unused_undriven):
                findings.extend(rule_pass(info, modules))
            else:
                findings.extend(rule_pass(info))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return findings


def _frontend_for(filename: str, frontend: Optional[str]) -> str:
    if frontend is not None:
        return frontend
    return "vhdl" if filename.endswith((".vhd", ".vhdl")) else "verilog"


def lint_source(
    source: str,
    filename: str = "<hdl>",
    frontend: Optional[str] = None,
    waivers: Iterable[WaiverEntry] = (),
) -> LintReport:
    """Lint one source file; syntax errors become SYNTAX findings."""
    fe = _frontend_for(filename, frontend)
    if fe == "vhdl":
        from ..hdl.vhdl.parser import parse
    else:
        from ..hdl.verilog.parser import parse
    try:
        modules = parse(source, filename)
    except HDLSyntaxError as err:
        loc = err.loc
        finding = Finding(
            RULE_SYNTAX, SEV_ERROR, err.message,
            loc.filename if loc else filename,
            loc.line if loc else 0,
            loc.col if loc else 0,
        )
        report = LintReport([finding])
        apply_waivers(report.findings, {filename: source}, list(waivers))
        return report
    findings = lint_modules(modules)
    apply_waivers(findings, {filename: source}, list(waivers))
    return LintReport(findings)
