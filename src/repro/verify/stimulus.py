"""Constrained-random stimulus and the coverage-guided fuzz loop.

Everything here is **seeded and deterministic**: a :class:`Stimulus` is
just ``(strategy, seed, cycles)`` — the concrete per-cycle input values
are re-derived from ``random.Random(seed)`` on every replay, inputs
visited in sorted-name order.  Running ``fuzz`` twice with the same seed
produces byte-identical corpora and coverage
(``tests/verify/test_fuzz.py`` locks this down).

The fuzz loop is the classic coverage-guided shape: generate a
candidate, run it on a fresh simulator, keep it in the corpus iff it
covers something no earlier corpus member covered (statement points,
toggle bits or FSM states/edges — :meth:`CoverageCollector.covered_keys`
is the currency).  A greedy minimisation pass then drops corpus entries
made redundant by later, richer ones.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from .coverage import CoverageCollector

#: inputs the strategies never drive (the simulator owns the clock; the
#: reset-pulse strategy drives reset explicitly)
CLOCK_NAMES = ("clk", "clock")
RESET_NAMES = ("rst", "reset", "rst_n", "reset_n")

STRATEGIES = ("uniform", "onehot", "weighted", "range", "reset_pulse")


def _drivable(sim) -> list:
    return [
        s for s in sim.module.inputs
        if s.name not in CLOCK_NAMES and s.name not in RESET_NAMES
    ]


def _reset_name(sim) -> Optional[str]:
    for name in RESET_NAMES:
        if name in sim.module.signals:
            return name
    return None


@dataclass(frozen=True)
class Stimulus:
    """One replayable stimulus: strategy + seed + length."""

    strategy: str
    seed: int
    cycles: int

    def to_dict(self) -> dict:
        return {"strategy": self.strategy, "seed": self.seed,
                "cycles": self.cycles}

    @staticmethod
    def from_dict(d: dict) -> "Stimulus":
        return Stimulus(d["strategy"], d["seed"], d["cycles"])

    # -- replay ------------------------------------------------------------

    def apply(self, sim, collector: Optional[CoverageCollector] = None,
              on_cycle: Optional[Callable[[int], None]] = None) -> None:
        """Reset *sim*, then drive it for :attr:`cycles` clock cycles.

        *on_cycle* (if given) runs after each tick — the equivalence
        checker uses it to compare backends in lockstep.
        """
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown stimulus strategy {self.strategy!r}")
        rng = random.Random(self.seed)
        inputs = sorted(_drivable(sim), key=lambda s: s.name)
        reset = _reset_name(sim)
        sim.reset()
        if collector is not None:
            collector.sample()
        held = {s.name: 0 for s in inputs}
        for cycle in range(self.cycles):
            if self.strategy == "uniform":
                for s in inputs:
                    sim.poke(s.name, rng.getrandbits(s.width))
            elif self.strategy == "onehot":
                for s in inputs:
                    sim.poke(s.name, 0)
                if inputs:
                    s = inputs[rng.randrange(len(inputs))]
                    sim.poke(s.name, 1 << rng.randrange(s.width))
            elif self.strategy == "weighted":
                # each bit flips with ~1/8 probability: slow-moving
                # values that exercise sticky state (busy flags, FSMs)
                for s in inputs:
                    flips = 0
                    for bit in range(s.width):
                        if rng.randrange(8) == 0:
                            flips |= 1 << bit
                    held[s.name] = (held[s.name] ^ flips) & s.mask
                    sim.poke(s.name, held[s.name])
            elif self.strategy == "range":
                # small values: address-map / low-index corner traffic
                for s in inputs:
                    sim.poke(s.name, rng.randrange(min(s.mask, 15) + 1))
            elif self.strategy == "reset_pulse":
                for s in inputs:
                    sim.poke(s.name, rng.getrandbits(s.width))
                if reset is not None:
                    # ~1-in-8 cycles spent in a mid-run reset pulse
                    sim.poke(reset, 1 if rng.randrange(8) == 0 else 0)
            sim.tick()
            if collector is not None:
                collector.sample()
            if on_cycle is not None:
                on_cycle(cycle)


def corner_stimuli(cycles: int = 32) -> list[Stimulus]:
    """The fixed corner set every equivalence run includes."""
    return [
        Stimulus("range", 0, cycles),
        Stimulus("onehot", 1, cycles),
        Stimulus("weighted", 2, cycles),
        Stimulus("reset_pulse", 3, cycles),
    ]


# ---------------------------------------------------------------------------
# Coverage-guided fuzz loop
# ---------------------------------------------------------------------------


@dataclass
class FuzzResult:
    """Outcome of one fuzz run (before/after minimisation)."""

    corpus: list[Stimulus]
    corpus_keys: list[set]          # covered_keys per corpus entry
    total_keys: set                 # union over every run (kept or not)
    runs: int
    summary: dict

    def replay_keys(self) -> set:
        out: set = set()
        for keys in self.corpus_keys:
            out |= keys
        return out


def _aggregate_summary(module, keys: set) -> dict:
    """Roll a key set up into the same covered/total shape as a report."""
    stmt_total = len(module.coverage_points)
    stmt_cov = sum(1 for k in keys if k[0] == "stmt")
    tog_total = sum(2 * s.width for s in module.visible_signals())
    tog_cov = sum(1 for k in keys if k[0] in ("t01", "t10"))
    fsm_total = sum(len(f.states) for f in module.fsm_infos)
    fsm_cov = sum(1 for k in keys if k[0] == "fsm_state")
    return {
        "statement": {
            "covered": stmt_cov,
            "total": stmt_total,
            "pct": round(100.0 * stmt_cov / stmt_total, 2)
            if stmt_total else 100.0,
        },
        "toggle": {
            "covered_bits": tog_cov,
            "total_bits": tog_total,
            "pct": round(100.0 * tog_cov / tog_total, 2)
            if tog_total else 100.0,
        },
        "fsm": {"states_covered": fsm_cov, "states_total": fsm_total},
    }


def minimize_corpus(
    corpus: Sequence[Stimulus], corpus_keys: Sequence[set]
) -> tuple[list[Stimulus], list[set]]:
    """Greedy set-cover reduction: drop entries adding nothing new.

    Entries are considered richest-first, ties broken by original order
    so the result is deterministic.
    """
    order = sorted(
        range(len(corpus)), key=lambda i: (-len(corpus_keys[i]), i)
    )
    target: set = set()
    for keys in corpus_keys:
        target |= keys
    kept_idx: list[int] = []
    covered: set = set()
    for i in order:
        new = corpus_keys[i] - covered
        if new:
            kept_idx.append(i)
            covered |= corpus_keys[i]
        if covered == target:
            break
    kept_idx.sort()
    return ([corpus[i] for i in kept_idx],
            [corpus_keys[i] for i in kept_idx])


def fuzz(
    make_sim: Callable[[], object],
    seed: int,
    runs: int = 32,
    cycles: int = 64,
    strategies: Iterable[str] = STRATEGIES,
    minimize: bool = True,
) -> FuzzResult:
    """Coverage-guided fuzz: keep stimuli that increase coverage.

    *make_sim* returns a **fresh** simulator per run (so per-run
    coverage is independent); determinism comes from deriving every
    stimulus seed from ``random.Random(seed)``.
    """
    strategies = list(strategies)
    if not strategies:
        raise ValueError("need at least one stimulus strategy")
    master = random.Random(seed)
    corpus: list[Stimulus] = []
    corpus_keys: list[set] = []
    total: set = set()
    module = None
    for i in range(runs):
        stim = Stimulus(
            strategies[i % len(strategies)], master.getrandbits(32), cycles
        )
        sim = make_sim()
        module = sim.module
        collector = CoverageCollector(sim)
        stim.apply(sim, collector)
        keys = collector.covered_keys()
        if keys - total:
            corpus.append(stim)
            corpus_keys.append(keys)
        total |= keys
    if minimize:
        corpus, corpus_keys = minimize_corpus(corpus, corpus_keys)
    summary = _aggregate_summary(module, total) if module is not None else {}
    return FuzzResult(corpus, corpus_keys, total, runs, summary)


# ---------------------------------------------------------------------------
# Corpus persistence
# ---------------------------------------------------------------------------


def save_corpus(path, design: str, seed: int, result: FuzzResult) -> None:
    """Write a fuzz corpus as deterministic JSON (under benchmarks/out/)."""
    doc = {
        "design": design,
        "seed": seed,
        "runs": result.runs,
        "entries": [
            {**stim.to_dict(), "new_keys": len(keys)}
            for stim, keys in zip(result.corpus, result.corpus_keys)
        ],
        "coverage": result.summary,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_corpus(path) -> list[Stimulus]:
    with open(path) as fh:
        doc = json.load(fh)
    return [Stimulus.from_dict(e) for e in doc.get("entries", [])]
