"""repro.verify — coverage-guided RTL verification & lint.

The quality gate in front of the gem5+rtl flow: the paper's premise is
that RTL dropped into a full-system simulation must *already be
trustworthy*, and this package is how the repo earns that trust for its
bundled designs (and any user design):

* :mod:`repro.verify.lint` — static lint passes over the shared HDL
  AST (multiply-driven nets, inferred latches, width mismatches,
  incomplete cases, unused/undriven signals, async-reset hygiene),
  every diagnostic a machine-readable, waivable
  :class:`~repro.verify.findings.Finding`;
* :mod:`repro.verify.coverage` — statement / toggle / FSM coverage,
  **bit-identical across the interpreter and codegen backends** by
  construction (the counters live in the shared generated source);
* :mod:`repro.verify.stimulus` — seeded constrained-random stimulus
  strategies and a deterministic coverage-guided fuzz loop with corpus
  minimisation and persistence;
* :mod:`repro.verify.equiv` — lockstep interp-vs-codegen equivalence
  over corners + corpus + randoms, reporting the first divergence.

CLI: ``repro verify {lint,cover,fuzz,equiv}``.
"""

from .coverage import CoverageCollector, CoverageReport
from .designs import DESIGNS, Design, design_names, get_design
from .equiv import Divergence, EquivResult, check_equivalence
from .findings import (
    SEV_ERROR,
    SEV_WARNING,
    Finding,
    LintReport,
    WaiverEntry,
    apply_waivers,
    parse_waiver_file,
)
from .lint import RULES, lint_modules, lint_source
from .stimulus import (
    STRATEGIES,
    FuzzResult,
    Stimulus,
    corner_stimuli,
    fuzz,
    load_corpus,
    minimize_corpus,
    save_corpus,
)

__all__ = [
    "CoverageCollector",
    "CoverageReport",
    "DESIGNS",
    "Design",
    "Divergence",
    "EquivResult",
    "Finding",
    "FuzzResult",
    "LintReport",
    "RULES",
    "SEV_ERROR",
    "SEV_WARNING",
    "STRATEGIES",
    "Stimulus",
    "WaiverEntry",
    "apply_waivers",
    "check_equivalence",
    "corner_stimuli",
    "design_names",
    "fuzz",
    "get_design",
    "lint_modules",
    "lint_source",
    "load_corpus",
    "minimize_corpus",
    "parse_waiver_file",
    "save_corpus",
]
