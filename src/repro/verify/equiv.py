"""Cross-backend equivalence: interp vs codegen, first divergence wins.

The codegen fast path must be a *perfect* stand-in for the interpreter.
This checker replays stimuli through both backends in lockstep and
compares every visible signal and memory word after reset and after
every clock edge, reporting the **first** divergence with the offending
signal, cycle and the stimulus that exposed it — the most actionable
possible failure for a backend bug.

Stimuli come from the fixed corner set (:func:`corner_stimuli`), any
persisted fuzz corpus, and fresh seeded randoms — so ``repro verify
equiv`` keeps paying off as corpora grow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .stimulus import Stimulus, corner_stimuli


@dataclass(frozen=True)
class Divergence:
    """First point where the two backends disagreed."""

    stimulus: Stimulus
    cycle: int              # -1 = right after reset, n = after tick n
    signal: str             # signal name, or "mem[addr]" form
    interp_value: int
    codegen_value: int

    def format(self) -> str:
        where = "after reset" if self.cycle < 0 else f"cycle {self.cycle}"
        return (
            f"divergence at {where}, signal '{self.signal}': "
            f"interp={self.interp_value:#x} "
            f"codegen={self.codegen_value:#x} "
            f"(stimulus {self.stimulus.strategy} seed={self.stimulus.seed})"
        )


@dataclass
class EquivResult:
    design: str
    stimuli_run: int
    cycles_checked: int
    divergence: Optional[Divergence] = None
    skipped: str = ""       # non-empty = check not meaningful (why)

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def format(self) -> str:
        if self.skipped:
            return f"equiv: {self.design}: SKIPPED ({self.skipped})"
        if self.ok:
            return (
                f"equiv: {self.design}: PASS "
                f"({self.stimuli_run} stimuli, "
                f"{self.cycles_checked} cycles compared)"
            )
        return f"equiv: {self.design}: FAIL — {self.divergence.format()}"


class _DivergenceFound(Exception):
    def __init__(self, cycle: int, signal: str, a: int, b: int) -> None:
        super().__init__(signal)
        self.cycle = cycle
        self.signal = signal
        self.a = a
        self.b = b


class _LockstepPair:
    """Drives two simulators identically, comparing after every edge.

    Quacks enough like an :class:`~repro.rtl.RTLSimulator` for
    :meth:`Stimulus.apply` to drive it directly.
    """

    def __init__(self, interp, codegen) -> None:
        self.a = interp
        self.b = codegen
        self.module = interp.module
        self.cycle = -1
        self.cycles_compared = 0

    def reset(self, *args, **kwargs) -> None:
        self.a.reset(*args, **kwargs)
        self.b.reset(*args, **kwargs)
        self.cycle = -1
        self._compare()

    def poke(self, name: str, value: int) -> None:
        self.a.poke(name, value)
        self.b.poke(name, value)

    def tick(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self.a.tick()
            self.b.tick()
            self.cycle += 1
            self._compare()

    def _compare(self) -> None:
        self.cycles_compared += 1
        va, vb = self.a.values, self.b.values
        for sig in self.module.visible_signals():
            x = va[sig.index] & sig.mask
            y = vb[sig.index] & sig.mask
            if x != y:
                raise _DivergenceFound(self.cycle, sig.name, x, y)
        ma, mb = self.a.mems, self.b.mems
        for mem in self.module.memories.values():
            wa, wb = ma[mem.index], mb[mem.index]
            if wa == wb:
                continue
            for addr, (x, y) in enumerate(zip(wa, wb)):
                if x != y:
                    raise _DivergenceFound(
                        self.cycle, f"{mem.name}[{addr}]",
                        x & mem.mask, y & mem.mask,
                    )


def check_equivalence(
    make_sim: Callable[[str], object],
    design: str = "<design>",
    stimuli: Iterable[Stimulus] = (),
    seed: int = 0,
    random_runs: int = 4,
    cycles: int = 64,
    make_ref: Optional[Callable[[], object]] = None,
) -> EquivResult:
    """Run corners + *stimuli* + seeded randoms through both backends.

    *make_sim* takes a backend name (``"interp"`` / ``"codegen"``) and
    returns a fresh simulator.  Fresh simulators per stimulus keep runs
    independent (and coverage counters out of the comparison baseline).

    *make_ref* optionally supplies the reference simulator instead of
    ``make_sim("interp")``.  The optimizer's differential battery uses
    this to compare, say, ``-O2`` codegen against an unoptimized
    interpreter build — any reference works as long as the two designs
    share a signal table (netlist optimisation never changes it).
    """
    probe = make_sim("codegen")
    _close(probe)
    if probe.backend == "interp":
        # (a partitioned simulator reports backend == "partitioned" and
        # is compared like any other fast path)
        return EquivResult(
            design, 0, 0,
            skipped="design needs iterative settling; codegen backend "
                    "falls back to the interpreter (nothing to compare)",
        )
    if make_ref is None:
        make_ref = lambda: make_sim("interp")  # noqa: E731
    plan = list(corner_stimuli(cycles)) + list(stimuli)
    master = random.Random(seed)
    for _ in range(random_runs):
        plan.append(Stimulus("uniform", master.getrandbits(32), cycles))
    total_cycles = 0
    for stim in plan:
        pair = _LockstepPair(make_ref(), make_sim("codegen"))
        try:
            stim.apply(pair)
        except _DivergenceFound as d:
            return EquivResult(
                design, len(plan), total_cycles + pair.cycles_compared,
                divergence=Divergence(
                    stim, d.cycle, d.signal, d.a, d.b
                ),
            )
        finally:
            _close(pair.a)
            _close(pair.b)
        total_cycles += pair.cycles_compared
    return EquivResult(design, len(plan), total_cycles)


def _close(sim: object) -> None:
    """Release pool workers a partitioned simulator may hold."""
    close = getattr(sim, "close", None)
    if callable(close):
        close()
