"""Coverage collection: statement, toggle and FSM coverage.

Three coverage models, all **backend-identical by construction**:

* *statement* coverage counters are emitted by the elaborator straight
  into the generated process source (``v[k] = v[k] + 1`` before every
  procedural assignment), so the interpreter and the codegen backend
  execute the very same increments — identical stimulus must yield
  bit-identical counts (``tests/verify/test_coverage_backends.py``
  enforces this invariant over every bundled design);
* *toggle* coverage observes the visible signal values once per cycle
  and accumulates 0→1 / 1→0 transition masks per signal;
* *FSM* coverage uses the state registers the elaborator detected
  (:class:`~repro.rtl.kernel.FSMInfo`) and records visited states and
  taken edges.

Toggle and FSM coverage never look at backend internals — only at
``sim.values`` — so the existing differential invariant (both backends
produce identical values) carries the identity over to them for free.

A collector registers with :func:`repro.trace.register_coverage` so
trace windows gate coverage accumulation together with text tracing and
waveforms; statement counters keep incrementing inside the kernel (they
are baked into the source) but hits accumulated while disabled are
subtracted out.
"""

from __future__ import annotations

import json
from typing import Optional

from ..rtl.kernel import CoveragePoint, FSMInfo
from ..trace import register_coverage


class CoverageCollector:
    """Accumulates coverage from one :class:`~repro.rtl.RTLSimulator`.

    Call :meth:`sample` once after reset and once after every tick;
    statement counters are read live from the simulator state, so only
    toggle and FSM coverage depend on the sampling cadence.
    """

    def __init__(self, sim, enabled: bool = True,
                 follow_trace_window: bool = False) -> None:
        module = sim.module
        self.sim = sim
        self.enabled = enabled
        self.points: list[CoveragePoint] = list(module.coverage_points)
        self.fsms: list[FSMInfo] = list(module.fsm_infos)
        self._signals = module.visible_signals()
        self._prev: Optional[list[int]] = None
        self._t01: dict[str, int] = {s.name: 0 for s in self._signals}
        self._t10: dict[str, int] = {s.name: 0 for s in self._signals}
        self._fsm_states: dict[str, set] = {f.signal: set() for f in self.fsms}
        self._fsm_edges: dict[str, set] = {f.signal: set() for f in self.fsms}
        self._fsm_prev: dict[str, Optional[int]] = {
            f.signal: None for f in self.fsms
        }
        # statement hits observed while disabled are excluded, so the
        # collector honours trace windows even though the counters are
        # baked into the generated kernel source
        self._stmt_excluded = [0] * len(self.points)
        self._stmt_at_disable: Optional[list[int]] = None
        if not enabled:
            self._stmt_at_disable = self._raw_stmt_counts()
        if follow_trace_window:
            register_coverage(self)

    # -- control (trace-window protocol) ------------------------------------

    def enable(self) -> None:
        if self.enabled:
            return
        self.enabled = True
        if self._stmt_at_disable is not None:
            now = self._raw_stmt_counts()
            for i, at in enumerate(self._stmt_at_disable):
                self._stmt_excluded[i] += now[i] - at
            self._stmt_at_disable = None
        # toggle/FSM sampling restarts from the next sample
        self._prev = None
        for f in self.fsms:
            self._fsm_prev[f.signal] = None

    def disable(self) -> None:
        if not self.enabled:
            return
        self.enabled = False
        self._stmt_at_disable = self._raw_stmt_counts()

    # -- accumulation ------------------------------------------------------

    def _raw_stmt_counts(self) -> list[int]:
        v = self.sim.values
        return [v[p.index] for p in self.points]

    def sample(self) -> None:
        """Observe the current signal values (one call per cycle)."""
        if not self.enabled:
            return
        v = self.sim.values
        cur = [v[s.index] & s.mask for s in self._signals]
        prev = self._prev
        if prev is not None:
            for i, s in enumerate(self._signals):
                was, now = prev[i], cur[i]
                if was != now:
                    self._t01[s.name] |= ~was & now
                    self._t10[s.name] |= was & ~now
        self._prev = cur
        for f in self.fsms:
            state = v[f.index] & ((1 << f.width) - 1)
            self._fsm_states[f.signal].add(state)
            last = self._fsm_prev[f.signal]
            if last is not None and last != state:
                self._fsm_edges[f.signal].add((last, state))
            self._fsm_prev[f.signal] = state

    def run_and_sample(self, cycles: int) -> None:
        """Tick cycle-by-cycle, sampling after each edge."""
        for _ in range(cycles):
            self.sim.tick()
            self.sample()

    # -- results -----------------------------------------------------------

    def statement_hits(self) -> list[int]:
        raw = self._raw_stmt_counts()
        hits = [raw[i] - self._stmt_excluded[i] for i in range(len(raw))]
        if self._stmt_at_disable is not None:
            for i, at in enumerate(self._stmt_at_disable):
                hits[i] -= raw[i] - at
        return hits

    def covered_keys(self) -> set:
        """Every covered item as a hashable key (fuzz-loop currency)."""
        keys: set = set()
        for i, hits in enumerate(self.statement_hits()):
            if hits:
                keys.add(("stmt", i))
        for s in self._signals:
            t01, t10 = self._t01[s.name], self._t10[s.name]
            for bit in range(s.width):
                if (t01 >> bit) & 1:
                    keys.add(("t01", s.name, bit))
                if (t10 >> bit) & 1:
                    keys.add(("t10", s.name, bit))
        for f in self.fsms:
            for st in self._fsm_states[f.signal]:
                keys.add(("fsm_state", f.signal, st))
            for edge in self._fsm_edges[f.signal]:
                keys.add(("fsm_edge", f.signal, edge))
        return keys

    def report(self) -> "CoverageReport":
        stmt_points = [
            {
                "label": p.label,
                "file": p.file,
                "line": p.line,
                "hits": hits,
            }
            for p, hits in zip(self.points, self.statement_hits())
        ]
        toggle_signals = []
        for s in sorted(self._signals, key=lambda s: s.name):
            full = (1 << s.width) - 1
            t01 = self._t01[s.name] & full
            t10 = self._t10[s.name] & full
            toggle_signals.append({
                "name": s.name,
                "width": s.width,
                "t01_bits": bin(t01).count("1"),
                "t10_bits": bin(t10).count("1"),
            })
        fsm_entries = []
        for f in sorted(self.fsms, key=lambda f: f.signal):
            declared = sorted(f.states)
            visited = sorted(self._fsm_states[f.signal])
            edges = sorted(self._fsm_edges[f.signal])
            fsm_entries.append({
                "signal": f.signal,
                "declared_states": declared,
                "visited_states": visited,
                "edges": [list(e) for e in edges],
            })
        return CoverageReport(
            design=self.sim.module.name,
            backend=self.sim.backend,
            statement=stmt_points,
            toggle=toggle_signals,
            fsm=fsm_entries,
        )


class CoverageReport:
    """Deterministic coverage summary with text and JSON renderings."""

    def __init__(self, design: str, backend: str, statement: list[dict],
                 toggle: list[dict], fsm: list[dict]) -> None:
        self.design = design
        self.backend = backend
        self.statement = statement
        self.toggle = toggle
        self.fsm = fsm

    # -- summary numbers ---------------------------------------------------

    @property
    def statement_covered(self) -> int:
        return sum(1 for p in self.statement if p["hits"])

    @property
    def statement_total(self) -> int:
        return len(self.statement)

    @property
    def statement_pct(self) -> float:
        if not self.statement:
            return 100.0
        return 100.0 * self.statement_covered / self.statement_total

    @property
    def toggle_covered(self) -> int:
        return sum(s["t01_bits"] + s["t10_bits"] for s in self.toggle)

    @property
    def toggle_total(self) -> int:
        return sum(2 * s["width"] for s in self.toggle)

    @property
    def toggle_pct(self) -> float:
        if not self.toggle_total:
            return 100.0
        return 100.0 * self.toggle_covered / self.toggle_total

    @property
    def fsm_state_covered(self) -> int:
        return sum(
            len(set(f["visited_states"]) & set(f["declared_states"]))
            for f in self.fsm
        )

    @property
    def fsm_state_total(self) -> int:
        return sum(len(f["declared_states"]) for f in self.fsm)

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "backend": self.backend,
            "statement": {
                "points": self.statement,
                "covered": self.statement_covered,
                "total": self.statement_total,
                "pct": round(self.statement_pct, 2),
            },
            "toggle": {
                "signals": self.toggle,
                "covered_bits": self.toggle_covered,
                "total_bits": self.toggle_total,
                "pct": round(self.toggle_pct, 2),
            },
            "fsm": {
                "fsms": self.fsm,
                "states_covered": self.fsm_state_covered,
                "states_total": self.fsm_state_total,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [f"coverage: {self.design} ({self.backend} backend)"]
        lines.append(
            f"  statement: {self.statement_covered}/{self.statement_total} "
            f"({self.statement_pct:.1f}%)"
        )
        for p in self.statement:
            mark = " " if p["hits"] else "!"
            lines.append(
                f"    {mark} {p['file']}:{p['line']} [{p['label']}] "
                f"hits={p['hits']}"
            )
        lines.append(
            f"  toggle: {self.toggle_covered}/{self.toggle_total} bits "
            f"({self.toggle_pct:.1f}%)"
        )
        if self.fsm:
            lines.append(
                f"  fsm: {self.fsm_state_covered}/{self.fsm_state_total} "
                "states"
            )
            for f in self.fsm:
                lines.append(
                    f"    {f['signal']}: visited "
                    f"{f['visited_states']} of {f['declared_states']}, "
                    f"{len(f['edges'])} edge(s)"
                )
        else:
            lines.append("  fsm: no state machines detected")
        return "\n".join(lines)
