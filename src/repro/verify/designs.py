"""Registry of bundled RTL designs the verify CLI operates on.

``repro verify {lint,cover,fuzz,equiv}`` needs concrete designs; the
repo bundles a set that between them cover both frontends and every
interesting structural shape:

============= ======== =============================================
name          frontend shape
============= ======== =============================================
pmu           verilog  memories, address-mapped regs, single always
bitonic       vhdl     deep comb instance tree + registered stages
rtlcache      verilog  wide datapaths, miss FSM-ish busy flag
rtlcache_ecc  verilog  rtlcache + per-word parity and refetch path
rtlcache_coh  verilog  rtlcache + coherence probe (snoop) interface
============= ======== =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hdl.common import CoverageOptions, ElabOptions
from ..models.bitonic.wrapper import load_bitonic_source
from ..models.pmu.wrapper import load_pmu_source
from ..models.rtlcache.coherent import load_rtl_cache_coh_source
from ..models.rtlcache.wrapper import (
    load_rtl_cache_ecc_source,
    load_rtl_cache_source,
)
from ..rtl.simulator import RTLSimulator


@dataclass(frozen=True)
class Design:
    """One bundled design: how to load, lint and compile it."""

    name: str
    frontend: str                      # "verilog" | "vhdl"
    top: str
    loader: Callable[[], str]
    filename: str                      # display name for findings
    params: Optional[dict] = field(default=None)

    def source(self) -> str:
        return self.loader()

    def compile(
        self,
        instrument: Optional[CoverageOptions] = None,
        opt_level: int = 0,
        options: Optional[ElabOptions] = None,
    ):
        """Compile at *opt_level* (or with explicit pass *options*)."""
        if options is None:
            options = ElabOptions(opt_level=opt_level)
        if self.frontend == "vhdl":
            from ..hdl.vhdl import compile_vhdl
            return compile_vhdl(
                self.source(), top=self.top, params=self.params,
                filename=self.filename, instrument=instrument,
                options=options,
            )
        from ..hdl.verilog import compile_verilog
        return compile_verilog(
            self.source(), top=self.top, params=self.params,
            filename=self.filename, instrument=instrument,
            options=options,
        )

    def make_sim(
        self,
        backend: str = "codegen",
        instrument: Optional[CoverageOptions] = None,
        opt_level: int = 0,
        options: Optional[ElabOptions] = None,
        parts: int = 2,
    ):
        """A fresh simulator for this design.

        ``backend="partitioned"`` returns a tier-(b)
        :class:`~repro.rtl.parallel.partition.PartitionedSimulator` cut
        into *parts* sub-graphs (raises
        :class:`~repro.rtl.parallel.partition.PartitionError` for
        ineligible designs — callers surface it as a skip).
        """
        if backend == "partitioned":
            from ..rtl.parallel.partition import PartitionedSimulator

            return PartitionedSimulator(
                self.compile(instrument, opt_level, options), parts=parts
            )
        return RTLSimulator(
            self.compile(instrument, opt_level, options), backend=backend
        )


DESIGNS: dict[str, Design] = {
    d.name: d
    for d in (
        Design("pmu", "verilog", "pmu", load_pmu_source,
               "src/repro/models/pmu/pmu.v"),
        Design("bitonic", "vhdl", "bitonic8", load_bitonic_source,
               "src/repro/models/bitonic/bitonic.vhdl", params={"W": 16}),
        Design("rtlcache", "verilog", "rtl_cache", load_rtl_cache_source,
               "src/repro/models/rtlcache/rtl_cache.v",
               params={"IDXW": 4}),
        Design("rtlcache_ecc", "verilog", "rtl_cache_ecc",
               load_rtl_cache_ecc_source,
               "src/repro/models/rtlcache/rtl_cache_ecc.v",
               params={"IDXW": 4}),
        Design("rtlcache_coh", "verilog", "rtl_cache_coh",
               load_rtl_cache_coh_source,
               "src/repro/models/rtlcache/rtl_cache_coh.v",
               params={"IDXW": 4}),
    )
}


def design_names() -> list[str]:
    return sorted(DESIGNS)


def get_design(name: str) -> Design:
    try:
        return DESIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown design {name!r}; bundled designs: "
            f"{', '.join(design_names())}"
        ) from None
