"""Progress/ETA line for long sweeps.

Writes a single self-overwriting line to stderr (so piping stdout —
the rendered figure — stays clean).  The ETA is the naive
``elapsed / done * remaining``; DSE points vary in cost by an order of
magnitude across the in-flight sweep, so it is an estimate, not a
promise.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressReporter:
    """Counts completed points and paints ``[label 3/41] 7% ... eta ...``."""

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = max(total, 1)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._t0 = time.perf_counter()
        self._last_len = 0

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def eta(self) -> Optional[float]:
        if not self.done:
            return None
        return self.elapsed() / self.done * (self.total - self.done)

    def update(self, note: str = "") -> None:
        self.done += 1
        eta = self.eta()
        # `eta is not None`, not `eta`: an instant point legitimately
        # yields an ETA of exactly 0.0 and must still be shown.
        eta_text = (
            f" eta {_fmt_seconds(eta)}"
            if eta is not None and self.done < self.total
            else ""
        )
        line = (
            f"[{self.label} {self.done}/{self.total}] "
            f"{100 * self.done // self.total}% "
            f"elapsed {_fmt_seconds(self.elapsed())}{eta_text}"
        )
        if note:
            line += f" {note}"
        # Pad to the previous paint's length so a long note from the
        # last update cannot leave stale characters on screen.
        self.stream.write("\r" + line.ljust(max(60, self._last_len)))
        self._last_len = len(line)
        if self.done >= self.total:
            self.stream.write("\n")
        self.stream.flush()
