"""On-disk result cache for simulation points.

Each entry is one JSON file named by the SHA-256 of its key.  The key
is the canonical JSON of the point's parameters plus
:func:`code_version` — a digest over every ``repro`` source file — so

* re-running an unchanged figure is pure cache reads,
* any change to the simulator invalidates every entry at once
  (conservative, but a timing simulator has no safe finer grain), and
* entries from different code versions coexist, so bisecting between
  two trees does not thrash the cache.

Only *deterministic* measurements belong here (tick counts, event
totals).  Wall-clock timings (Table 2/3 overheads) are never cached —
they are measurements of the host, not of the simulated system.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["CacheStats", "ResultCache", "code_version", "default_cache_dir"]

_PACKAGE_ROOT = pathlib.Path(__file__).resolve().parents[1]   # src/repro
_CODE_VERSION: dict[str, str] = {}


def code_version() -> str:
    """Digest of every ``repro`` source file (path + contents).

    Cached per-process: the tree cannot change under a running sweep
    in any way the cache could honour.
    """
    cached = _CODE_VERSION.get("v")
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(str(path.relative_to(_PACKAGE_ROOT)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    version = digest.hexdigest()[:16]
    _CODE_VERSION["v"] = version
    return version


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``benchmarks/out/cache`` next to
    the source tree (the repo layout), else a user cache directory."""
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return pathlib.Path(env)
    repo_root = _PACKAGE_ROOT.parents[1]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "out" / "cache"
    return pathlib.Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "errors": self.errors}


@dataclass
class ResultCache:
    """Content-addressed JSON store; see the module docstring for keying."""

    root: Optional[pathlib.Path] = None
    stats: CacheStats = field(default_factory=CacheStats)
    #: ``*.tmp`` files older than this are orphans of a killed writer;
    #: younger ones may be another live worker's in-flight write.
    tmp_max_age_s: float = 3600.0
    #: opportunistically re-reap after this many :meth:`put` calls — a
    #: construction-time-only reap lets a long-lived process (the serve
    #: layer runs for days) accumulate orphaned ``*.tmp`` files forever.
    #: ``0`` disables the periodic re-reap (construction still reaps).
    reap_every_puts: int = 256
    _puts_since_reap: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root) if self.root else default_cache_dir()
        self.reap_stale_tmp()

    def reap_stale_tmp(self) -> int:
        """Remove write-temp files older than :attr:`tmp_max_age_s`.

        A crashed or killed worker leaves its ``mkstemp`` file behind
        (the ``os.replace`` never ran); without this the cache directory
        accumulates them forever.  Returns the number removed.
        """
        assert self.root is not None
        self._puts_since_reap = 0
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - self.tmp_max_age_s
        removed = 0
        for path in self.root.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                # raced with another reaper or a live writer: not ours
                continue
        return removed

    def key(self, **fields: Any) -> str:
        """Hash of the point parameters + the current code version."""
        payload = dict(fields)
        payload["__code__"] = code_version()
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]

    def _path(self, key: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached payload, or None on miss/corruption."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            payload = entry["payload"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # A torn, truncated or hand-edited file is just a miss; it
            # will be overwritten by the fresh result.  TypeError covers
            # entries whose JSON parses but isn't our dict shape (e.g. a
            # bare string or list after partial write + valid-JSON
            # prefix).
            import warnings

            warnings.warn(
                f"ignoring corrupted cache entry {path.name} "
                "(treated as a miss)",
                RuntimeWarning,
                stacklevel=2,
            )
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Any, meta: Optional[dict] = None) -> None:
        """Atomically store *payload* (write-to-temp + rename)."""
        assert self.root is not None
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {"meta": meta or {}, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._puts_since_reap += 1
        if self.reap_every_puts and self._puts_since_reap >= self.reap_every_puts:
            self.reap_stale_tmp()

    def clear(self) -> int:
        """Delete every entry (and any leftover temp file); returns the
        number removed."""
        assert self.root is not None
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.json", "*.tmp"):
                for path in self.root.glob(pattern):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed
