"""Parallel sweep engine: fan independent simulation points over
process workers with a deterministic merge and an on-disk result cache.

The experiment layer's unit of work is an *independent full-system
simulation* (one DSE point, one Table 2/3 row, one Fig. 5 series);
none of them share state, so they parallelise embarrassingly.  This
package provides the three pieces the harnesses in ``repro.dse`` build
on:

* :func:`run_points` — a process-pool runner whose merged result list
  is ordered by submission index, never by completion order, so a
  ``jobs=N`` run is bit-identical to ``jobs=1``.  Worker crashes
  (segfault-style hard exits) and in-worker exceptions are both retried
  with bounded attempts.
* :class:`ResultCache` — content-addressed JSON store under
  ``benchmarks/out/cache/`` keyed by the point's parameters *and* a
  hash of the simulator's own source, so re-running a figure after a
  code change only re-simulates, and re-running unchanged code only
  reads.
* :class:`ProgressReporter` — wall-clock progress/ETA line for long
  sweeps.
"""

from .cache import ResultCache, code_version, default_cache_dir
from .progress import ProgressReporter
from .runner import PointFailure, RunStats, WorkerCrashError, run_points

__all__ = [
    "PointFailure",
    "ProgressReporter",
    "ResultCache",
    "RunStats",
    "WorkerCrashError",
    "code_version",
    "default_cache_dir",
    "run_points",
]
