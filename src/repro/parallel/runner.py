"""Process-pool point runner with deterministic merge and bounded retry.

Design notes
------------
* Results are merged **by submission index**, never by completion
  order, so the output of ``run_points(points, fn, jobs=N)`` is the
  same list a plain ``[fn(p) for p in points]`` produces.  Determinism
  therefore only requires the worker itself to be deterministic.
* Workers run the point inside a guard that converts in-worker Python
  exceptions into a ``("err", traceback)`` value; those retry *that
  point* up to ``max_attempts`` times and then raise
  :class:`PointFailure` — or, with ``keep_going=True``, record the
  :class:`PointFailure` instance in that point's result slot and keep
  sweeping (graceful degradation for long fleets).
* A *hard* crash (``os._exit``, segfault, OOM-kill) poisons the whole
  ``ProcessPoolExecutor`` — every in-flight future fails with
  ``BrokenProcessPool`` and the crashed point cannot be identified.
  The runner then rebuilds the pool and requeues everything unfinished
  (recorded per point in ``RunStats.requeues``); pool rebuilds are
  bounded by ``max_attempts`` before :class:`WorkerCrashError` is
  raised (``keep_going`` does **not** soften this — a dying pool is an
  environment problem, not a point problem).
* ``point_timeout`` (seconds, pool mode only) bounds each point's wall
  clock.  A hung worker cannot be cancelled through the executor API,
  so on expiry the runner **kills the pool processes**, charges the
  timed-out point a hard attempt (``RunStats.timeout_kills``), requeues
  the innocent in-flight points without charging them, and rebuilds the
  pool.
* Long points can opt into **checkpoint-based resume**: pass
  ``checkpoint_dir=`` and each point's worker runs with the
  ``REPRO_POINT_CKPT_DIR`` environment variable set to a per-point
  directory; a worker that calls
  :func:`repro.resilience.control.enable_point_checkpoints` on its
  simulation will periodically checkpoint there and, on a retry after a
  kill, restore the newest checkpoint instead of starting over.
* ``jobs <= 1`` runs in-process (no pool, no pickling) with the same
  retry/keep-going semantics — this is both the fast path for small
  sweeps and the reference the determinism tests compare against.
  ``point_timeout`` is ignored in-process (there is no one to kill).
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["PointFailure", "RunStats", "WorkerCrashError", "run_points"]

#: environment variable carrying the per-point checkpoint directory
POINT_CKPT_ENV = "REPRO_POINT_CKPT_DIR"


class PointFailure(RuntimeError):
    """A point kept raising inside the worker until attempts ran out."""

    def __init__(self, point, attempts: int, last_error: str):
        super().__init__(
            f"point {point!r} failed {attempts} time(s); last error:\n{last_error}"
        )
        self.point = point
        self.attempts = attempts
        self.last_error = last_error


class WorkerCrashError(RuntimeError):
    """Worker processes kept dying until the pool-restart budget ran out."""


@dataclass
class RunStats:
    """Bookkeeping for one :func:`run_points` call."""

    points: int = 0
    completed: int = 0
    failed: int = 0            # PointFailure sentinels recorded (keep_going)
    soft_retries: int = 0      # in-worker exceptions that were retried
    pool_restarts: int = 0     # hard worker crashes that rebuilt the pool
    timeout_kills: int = 0     # workers killed for exceeding point_timeout
    attempts: dict[int, int] = field(default_factory=dict)
    #: per point: times it was requeued through no fault of its own
    #: (pool crash or a neighbour's timeout) — visible in hang reports
    requeues: dict[int, int] = field(default_factory=dict)


def _guarded(worker: Callable, point, env: Optional[dict] = None,
             index: Optional[int] = None,
             fault_dir: Optional[str] = None):
    """Run *worker* in the child, trapping Python-level failures.

    Returning the traceback (rather than letting the exception
    propagate through the future) lets the parent distinguish a
    per-point soft failure from a pool-poisoning hard crash.  *env*
    entries are exported before the call (per-point checkpoint dirs)
    and the **prior** values — including absence — are restored after,
    so a pre-set variable (e.g. an operator-exported
    ``REPRO_POINT_CKPT_DIR`` in a serial run) survives the sweep.
    When *fault_dir* is set, worker-side faults from a parked
    :class:`~repro.resilience.FaultPlan` (inherited on fork) are
    applied before the point runs — ``worker-kill``/``worker-hang``
    fire here, once per point across retries.
    """
    saved: dict[str, Optional[str]] = {}
    if env:
        for key, value in env.items():
            saved[key] = os.environ.get(key)
            os.environ[key] = value
    if fault_dir is not None and index is not None:
        from repro.resilience import apply_worker_faults, control

        apply_worker_faults(control.pending_plan(), index, fault_dir)
    try:
        return ("ok", worker(point))
    except BaseException:  # noqa: BLE001 - the parent re-raises with context
        return ("err", traceback.format_exc())
    finally:
        for key, prior in saved.items():
            if prior is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = prior


def _pool_context():
    """Prefer fork (cheap, inherits sys.modules so test-local workers
    unpickle); fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork") if "fork" in methods else None


def _point_env(checkpoint_dir: Optional[str], i: int) -> Optional[dict]:
    if checkpoint_dir is None:
        return None
    return {POINT_CKPT_ENV: os.path.join(checkpoint_dir, f"point-{i:04d}")}


def _worker_fault_dir() -> Optional[str]:
    """A run-scoped marker directory iff a parked fault plan carries
    worker-side faults; the markers make each fault fire once per point
    across retries and pool rebuilds.  Pool mode only — in-process a
    ``worker-kill`` would take down the sweep itself."""
    try:
        from repro.resilience import control
    except ImportError:  # pragma: no cover - resilience always ships
        return None
    plan = control.pending_plan()
    if plan is None or not plan.worker_faults():
        return None
    import tempfile

    return tempfile.mkdtemp(prefix="repro-worker-faults-")


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be hung or dead."""
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.kill()
        except Exception:  # noqa: BLE001 - already gone
            pass
    pool.shutdown(wait=True, cancel_futures=True)


def _run_serial(
    points: Sequence,
    worker: Callable,
    max_attempts: int,
    keep_going: bool,
    checkpoint_dir: Optional[str],
    progress,
    stats: RunStats,
) -> list:
    results = []
    for i, point in enumerate(points):
        env = _point_env(checkpoint_dir, i)
        failure = None
        payload = None
        for attempt in range(1, max_attempts + 1):
            stats.attempts[i] = attempt
            status, payload = _guarded(worker, point, env)
            if status == "ok":
                break
            if attempt >= max_attempts:
                failure = PointFailure(point, attempt, payload)
                break
            stats.soft_retries += 1
        if failure is not None:
            if not keep_going:
                raise failure
            # record the sentinel; everything completed so far is kept
            results.append(failure)
            stats.failed += 1
        else:
            results.append(payload)
            stats.completed += 1
        if progress is not None:
            progress.update()
    return results


def _run_pool(
    points: Sequence,
    worker: Callable,
    jobs: int,
    max_attempts: int,
    point_timeout: Optional[float],
    keep_going: bool,
    checkpoint_dir: Optional[str],
    progress,
    stats: RunStats,
    fault_dir: Optional[str] = None,
) -> list:
    n = len(points)
    results: list = [None] * n
    finished = [False] * n
    queue: deque[int] = deque(range(n))
    ctx = _pool_context()

    def resolve_ok(i: int, payload) -> None:
        results[i] = payload
        finished[i] = True
        stats.completed += 1
        if progress is not None:
            progress.update()

    def resolve_failure(i: int, failure: PointFailure,
                        pool: ProcessPoolExecutor) -> None:
        if not keep_going:
            # other workers may be mid-point (or hung); don't wait on them
            _kill_pool(pool)
            raise failure
        results[i] = failure
        finished[i] = True
        stats.failed += 1
        if progress is not None:
            progress.update()

    def requeue_innocent(i: int) -> None:
        queue.append(i)
        stats.requeues[i] = stats.requeues.get(i, 0) + 1

    while queue:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(queue)), mp_context=ctx
        )
        inflight: dict = {}   # future -> (index, monotonic start)
        broke = False
        crash: Optional[BaseException] = None
        clean = False

        def harvest(fut) -> None:
            """Resolve one completed future: ok, soft-retry, or broken
            pool (the latter flips *broke* and requeues uncharged)."""
            nonlocal broke, crash
            i, _start = inflight.pop(fut)
            try:
                status, payload = fut.result()
            except BaseException as exc:  # noqa: BLE001 - broken pool
                # The pool is poisoned; this future (and likely the
                # rest) never ran.  Requeue without charging an
                # attempt — we cannot tell who crashed.
                broke, crash = True, exc
                requeue_innocent(i)
                return
            if status == "ok":
                resolve_ok(i, payload)
            else:
                attempts = stats.attempts.get(i, 0) + 1
                stats.attempts[i] = attempts
                if attempts >= max_attempts:
                    resolve_failure(
                        i, PointFailure(points[i], attempts, payload), pool,
                    )
                else:
                    stats.soft_retries += 1
                    queue.append(i)

        try:
            while queue or inflight:
                # windowed submission: at most *jobs* outstanding, so a
                # future's start time ≈ its submission time and the
                # per-point timeout measures actual run time.
                while queue and len(inflight) < jobs:
                    i = queue.popleft()
                    try:
                        fut = pool.submit(
                            _guarded, worker, points[i],
                            _point_env(checkpoint_dir, i),
                            i, fault_dir,
                        )
                    except BrokenProcessPool as exc:
                        broke, crash = True, exc
                        queue.appendleft(i)
                        break
                    inflight[fut] = (i, time.monotonic())
                if broke:
                    break

                wait_timeout = None
                if point_timeout is not None and inflight:
                    next_deadline = min(
                        start + point_timeout for _i, start in inflight.values()
                    )
                    wait_timeout = max(0.0, next_deadline - time.monotonic())
                done, _ = wait(
                    list(inflight), timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )

                for fut in done:
                    harvest(fut)
                if broke:
                    break

                # Expiry is scanned on EVERY iteration — not only when
                # wait() came back empty.  Otherwise one hung worker
                # evades its deadline indefinitely while fast
                # neighbours keep completing (each completion makes
                # wait() return early with a non-empty `done`, and the
                # deadline is never consulted until the queue drains).
                if point_timeout is not None and inflight:
                    now = time.monotonic()
                    hung = {
                        fut for fut, (i, start) in inflight.items()
                        if now - start >= point_timeout and not fut.done()
                    }
                    if not hung:
                        continue
                    # Harvest anything that completed between wait()
                    # and this scan first: finished work must never be
                    # discarded and re-run as an "innocent" requeue —
                    # and a future that ran over the deadline but DID
                    # complete is a result, not a hang.
                    for fut in [f for f in list(inflight) if f.done()]:
                        harvest(fut)
                    if broke:
                        break
                    # A hung worker cannot be cancelled; kill the pool.
                    # Each hung point is charged a hard attempt; other
                    # in-flight points are requeued uncharged.
                    for fut, (i, _start) in list(inflight.items()):
                        if fut not in hung:
                            requeue_innocent(i)
                            continue
                        attempts = stats.attempts.get(i, 0) + 1
                        stats.attempts[i] = attempts
                        stats.timeout_kills += 1
                        if attempts >= max_attempts:
                            resolve_failure(
                                i,
                                PointFailure(
                                    points[i], attempts,
                                    f"worker exceeded point_timeout="
                                    f"{point_timeout}s and was killed",
                                ),
                                pool,
                            )
                        else:
                            queue.append(i)
                    inflight.clear()
                    _kill_pool(pool)
                    break
            else:
                clean = True
        finally:
            if clean:
                pool.shutdown(wait=True)
            else:
                _kill_pool(pool)
        if broke:
            for _fut, (i, _start) in inflight.items():
                requeue_innocent(i)
            inflight.clear()
            stats.pool_restarts += 1
            if stats.pool_restarts >= max_attempts:
                raise WorkerCrashError(
                    f"worker pool died {stats.pool_restarts} time(s); "
                    f"{sum(1 for f in finished if not f)} point(s) unfinished"
                ) from crash
    return results


def run_points(
    points: Sequence,
    worker: Callable,
    jobs: int = 1,
    max_attempts: int = 3,
    point_timeout: Optional[float] = None,
    keep_going: bool = False,
    checkpoint_dir: Optional[str] = None,
    progress=None,
    stats: Optional[RunStats] = None,
) -> list:
    """Run ``worker(point)`` for every point; return results in order.

    ``worker`` must be picklable (a module-level function) when
    ``jobs > 1``.  ``progress``, if given, receives one ``update()``
    call per resolved point.  With ``keep_going=True`` a point that
    exhausts its attempts contributes a :class:`PointFailure` instance
    in its result slot instead of aborting the sweep.
    ``point_timeout`` (seconds) kills and retries workers that run too
    long (pool mode only).  ``checkpoint_dir`` enables per-point
    checkpoint/resume via the ``REPRO_POINT_CKPT_DIR`` contract.
    """
    if stats is None:
        stats = RunStats()
    stats.points = len(points)
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if point_timeout is not None and point_timeout <= 0:
        raise ValueError(f"point_timeout must be > 0, got {point_timeout}")
    if not points:
        return []
    if jobs <= 1:
        return _run_serial(points, worker, max_attempts, keep_going,
                           checkpoint_dir, progress, stats)
    fault_dir = _worker_fault_dir()
    try:
        return _run_pool(points, worker, jobs, max_attempts, point_timeout,
                         keep_going, checkpoint_dir, progress, stats,
                         fault_dir)
    finally:
        if fault_dir is not None:
            shutil.rmtree(fault_dir, ignore_errors=True)
