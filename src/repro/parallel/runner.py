"""Process-pool point runner with deterministic merge and bounded retry.

Design notes
------------
* Results are merged **by submission index**, never by completion
  order, so the output of ``run_points(points, fn, jobs=N)`` is the
  same list a plain ``[fn(p) for p in points]`` produces.  Determinism
  therefore only requires the worker itself to be deterministic.
* Workers run the point inside a guard that converts in-worker Python
  exceptions into a ``("err", traceback)`` value; those retry *that
  point* up to ``max_attempts`` times and then raise
  :class:`PointFailure`.
* A *hard* crash (``os._exit``, segfault, OOM-kill) poisons the whole
  ``ProcessPoolExecutor`` — every in-flight future fails with
  ``BrokenProcessPool`` and the crashed point cannot be identified.
  The runner then rebuilds the pool and requeues everything unfinished;
  pool rebuilds are bounded by ``max_attempts`` before
  :class:`WorkerCrashError` is raised.
* ``jobs <= 1`` runs in-process (no pool, no pickling) with the same
  retry semantics — this is both the fast path for small sweeps and
  the reference the determinism tests compare against.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["PointFailure", "RunStats", "WorkerCrashError", "run_points"]


class PointFailure(RuntimeError):
    """A point kept raising inside the worker until attempts ran out."""

    def __init__(self, point, attempts: int, last_error: str):
        super().__init__(
            f"point {point!r} failed {attempts} time(s); last error:\n{last_error}"
        )
        self.point = point
        self.attempts = attempts
        self.last_error = last_error


class WorkerCrashError(RuntimeError):
    """Worker processes kept dying until the pool-restart budget ran out."""


@dataclass
class RunStats:
    """Bookkeeping for one :func:`run_points` call."""

    points: int = 0
    completed: int = 0
    soft_retries: int = 0      # in-worker exceptions that were retried
    pool_restarts: int = 0     # hard worker crashes that rebuilt the pool
    attempts: dict[int, int] = field(default_factory=dict)


def _guarded(worker: Callable, point):
    """Run *worker* in the child, trapping Python-level failures.

    Returning the traceback (rather than letting the exception
    propagate through the future) lets the parent distinguish a
    per-point soft failure from a pool-poisoning hard crash.
    """
    try:
        return ("ok", worker(point))
    except BaseException:  # noqa: BLE001 - the parent re-raises with context
        return ("err", traceback.format_exc())


def _pool_context():
    """Prefer fork (cheap, inherits sys.modules so test-local workers
    unpickle); fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork") if "fork" in methods else None


def _run_serial(
    points: Sequence,
    worker: Callable,
    max_attempts: int,
    progress,
    stats: RunStats,
) -> list:
    results = []
    for i, point in enumerate(points):
        for attempt in range(1, max_attempts + 1):
            stats.attempts[i] = attempt
            status, payload = _guarded(worker, point)
            if status == "ok":
                break
            if attempt >= max_attempts:
                raise PointFailure(point, attempt, payload)
            stats.soft_retries += 1
        results.append(payload)
        stats.completed += 1
        if progress is not None:
            progress.update()
    return results


def run_points(
    points: Sequence,
    worker: Callable,
    jobs: int = 1,
    max_attempts: int = 3,
    progress=None,
    stats: Optional[RunStats] = None,
) -> list:
    """Run ``worker(point)`` for every point; return results in order.

    ``worker`` must be picklable (a module-level function) when
    ``jobs > 1``.  ``progress``, if given, receives one ``update()``
    call per completed point.
    """
    if stats is None:
        stats = RunStats()
    stats.points = len(points)
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if not points:
        return []
    if jobs <= 1:
        return _run_serial(points, worker, max_attempts, progress, stats)

    results: list = [None] * len(points)
    finished = [False] * len(points)
    pending = list(range(len(points)))
    ctx = _pool_context()
    while pending:
        requeue: list[int] = []
        pool_broke = False
        last_crash: Optional[BaseException] = None
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), mp_context=ctx
        ) as pool:
            try:
                futures = {
                    pool.submit(_guarded, worker, points[i]): i for i in pending
                }
            except BrokenProcessPool as exc:  # pragma: no cover - rare race
                pool_broke, last_crash = True, exc
                futures = {}
                requeue = list(pending)
            for future in as_completed(futures):
                i = futures[future]
                try:
                    status, payload = future.result()
                except BaseException as exc:  # noqa: BLE001 - broken pool
                    # The pool is poisoned; this future (and likely the
                    # rest) never ran.  Requeue without charging the
                    # point an attempt — we cannot tell who crashed.
                    pool_broke, last_crash = True, exc
                    requeue.append(i)
                    continue
                if status == "ok":
                    results[i] = payload
                    finished[i] = True
                    stats.completed += 1
                    if progress is not None:
                        progress.update()
                else:
                    attempts = stats.attempts.get(i, 0) + 1
                    stats.attempts[i] = attempts
                    if attempts >= max_attempts:
                        raise PointFailure(points[i], attempts, payload)
                    stats.soft_retries += 1
                    requeue.append(i)
        if pool_broke:
            stats.pool_restarts += 1
            if stats.pool_restarts >= max_attempts:
                raise WorkerCrashError(
                    f"worker pool died {stats.pool_restarts} time(s); "
                    f"{sum(1 for f in finished if not f)} point(s) unfinished"
                ) from last_crash
        pending = requeue
    return results
