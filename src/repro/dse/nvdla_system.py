"""System assembly for the NVDLA design-space exploration (paper §5/6.2).

Builds the Table 1 SoC with 1/2/4 NVDLA instances, each with its own
CSB MMIO window, DBBIF/SRAMIF hookup to the memory bus, host
application and workload copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..models.nvdla import (
    NVDLAHostApp,
    NVDLARTLObject,
    NVDLASharedLibrary,
    for_instance,
)
from ..rtl.parallel.sched import ParallelTickScheduler, attach_parallel_rtl
from ..soc.interconnect.xbar import AddrRange
from ..soc.system import SoC, SoCConfig

NVDLA_MMIO_BASE = 0x2000_0000
NVDLA_MMIO_STRIDE = 0x1000


@dataclass
class NVDLASystem:
    """A built system plus its accelerator-side handles."""

    soc: SoC
    rtls: list[NVDLARTLObject]
    hosts: list[NVDLAHostApp]
    #: tier-(a) group scheduler when ``rtl_jobs > 1`` wired one, else None
    parallel: Optional["ParallelTickScheduler"] = None

    def close(self) -> None:
        """Tear down the parallel scheduler, if any (idempotent).

        Worker model state is synced back into the local libraries so
        post-run checkpoints and inspection see the real thing.
        """
        if self.parallel is not None:
            self.parallel.close()
            self.parallel = None

    def run_to_completion(self, max_ticks: int = 10**12) -> int:
        """Start all host apps and run until every one completes."""
        try:
            for host in self.hosts:
                host.start()
            sim = self.soc.sim
            sim.startup()
            step = sim.default_clock.cycles_to_ticks(20_000)
            deadline = sim.now + max_ticks
            # boundaries aligned to absolute multiples of *step* so
            # resumed runs stop the RTL at the same tick as
            # uninterrupted ones
            while not all(h.done for h in self.hosts):
                if sim.now >= deadline:
                    raise TimeoutError("NVDLA workload did not complete")
                boundary = (sim.now // step + 1) * step
                sim.run(until=min(boundary, deadline))
            for rtl in self.rtls:
                rtl.stop()
            return sim.now
        finally:
            self.close()


def build_nvdla_system(
    workload: str = "sanity3",
    n_nvdla: int = 1,
    memory: str = "DDR4-4ch",
    max_inflight: int = 240,
    timed_load: bool = False,
    scale: float = 1.0,
    soc_cfg: Optional[SoCConfig] = None,
    use_sram_scratchpad: bool = False,
    rtl_jobs: int = 1,
) -> NVDLASystem:
    """Assemble the DSE system.

    ``memory`` is a Table 1 preset name or ``"ideal"`` (the
    normalisation baseline).  ``max_inflight`` is the paper's in-flight
    request cap, applied per NVDLA instance.  ``use_sram_scratchpad``
    hooks the SRAMIF to a private ideal scratchpad instead of main
    memory (the extension the paper suggests), used by the ablation
    bench.  ``rtl_jobs > 1`` ticks the NVDLA instances through the
    tier-(a) worker pool (bit-identical results by contract; falls back
    to serial when fork is unavailable or there is only one instance).
    """
    if n_nvdla < 1:
        raise ValueError("need at least one NVDLA instance")
    cfg = soc_cfg or SoCConfig()
    cfg.memory = memory
    soc = SoC(cfg)

    rtls: list[NVDLARTLObject] = []
    hosts: list[NVDLAHostApp] = []
    for i in range(n_nvdla):
        mmio = NVDLA_MMIO_BASE + i * NVDLA_MMIO_STRIDE
        rtl = NVDLARTLObject(
            soc.sim, f"nvdla{i}", NVDLASharedLibrary(),
            max_inflight=max_inflight, mmio_base=mmio,
        )
        soc.attach_rtl_cpu_side(
            rtl, io_range=AddrRange(mmio, mmio + NVDLA_MMIO_STRIDE)
        )
        soc.attach_rtl_mem_side(rtl, port_idx=0)   # DBBIF -> membus
        if use_sram_scratchpad:
            from ..soc.mem.ideal import IdealMemory

            spad = IdealMemory(
                soc.sim, f"spad{i}", physmem=soc.physmem, latency_cycles=2
            )
            rtl.mem_side[1].connect(spad.port)
        else:
            soc.attach_rtl_mem_side(rtl, port_idx=1)  # SRAMIF -> membus

        trace = for_instance(workload, i, scale=scale)
        if use_sram_scratchpad:
            for layer in trace.layers:
                layer.sram_mode = 1
        host_core = soc.cores[i] if timed_load else None
        host = NVDLAHostApp(
            soc, rtl, trace, instance=i,
            host_core=host_core, timed_load=timed_load,
        )
        # host apps carry playback progress; checkpoint them as extras
        soc.sim.register_extra(f"nvdla_host{i}", host)
        rtls.append(rtl)
        hosts.append(host)

    # Wire the group scheduler before startup: tick events must not be
    # scheduled yet, and the fork must happen while the libraries still
    # hold their pristine (pre-reset) state.
    parallel = attach_parallel_rtl(soc.sim, rtls, jobs=rtl_jobs)
    return NVDLASystem(soc, rtls, hosts, parallel=parallel)
