"""PMU experiments: Fig. 5 (IPC over time, PMU vs gem5) and Table 2
(simulation-time overhead of the PMU RTL model and waveform tracing).

The Fig. 5 flow mirrors the paper exactly: the PMU's clock-event
counter is given a threshold so it interrupts every ``interval_cycles``
cycles; the interrupt handler (host software, over MMIO) reads and
clears the commit/miss counters; simultaneously the simulator's own
statistics are snapshotted.  Both IPC series are returned for
comparison — they should overlap, with small deficits from the PMU's
1-cycle recording delay and the counter-clear window.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

from ..models.pmu import PMUDriver, PMURTLObject, PMUSharedLibrary
from ..parallel import run_points
from ..soc.cpu.core import EventWire
from ..soc.system import SoC, SoCConfig
from ..workloads.sorting import sort_benchmark

# PMU event lane assignment (paper §4.1)
COMMIT_LANES = (0, 1, 2, 3)   # up to 4 commits/cycle -> 4 one-bit events
MISS_LANE = 4                 # L1D misses: at most one per cycle
CYCLE_LANE = 5                # the clock, for periodic interrupts


@dataclass
class IPCWindow:
    """One sampling interval of Fig. 5."""

    time_ms: float        # simulated time at the end of the window
    pmu_ipc: float
    gem5_ipc: float
    pmu_mpki: float
    gem5_mpki: float
    pmu_commits: int
    gem5_commits: int


@dataclass
class Fig5Result:
    windows: list[IPCWindow] = field(default_factory=list)
    total_committed: int = 0
    total_cycles: int = 0
    pmu_total_commits: int = 0

    def lost_events(self) -> int:
        """Commits gem5 saw but the PMU missed (reset/delay losses)."""
        return self.total_committed - self.pmu_total_commits


def build_pmu_system(
    n_sort: int = 300,
    memory: str = "DDR4-2ch",
    with_pmu: bool = True,
    waveform_path: Optional[str] = None,
    sleep_cycles: int = 20_000,
    pmu_freq_hz: Optional[float] = None,
):
    """SoC + (optionally) PMU wired to core 0, running the sort benchmark.

    The PMU runs at the core clock by default so four commit lanes are
    exactly enough (Table 1 lists a 1 GHz PMU; at that ratio commit
    pulses smear across ticks — see EXPERIMENTS.md).
    """
    soc = SoC(SoCConfig(num_cores=1, memory=memory))
    core = soc.cores[0]
    core.run_stream(sort_benchmark(n=n_sort, sleep_cycles=sleep_cycles))

    if not with_pmu:
        return soc, None, None

    stream = open(waveform_path, "w") if waveform_path else None
    lib = PMUSharedLibrary(
        trace_stream=stream, trace_enabled=stream is not None
    )
    from ..soc.event import ClockDomain

    clock = (
        ClockDomain(pmu_freq_hz, "pmu_clk") if pmu_freq_hz else soc.sim.default_clock
    )
    pmu = PMURTLObject(soc.sim, "pmu", lib, clock=clock)
    soc.attach_rtl_cpu_side(pmu)

    pmu.connect_event(COMMIT_LANES[0], core.commit_wire, lanes=len(COMMIT_LANES))
    miss_wire = EventWire("l1d_miss")
    soc.l1ds[0].miss_listeners.append(lambda pkt: miss_wire.pulse())
    pmu.connect_event(MISS_LANE, miss_wire)
    pmu.connect_clock_event(CYCLE_LANE)

    drv = PMUDriver(soc.iomaster)
    return soc, pmu, drv


def run_fig5(
    n_sort: int = 300,
    interval_cycles: int = 10_000,
    memory: str = "DDR4-2ch",
    sleep_cycles: int = 20_000,
) -> Fig5Result:
    """Reproduce Fig. 5: PMU-measured vs gem5-measured IPC over time."""
    soc, pmu, drv = build_pmu_system(
        n_sort=n_sort, memory=memory, sleep_cycles=sleep_cycles
    )
    assert pmu is not None and drv is not None
    core = soc.cores[0]
    l1d = soc.l1ds[0]
    result = Fig5Result()

    drv.enable(
        sum(1 << lane for lane in COMMIT_LANES)
        | (1 << MISS_LANE)
        | (1 << CYCLE_LANE)
    )
    drv.set_threshold(CYCLE_LANE, interval_cycles)

    state = {
        "last_committed": 0,
        "last_misses": 0,
        "last_cycles": 0,
        "sampling": False,
    }

    def on_irq(tick: int) -> None:
        if state.get("finishing"):
            return  # workload done; the final drain owns the counters
        if state["sampling"]:
            return  # sample still in flight; skip this interval
        state["sampling"] = True
        # gem5-side snapshot at the interrupt instant
        committed = core.st_committed.value()
        misses = l1d.st_misses.value()
        cycles = core.st_cycles.value()
        d_committed = committed - state["last_committed"]
        d_misses = misses - state["last_misses"]
        d_cycles = max(cycles - state["last_cycles"], 1)
        state["last_committed"] = committed
        state["last_misses"] = misses
        state["last_cycles"] = cycles

        def on_values(values: dict[int, int]) -> None:
            pmu_commits = sum(values[lane] for lane in COMMIT_LANES)
            pmu_misses = values[MISS_LANE]
            result.pmu_total_commits += pmu_commits
            result.windows.append(
                IPCWindow(
                    time_ms=soc.sim.now / 1e9,
                    pmu_ipc=pmu_commits / interval_cycles,
                    gem5_ipc=d_committed / d_cycles,
                    pmu_mpki=1000.0 * pmu_misses / max(pmu_commits, 1),
                    gem5_mpki=1000.0 * d_misses / max(d_committed, 1),
                    pmu_commits=pmu_commits,
                    gem5_commits=d_committed,
                )
            )
            # clear the sampled counters (software, like the paper's dump)
            for lane in COMMIT_LANES:
                drv.clear_counter(lane)
            drv.clear_counter(MISS_LANE)
            state["sampling"] = False

        drv.read_counters(list(COMMIT_LANES) + [MISS_LANE], on_values)

    pmu.on_interrupt(on_irq)

    soc.run_until_done(cores=[core], max_ticks=10**12)
    # Quiesce: let an interval sample that just fired run to completion,
    # then ignore further interrupts so the final drain is the only
    # reader (otherwise a late interrupt would re-sample the same
    # counts the tail read is about to take).
    step = soc.sim.default_clock.cycles_to_ticks(500)
    soc.sim.run(until=soc.sim.now + 4 * step)
    state["finishing"] = True
    for _ in range(200):
        if not state["sampling"] and not soc.iomaster.busy:
            break
        soc.sim.run(until=soc.sim.now + step)

    # final drain: read whatever accumulated after the last interrupt
    # (the tail of the program), like software dumping counters at exit
    tail: dict[int, int] = {}
    drv.read_counters(list(COMMIT_LANES), lambda v: tail.update(v))
    soc.sim.run(until=soc.sim.now + soc.sim.default_clock.cycles_to_ticks(2000))
    result.pmu_total_commits += sum(tail.values())
    pmu.stop()

    result.total_committed = core.st_committed.value()
    result.total_cycles = core.st_cycles.value()
    return result


def _fig5_point(point: tuple) -> Fig5Result:
    """Worker: one Fig. 5 series at a given sampling interval."""
    n_sort, interval_cycles, memory, sleep_cycles = point
    return run_fig5(
        n_sort=n_sort, interval_cycles=interval_cycles,
        memory=memory, sleep_cycles=sleep_cycles,
    )


def run_fig5_series(
    intervals: tuple[int, ...],
    n_sort: int = 300,
    memory: str = "DDR4-2ch",
    sleep_cycles: int = 20_000,
    jobs: int = 1,
    point_timeout: float | None = None,
    keep_going: bool = False,
    progress=None,
    stats=None,
) -> dict[int, Fig5Result]:
    """Fig. 5 at several sampling intervals — each series is an
    independent full-system run, so they fan out over workers.

    With ``keep_going=True`` intervals whose point exhausted its retry
    budget are dropped from the returned dict instead of aborting the
    series (their :class:`~repro.parallel.PointFailure` is visible via
    *stats*).
    """
    from ..parallel import PointFailure

    points = [(n_sort, iv, memory, sleep_cycles) for iv in intervals]
    results = run_points(points, _fig5_point, jobs=jobs,
                         point_timeout=point_timeout, keep_going=keep_going,
                         progress=progress, stats=stats)
    return {iv: r for iv, r in zip(intervals, results)
            if not isinstance(r, PointFailure)}


# ---------------------------------------------------------------------------
# Table 2: simulation-time overhead
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    size: int
    t_gem5: float
    t_gem5_pmu: float
    t_gem5_pmu_waveform: float

    @property
    def pmu_overhead(self) -> float:
        return self.t_gem5_pmu / self.t_gem5

    @property
    def waveform_overhead(self) -> float:
        return self.t_gem5_pmu_waveform / self.t_gem5


def _timed_run(n_sort: int, with_pmu: bool, waveform: bool,
               memory: str) -> float:
    waveform_path = None
    if waveform:
        fd, waveform_path = tempfile.mkstemp(suffix=".vcd")
        os.close(fd)
    try:
        soc, pmu, drv = build_pmu_system(
            n_sort=n_sort, memory=memory, with_pmu=with_pmu,
            waveform_path=waveform_path,
        )
        if drv is not None:
            drv.enable((1 << 6) - 1)
        t0 = time.perf_counter()
        soc.run_until_done(cores=[soc.cores[0]], max_ticks=10**12)
        elapsed = time.perf_counter() - t0
        if pmu is not None:
            pmu.stop()
            trace = pmu.library.sim.trace  # type: ignore[union-attr]
            if trace is not None:
                trace.close()
                if hasattr(trace.stream, "close"):
                    trace.stream.close()
        return elapsed
    finally:
        if waveform_path and os.path.exists(waveform_path):
            os.unlink(waveform_path)


def _table2_row(point: tuple) -> Table2Row:
    """Worker: one Table 2 row — all three timed configurations run in
    the same worker so the reported *ratios* share one core's load."""
    n, memory = point
    t_plain = _timed_run(n, with_pmu=False, waveform=False, memory=memory)
    t_pmu = _timed_run(n, with_pmu=True, waveform=False, memory=memory)
    t_wave = _timed_run(n, with_pmu=True, waveform=True, memory=memory)
    return Table2Row(n, t_plain, t_pmu, t_wave)


def run_table2(
    sizes: tuple[int, ...] = (100, 200, 400),
    memory: str = "DDR4-2ch",
    jobs: int = 1,
    point_timeout: float | None = None,
    keep_going: bool = False,
    progress=None,
    stats=None,
) -> list[Table2Row]:
    """Reproduce Table 2: wall-clock overhead of gem5+PMU and +waveform.

    Sizes are the sort-benchmark N (the paper uses 3k/30k/60k on a
    C++ simulator; scaled here — the *ratios* are the result).  Rows
    are wall-clock measurements and are therefore never cached.  With
    ``keep_going=True`` failed rows are dropped from the result.
    """
    from ..parallel import PointFailure

    points = [(n, memory) for n in sizes]
    rows = run_points(points, _table2_row, jobs=jobs,
                      point_timeout=point_timeout, keep_going=keep_going,
                      progress=progress, stats=stats)
    return [r for r in rows if not isinstance(r, PointFailure)]
