"""ASCII renderers for the reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them consistently.
"""

from __future__ import annotations

from typing import Iterable

from .pmu_experiment import Fig5Result, Table2Row
from .sweep import DSEResult, INFLIGHT_SWEEP, Table3Result


def render_fig5(result: Fig5Result, max_rows: int = 0) -> str:
    lines = [
        "Fig. 5 — IPC over time: PMU counters vs gem5 statistics",
        f"{'t(ms)':>8} {'PMU IPC':>8} {'gem5 IPC':>9} "
        f"{'PMU MPKI':>9} {'gem5 MPKI':>10}",
    ]
    windows = result.windows
    if max_rows and len(windows) > max_rows:
        step = len(windows) / max_rows
        windows = [windows[int(i * step)] for i in range(max_rows)]
    for w in windows:
        lines.append(
            f"{w.time_ms:8.3f} {w.pmu_ipc:8.3f} {w.gem5_ipc:9.3f} "
            f"{w.pmu_mpki:9.2f} {w.gem5_mpki:10.2f}"
        )
    lines.append(
        f"totals: gem5 commits={result.total_committed} "
        f"PMU commits={result.pmu_total_commits} "
        f"lost-to-reset/delay={result.lost_events()}"
    )
    return "\n".join(lines)


def render_table2(rows: Iterable[Table2Row]) -> str:
    rows = list(rows)
    lines = [
        "Table 2 — simulation-time overhead vs plain gem5 (1.0 = baseline)",
        f"{'config':<22}" + "".join(f"{r.size:>10}" for r in rows),
        f"{'gem5+PMU':<22}"
        + "".join(f"{r.pmu_overhead:>10.2f}" for r in rows),
        f"{'gem5+PMU+waveform':<22}"
        + "".join(f"{r.waveform_overhead:>10.2f}" for r in rows),
    ]
    return "\n".join(lines)


def render_dse(result: DSEResult, inflight_sweep=INFLIGHT_SWEEP) -> str:
    fig = "Fig. 7" if result.workload == "sanity3" else "Fig. 6"
    sub = {1: "(a)", 2: "(b)", 4: "(c)"}.get(result.n_nvdla, "")
    lines = [
        f"{fig}{sub} — {result.workload}, {result.n_nvdla} NVDLA instance(s); "
        "performance normalized to ideal 1-cycle memory",
        f"{'max in-flight':<14}"
        + "".join(f"{m:>8}" for m in inflight_sweep),
    ]
    for memory, series in result.normalized.items():
        lines.append(
            f"{memory:<14}"
            + "".join(f"{series[m]:>8.3f}" for m in inflight_sweep)
        )
    if result.wall_seconds:
        footer = (
            f"{result.points} points: {result.point_seconds:.1f}s simulated "
            f"in {result.wall_seconds:.1f}s elapsed "
            f"({result.speedup:.1f}x, jobs={result.jobs}"
        )
        if result.cache_hits:
            footer += f", cache {result.cache_hits} hit(s)"
        lines.append(footer + ")")
    return "\n".join(lines)


def render_table3(rows: Iterable[Table3Result]) -> str:
    rows = list(rows)
    lines = [
        "Table 3 — gem5+rtl simulation-time overhead vs standalone run",
        f"{'config':<32}" + "".join(f"{r.workload:>12}" for r in rows),
        f"{'gem5+NVDLA+perfect-memory':<32}"
        + "".join(f"{r.perfect_overhead:>12.2f}" for r in rows),
        f"{'gem5+NVDLA+DDR4':<32}"
        + "".join(f"{r.ddr4_overhead:>12.2f}" for r in rows),
    ]
    return "\n".join(lines)
