"""Experiment harness: builders, sweeps and renderers for every table
and figure in the paper's evaluation (see DESIGN.md experiment index)."""

from .nvdla_system import NVDLASystem, build_nvdla_system
from .pmu_experiment import (
    Fig5Result,
    IPCWindow,
    Table2Row,
    build_pmu_system,
    run_fig5,
    run_fig5_series,
    run_table2,
)
from .render import render_dse, render_fig5, render_table2, render_table3
from .sweep import (
    DSEResult,
    INFLIGHT_SWEEP,
    MEMORIES,
    NVDLA_COUNTS,
    Table3Result,
    measure_exec_ticks,
    run_dse,
    run_standalone,
    run_table3,
)

__all__ = [
    "DSEResult", "Fig5Result", "INFLIGHT_SWEEP", "IPCWindow", "MEMORIES",
    "NVDLASystem", "NVDLA_COUNTS", "Table2Row", "Table3Result",
    "build_nvdla_system", "build_pmu_system", "measure_exec_ticks",
    "render_dse", "render_fig5", "render_table2", "render_table3",
    "run_dse", "run_fig5", "run_fig5_series", "run_standalone",
    "run_table2", "run_table3",
]
