"""NVDLA design-space exploration sweeps (Figures 6/7, Table 3).

``run_dse`` regenerates one figure: for a workload and NVDLA count it
sweeps the maximum in-flight requests {1,4,8,16,32,64,128,240} across
the five memory technologies, normalising each point to the ideal
1-cycle-memory run — exactly the paper's y-axis.

Every point is an independent full-system simulation, so the sweep
fans out over :func:`repro.parallel.run_points` process workers
(``jobs=N``) and the per-point tick counts go through
:class:`repro.parallel.ResultCache`; the merge is by point index, so a
parallel run is bit-identical to a serial one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..parallel import ResultCache, run_points
from .nvdla_system import build_nvdla_system

#: the paper's x-axis
INFLIGHT_SWEEP = (1, 4, 8, 16, 32, 64, 128, 240)
#: the paper's memory technologies
MEMORIES = ("DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM")
#: NVDLA instance counts of the (a)/(b)/(c) subfigures
NVDLA_COUNTS = (1, 2, 4)

#: default workload scales: full-size sanity3; GoogleNet shrunk for
#: wall-clock (the stream is still ~19x the 240-deep in-flight window)
DEFAULT_SCALES = {"sanity3": 1.0, "googlenet": 0.35}


def measure_exec_ticks(
    workload: str,
    n_nvdla: int,
    memory: str,
    max_inflight: int,
    scale: float,
    rtl_jobs: int = 1,
) -> int:
    """One DSE point: slowest instance's doorbell-to-IRQ time.

    ``rtl_jobs > 1`` ticks the NVDLA instances through the tier-(a)
    worker pool; the returned tick count is bit-identical either way
    (which is why it is *not* part of the point cache key).
    """
    system = build_nvdla_system(
        workload, n_nvdla=n_nvdla, memory=memory,
        max_inflight=max_inflight, scale=scale, rtl_jobs=rtl_jobs,
    )
    system.run_to_completion()
    return max(host.exec_ticks() for host in system.hosts)


@dataclass
class DSEResult:
    """One subfigure: normalized performance[memory][inflight].

    ``wall_seconds`` is *elapsed* wall time for the whole sweep;
    ``point_seconds`` is the aggregate wall time spent inside the
    simulated points (cache hits contribute their originally measured
    time).  ``point_seconds / wall_seconds`` therefore shows the
    parallel/cache speedup directly in the rendered figure.
    """

    workload: str
    n_nvdla: int
    ideal_ticks: int
    normalized: dict[str, dict[int, float]] = field(default_factory=dict)
    wall_seconds: float = 0.0
    point_seconds: float = 0.0
    jobs: int = 1
    cache_hits: int = 0
    cache_misses: int = 0

    def series(self, memory: str) -> list[float]:
        return [self.normalized[memory][m] for m in INFLIGHT_SWEEP]

    @property
    def points(self) -> int:
        return 1 + sum(len(series) for series in self.normalized.values())

    @property
    def speedup(self) -> float:
        """Aggregate point time over elapsed time (>1 when parallel
        fan-out or cache hits paid off)."""
        return self.point_seconds / self.wall_seconds if self.wall_seconds else 0.0


def _dse_point(point: tuple) -> dict:
    """Worker: one simulation point -> {ticks, seconds}.

    Module-level so it pickles into pool workers; returns the
    deterministic tick count plus the (host-dependent, never cached
    *into* the tick data) wall cost of producing it.
    """
    # legacy 5-tuple points (no rtl_jobs element) still measure serially
    workload, n_nvdla, memory, inflight, scale, *rest = point
    rtl_jobs = rest[0] if rest else 1
    t0 = time.perf_counter()
    ticks = measure_exec_ticks(workload, n_nvdla, memory, inflight, scale,
                               rtl_jobs=rtl_jobs)
    return {"ticks": ticks, "seconds": time.perf_counter() - t0}


def run_dse(
    workload: str,
    n_nvdla: int,
    inflight_sweep: tuple[int, ...] = INFLIGHT_SWEEP,
    memories: tuple[str, ...] = MEMORIES,
    scale: float | None = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    point_timeout: float | None = None,
    keep_going: bool = False,
    progress=None,
    stats=None,
    rtl_jobs: int = 1,
) -> DSEResult:
    """Regenerate one subfigure of Fig. 6 (googlenet) / Fig. 7 (sanity3).

    ``jobs > 1`` fans the points over worker processes; ``cache``
    short-circuits points already simulated by this code version.
    ``rtl_jobs > 1`` additionally parallelises *within* each multi-NVDLA
    point via the tier-(a) RTL worker pool.  Results are bit-identical
    regardless of any of these options (rtl_jobs is therefore excluded
    from the cache key).  With ``keep_going=True`` a failed point shows
    up as NaN in the normalised sweep instead of aborting it (the
    ideal-memory baseline is the one point that must succeed).
    """
    from ..parallel import PointFailure
    if scale is None:
        scale = DEFAULT_SCALES.get(workload, 1.0)
    t0 = time.perf_counter()
    # Point 0 is the ideal-memory normalisation baseline.
    points: list[tuple] = [
        (workload, n_nvdla, "ideal", max(inflight_sweep), scale, rtl_jobs)
    ]
    points += [
        (workload, n_nvdla, memory, inflight, scale, rtl_jobs)
        for memory in memories
        for inflight in inflight_sweep
    ]

    measured: list[Optional[dict]] = [None] * len(points)
    keys: list[Optional[str]] = [None] * len(points)
    todo: list[int] = []
    for i, point in enumerate(points):
        if cache is not None:
            keys[i] = cache.key(
                experiment="dse_point",
                workload=point[0], n_nvdla=point[1], memory=point[2],
                inflight=point[3], scale=point[4],
            )
            measured[i] = cache.get(keys[i])
        if measured[i] is None:
            todo.append(i)

    fresh = run_points(
        [points[i] for i in todo], _dse_point, jobs=jobs,
        point_timeout=point_timeout, keep_going=keep_going,
        progress=progress, stats=stats,
    )
    for i, value in zip(todo, fresh):
        measured[i] = value
        if isinstance(value, PointFailure):
            continue  # never cache a failure sentinel
        if cache is not None and keys[i] is not None:
            cache.put(keys[i], value, meta={"point": list(points[i])})

    if isinstance(measured[0], PointFailure):
        raise measured[0]  # nothing to normalise against
    ideal = measured[0]["ticks"]
    result = DSEResult(workload, n_nvdla, ideal, jobs=jobs)
    cursor = 1
    for memory in memories:
        result.normalized[memory] = {}
        for inflight in inflight_sweep:
            m = measured[cursor]
            result.normalized[memory][inflight] = (
                float("nan") if isinstance(m, PointFailure)
                else ideal / m["ticks"]
            )
            cursor += 1
    result.point_seconds = sum(
        m["seconds"] for m in measured if not isinstance(m, PointFailure)
    )
    result.wall_seconds = time.perf_counter() - t0
    result.cache_misses = len(todo)
    result.cache_hits = len(points) - len(todo)
    return result


# ---------------------------------------------------------------------------
# Coherence axis: sharer-count sweeps of the MESI sharing stress
# ---------------------------------------------------------------------------

#: default sharer counts for the coherence axis
SHARERS_SWEEP = (1, 2, 4)


def _coherence_point(point: tuple) -> dict:
    """Worker: one sharing-stress point -> its full result dict.

    Module-level so it pickles into pool workers.  The embedded stats
    dump is deterministic, so serial and pooled sweeps merge
    bit-identically (and cache safely)."""
    from ..coherence import run_sharing_stress

    sharers, ops, seed, rtl = point
    t0 = time.perf_counter()
    result = run_sharing_stress(cores=int(sharers), ops=int(ops),
                                seed=int(seed), rtl=bool(rtl))
    result["seconds"] = time.perf_counter() - t0
    return result


def run_coherence_sweep(
    sharers: tuple[int, ...] = SHARERS_SWEEP,
    ops: int = 400,
    seed: int = 0,
    rtl: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    point_timeout: float | None = None,
    keep_going: bool = False,
    progress=None,
    stats=None,
) -> dict[int, dict]:
    """Sweep the sharer count through the MESI sharing stress.

    Each point is one :func:`repro.coherence.run_sharing_stress` run
    (protocol invariants audited throughout, golden memory compared at
    the end); points fan out over ``run_points`` workers and
    short-circuit through *cache* exactly like the NVDLA DSE points.
    Returns ``{sharers: result_dict}``; a failed point (only possible
    with ``keep_going=True``) is reported as ``None``.
    """
    from ..parallel import PointFailure

    points = [(n, ops, seed, rtl) for n in sharers]
    measured: list[Optional[dict]] = [None] * len(points)
    keys: list[Optional[str]] = [None] * len(points)
    todo: list[int] = []
    for i, point in enumerate(points):
        if cache is not None:
            keys[i] = cache.key(
                experiment="coherence_point",
                sharers=point[0], ops=point[1], seed=point[2], rtl=point[3],
            )
            measured[i] = cache.get(keys[i])
        if measured[i] is None:
            todo.append(i)

    fresh = run_points(
        [points[i] for i in todo], _coherence_point, jobs=jobs,
        point_timeout=point_timeout, keep_going=keep_going,
        progress=progress, stats=stats,
    )
    for i, value in zip(todo, fresh):
        measured[i] = value
        if isinstance(value, PointFailure):
            continue  # never cache a failure sentinel
        if cache is not None and keys[i] is not None:
            cache.put(keys[i], value, meta={"point": list(points[i])})

    return {
        n: (None if isinstance(m, PointFailure) else m)
        for n, m in zip(sharers, measured)
    }


# ---------------------------------------------------------------------------
# Table 3: simulation-time overhead vs standalone "Verilator" run
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    workload: str
    t_standalone: float
    t_perfect_memory: float
    t_ddr4: float

    @property
    def perfect_overhead(self) -> float:
        return self.t_perfect_memory / self.t_standalone

    @property
    def ddr4_overhead(self) -> float:
        return self.t_ddr4 / self.t_standalone


def run_standalone(workload: str, scale: float) -> float:
    """Standalone accelerator simulation (the paper's plain-Verilator
    baseline): the *same* model + wrapper (struct boundary included,
    like nvdla.cpp driving the verilated model), against an ideal
    zero-latency testbench memory — no SoC, no trace-load phase, it
    'reads the trace directly'."""
    from ..models.nvdla.trace import RegWrite, WaitIrq
    from ..models.nvdla.workloads import WORKLOADS
    from ..models.nvdla.wrapper import NVDLASharedLibrary, RESP_LANES

    trace = WORKLOADS[workload](scale=scale)
    lib = NVDLASharedLibrary()
    lib.reset()
    in_spec, out_spec = lib.input_spec, lib.output_spec

    t0 = time.perf_counter()
    pending: list[int] = []
    unacked = 0
    for cmd in trace.commands():
        if isinstance(cmd, RegWrite):
            lib.tick(in_spec.pack(csb_valid=1, csb_write=1,
                                  csb_addr=cmd.addr, csb_wdata=cmd.value))
        elif isinstance(cmd, WaitIrq):
            # the testbench memory: every request completes next cycle
            for _ in range(10_000_000):  # bounded spin
                seqs = pending[:RESP_LANES]
                pending = pending[RESP_LANES:]
                out = out_spec.unpack(lib.tick(in_spec.pack(
                    credit=255,
                    rd_resp_count=len(seqs),
                    rd_resp_seqs=seqs + [0] * (RESP_LANES - len(seqs)),
                    wr_acks=min(unacked, 7),
                )))
                unacked -= min(unacked, 7)
                pending.extend(out["rd_seqs"][: out["rd_count"]])
                unacked += out["wr_count"]
                if out["irq"]:
                    break
            else:  # pragma: no cover - defensive
                raise RuntimeError("standalone run did not complete")
    return time.perf_counter() - t0


def run_full_system(
    workload: str, memory: str, scale: float, rtl_jobs: int = 1
) -> float:
    """gem5+NVDLA wall time, including the timed trace-load phase."""
    system = build_nvdla_system(
        workload, n_nvdla=1, memory=memory, max_inflight=240,
        timed_load=True, scale=scale, rtl_jobs=rtl_jobs,
    )
    t0 = time.perf_counter()
    system.run_to_completion()
    return time.perf_counter() - t0


def _table3_row(point: tuple) -> Table3Result:
    """Worker: one Table 3 row.  The three timed runs stay inside one
    worker so their *ratio* (the reported result) is taken on a single,
    equally loaded core."""
    workload, scale, *rest = point
    rtl_jobs = rest[0] if rest else 1
    t_alone = run_standalone(workload, scale)
    t_perfect = run_full_system(workload, "ideal", scale, rtl_jobs)
    t_ddr4 = run_full_system(workload, "DDR4-4ch", scale, rtl_jobs)
    return Table3Result(workload, t_alone, t_perfect, t_ddr4)


def run_table3(
    workloads: tuple[str, ...] = ("sanity3", "googlenet"),
    scales: dict[str, float] | None = None,
    jobs: int = 1,
    point_timeout: float | None = None,
    keep_going: bool = False,
    progress=None,
    stats=None,
    rtl_jobs: int = 1,
) -> list[Table3Result]:
    """Reproduce Table 3: full-system overhead vs standalone simulation.

    Rows are wall-clock measurements, so they are never cached; with
    ``jobs > 1`` each row runs in its own worker (ratios within a row
    remain honest — all three timings share one worker's core).  With
    ``keep_going=True`` failed rows are dropped from the result.
    """
    from ..parallel import PointFailure

    scales = scales or DEFAULT_SCALES
    points = [(w, scales.get(w, 1.0), rtl_jobs) for w in workloads]
    rows = run_points(points, _table3_row, jobs=jobs,
                      point_timeout=point_timeout, keep_going=keep_going,
                      progress=progress, stats=stats)
    return [r for r in rows if not isinstance(r, PointFailure)]
