"""NVDLA design-space exploration sweeps (Figures 6/7, Table 3).

``run_dse`` regenerates one figure: for a workload and NVDLA count it
sweeps the maximum in-flight requests {1,4,8,16,32,64,128,240} across
the five memory technologies, normalising each point to the ideal
1-cycle-memory run — exactly the paper's y-axis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .nvdla_system import build_nvdla_system

#: the paper's x-axis
INFLIGHT_SWEEP = (1, 4, 8, 16, 32, 64, 128, 240)
#: the paper's memory technologies
MEMORIES = ("DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM")
#: NVDLA instance counts of the (a)/(b)/(c) subfigures
NVDLA_COUNTS = (1, 2, 4)

#: default workload scales: full-size sanity3; GoogleNet shrunk for
#: wall-clock (the stream is still ~19x the 240-deep in-flight window)
DEFAULT_SCALES = {"sanity3": 1.0, "googlenet": 0.35}


def measure_exec_ticks(
    workload: str,
    n_nvdla: int,
    memory: str,
    max_inflight: int,
    scale: float,
) -> int:
    """One DSE point: slowest instance's doorbell-to-IRQ time."""
    system = build_nvdla_system(
        workload, n_nvdla=n_nvdla, memory=memory,
        max_inflight=max_inflight, scale=scale,
    )
    system.run_to_completion()
    return max(host.exec_ticks() for host in system.hosts)


@dataclass
class DSEResult:
    """One subfigure: normalized performance[memory][inflight]."""

    workload: str
    n_nvdla: int
    ideal_ticks: int
    normalized: dict[str, dict[int, float]] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def series(self, memory: str) -> list[float]:
        return [self.normalized[memory][m] for m in INFLIGHT_SWEEP]


def run_dse(
    workload: str,
    n_nvdla: int,
    inflight_sweep: tuple[int, ...] = INFLIGHT_SWEEP,
    memories: tuple[str, ...] = MEMORIES,
    scale: float | None = None,
) -> DSEResult:
    """Regenerate one subfigure of Fig. 6 (googlenet) / Fig. 7 (sanity3)."""
    if scale is None:
        scale = DEFAULT_SCALES.get(workload, 1.0)
    t0 = time.perf_counter()
    ideal = measure_exec_ticks(workload, n_nvdla, "ideal",
                               max(inflight_sweep), scale)
    result = DSEResult(workload, n_nvdla, ideal)
    for memory in memories:
        result.normalized[memory] = {}
        for inflight in inflight_sweep:
            ticks = measure_exec_ticks(workload, n_nvdla, memory,
                                       inflight, scale)
            result.normalized[memory][inflight] = ideal / ticks
    result.wall_seconds = time.perf_counter() - t0
    return result


# ---------------------------------------------------------------------------
# Table 3: simulation-time overhead vs standalone "Verilator" run
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    workload: str
    t_standalone: float
    t_perfect_memory: float
    t_ddr4: float

    @property
    def perfect_overhead(self) -> float:
        return self.t_perfect_memory / self.t_standalone

    @property
    def ddr4_overhead(self) -> float:
        return self.t_ddr4 / self.t_standalone


def run_standalone(workload: str, scale: float) -> float:
    """Standalone accelerator simulation (the paper's plain-Verilator
    baseline): the *same* model + wrapper (struct boundary included,
    like nvdla.cpp driving the verilated model), against an ideal
    zero-latency testbench memory — no SoC, no trace-load phase, it
    'reads the trace directly'."""
    from ..models.nvdla.trace import RegWrite, WaitIrq
    from ..models.nvdla.workloads import WORKLOADS
    from ..models.nvdla.wrapper import NVDLASharedLibrary, RESP_LANES

    trace = WORKLOADS[workload](scale=scale)
    lib = NVDLASharedLibrary()
    lib.reset()
    in_spec, out_spec = lib.input_spec, lib.output_spec

    t0 = time.perf_counter()
    pending: list[int] = []
    unacked = 0
    for cmd in trace.commands():
        if isinstance(cmd, RegWrite):
            lib.tick(in_spec.pack(csb_valid=1, csb_write=1,
                                  csb_addr=cmd.addr, csb_wdata=cmd.value))
        elif isinstance(cmd, WaitIrq):
            # the testbench memory: every request completes next cycle
            for _ in range(10_000_000):  # bounded spin
                seqs = pending[:RESP_LANES]
                pending = pending[RESP_LANES:]
                out = out_spec.unpack(lib.tick(in_spec.pack(
                    credit=255,
                    rd_resp_count=len(seqs),
                    rd_resp_seqs=seqs + [0] * (RESP_LANES - len(seqs)),
                    wr_acks=min(unacked, 7),
                )))
                unacked -= min(unacked, 7)
                pending.extend(out["rd_seqs"][: out["rd_count"]])
                unacked += out["wr_count"]
                if out["irq"]:
                    break
            else:  # pragma: no cover - defensive
                raise RuntimeError("standalone run did not complete")
    return time.perf_counter() - t0


def run_full_system(workload: str, memory: str, scale: float) -> float:
    """gem5+NVDLA wall time, including the timed trace-load phase."""
    system = build_nvdla_system(
        workload, n_nvdla=1, memory=memory, max_inflight=240,
        timed_load=True, scale=scale,
    )
    t0 = time.perf_counter()
    system.run_to_completion()
    return time.perf_counter() - t0


def run_table3(
    workloads: tuple[str, ...] = ("sanity3", "googlenet"),
    scales: dict[str, float] | None = None,
) -> list[Table3Result]:
    """Reproduce Table 3: full-system overhead vs standalone simulation."""
    scales = scales or DEFAULT_SCALES
    rows = []
    for workload in workloads:
        scale = scales.get(workload, 1.0)
        t_alone = run_standalone(workload, scale)
        t_perfect = run_full_system(workload, "ideal", scale)
        t_ddr4 = run_full_system(workload, "DDR4-4ch", scale)
        rows.append(Table3Result(workload, t_alone, t_perfect, t_ddr4))
    return rows
