#!/usr/bin/env python3
"""VHDL/GHDL-flow demo: the bitonic sorting accelerator.

The paper brought up its GHDL support with a bitonic sorter written in
VHDL; this example compiles that design (``bitonic.vhdl``, unmodified)
with the VHDL frontend, pushes vectors through the 6-stage pipeline at
one per cycle, and dumps a waveform — demonstrating that VHDL designs
get the same treatment as Verilog ones.

Run:  python examples/bitonic_sorting.py
"""

import random

from repro.models.bitonic import (
    BitonicSharedLibrary,
    PIPELINE_DEPTH,
    load_bitonic_source,
)


def main() -> None:
    src = load_bitonic_source()
    print(f"compiling bitonic.vhdl ({len(src.splitlines())} lines of VHDL) "
          "with the GHDL-equivalent frontend...")
    with open("/tmp/bitonic.vcd", "w") as stream:
        lib = BitonicSharedLibrary(width=16, trace_stream=stream,
                                   trace_enabled=True)
        lib.reset()

        rng = random.Random(1234)
        batches = [
            [rng.randrange(0, 1 << 16) for _ in range(8)] for _ in range(64)
        ]
        results: list[list[int]] = []
        feed = iter(batches)
        ticks = 0
        while len(results) < len(batches):
            batch = next(feed, None)
            if batch is not None:
                buf = lib.input_spec.pack(valid_in=1, data=batch)
            else:
                buf = lib.input_spec.zeros()
            out = lib.output_spec.unpack(lib.tick(buf))
            if out["valid_out"]:
                results.append(out["data"])
            ticks += 1

        ok = sum(r == sorted(b) for r, b in zip(results, batches))
        print(f"sorted {ok}/{len(batches)} vectors in {ticks} cycles "
              f"(pipeline depth {PIPELINE_DEPTH}, one vector/cycle)")
        assert ok == len(batches)

        print("example vector:")
        print(f"  in : {batches[0]}")
        print(f"  out: {results[0]}")
    print("waveform written to /tmp/bitonic.vcd")


if __name__ == "__main__":
    main()
