#!/usr/bin/env python3
"""Fig. 2(a) connectivity: a cache written in Verilog, inside the SoC.

The paper contrasts its tightly-coupled interface with IPC-based
co-simulation precisely with this scenario: "adding a new cache in RTL
connected to the cores of gem5 would be very difficult to simulate [over
IPC]".  Here a direct-mapped write-through cache written in Verilog
(``rtl_cache.v``, compiled unmodified) serves 8-byte requests, misses to
a DDR4 model, and returns data that genuinely flowed through the
hardware's 512-bit line registers.

Run:  python examples/rtl_cache_in_soc.py
"""

import random

from repro.models.rtlcache import RTLCacheObject
from repro.soc.iomaster import IOMaster
from repro.soc.mem import DRAMController, ddr4_2400
from repro.soc.simobject import Simulation


def main() -> None:
    sim = Simulation()
    rtlc = RTLCacheObject(sim, "rtl_l1")
    dram = DRAMController(sim, "dram", ddr4_2400(2))
    host = IOMaster(sim, "host")
    host.port.connect(rtlc.cpu_side[0])
    rtlc.mem_side[0].connect(dram.port)

    # seed memory with a recognizable image
    rng = random.Random(7)
    image = bytes(rng.randrange(256) for _ in range(4096))
    dram.physmem.write(0x10000, image)

    # a simple working set: sequential sweep, then re-reads (should hit)
    results: list[tuple[int, bytes]] = []

    def reader(addr: int):
        host.read(addr, size=8,
                  callback=lambda p, a=addr: results.append((a, p.data)))

    addrs = [0x10000 + 8 * i for i in range(256)]      # 2 KiB sweep
    addrs += [0x10000 + 8 * rng.randrange(256) for _ in range(128)]
    for addr in addrs:
        reader(addr)
    # and a few writes (write-through)
    for i in range(16):
        host.write(0x10000 + 64 * i, (0xBEEF00 + i).to_bytes(8, "little"))

    sim.run(until=10**9)
    rtlc.stop()

    # verify every read returned the true memory content
    ok = sum(
        data == image[a - 0x10000 : a - 0x10000 + 8] for a, data in results
    )
    hits = rtlc.library.sim.peek("hit_count")
    misses = rtlc.library.sim.peek("miss_count")
    print(f"reads verified : {ok}/{len(results)} correct "
          "(data path goes through the RTL line registers)")
    print(f"RTL counters   : {hits} hits, {misses} misses "
          f"(hit rate {hits / (hits + misses):.1%})")
    print(f"DRAM traffic   : {dram.st_reads.value()} line fills, "
          f"{dram.st_writes.value()} write-throughs")
    assert ok == len(results)
    assert misses <= 64 + 16  # 32 lines in the sweep + write misses

    # write-throughs landed in memory
    for i in range(16):
        stored = dram.physmem.read_word(0x10000 + 64 * i, 8)
        assert stored == 0xBEEF00 + i
    print("write-through data verified in DRAM")


if __name__ == "__main__":
    main()
