#!/usr/bin/env python3
"""Quickstart: compile unmodified RTL, simulate it, and drop it into an SoC.

Walks the three blocks of the gem5+rtl framework (paper Fig. 1):

1. an RTL model (Verilog here) is compiled by the Verilator-equivalent
   frontend into an executable model;
2. a shared-library wrapper exposes ``tick``/``reset`` and exchanges
   packed structs;
3. an RTLObject bridges the wrapper into a simulated SoC, where host
   software talks to it over MMIO.

Run:  python examples/quickstart.py
"""

from repro.bridge import Field, RTLSharedLibrary, RTLObject, StructSpec
from repro.hdl.verilog import compile_verilog
from repro.rtl import RTLSimulator, VCDWriter
from repro.soc.system import SoC, SoCConfig

# ---------------------------------------------------------------------------
# 1) An unmodified Verilog design: a saturating event counter.
# ---------------------------------------------------------------------------

COUNTER_V = """
module sat_counter #(parameter W = 16) (
    input clk,
    input rst,
    input event_in,
    input clear,
    output [W-1:0] count,
    output saturated
);
    reg [W-1:0] cnt;
    always @(posedge clk) begin
        if (rst || clear)
            cnt <= 0;
        else if (event_in && !saturated)
            cnt <= cnt + 1;
    end
    assign count = cnt;
    assign saturated = (cnt == {W{1'b1}});
endmodule
"""


def standalone_demo() -> None:
    print("== standalone RTL simulation ==")
    rtl = compile_verilog(COUNTER_V, params={"W": 8})
    with open("/tmp/sat_counter.vcd", "w") as stream:
        sim = RTLSimulator(rtl, trace=VCDWriter(rtl, stream=stream))
        sim.reset()
        sim.poke("event_in", 1)
        sim.settle()
        sim.tick(300)   # 300 events > 255: saturates
        print(f"count={sim.peek('count')}  saturated={sim.peek('saturated')}")
        assert sim.peek("count") == 255 and sim.peek("saturated") == 1
    print("waveform written to /tmp/sat_counter.vcd")


# ---------------------------------------------------------------------------
# 2) The shared-library wrapper: tick/reset + struct exchange.
# ---------------------------------------------------------------------------

COUNTER_IN = StructSpec("ctr_in", [Field("event_in", 1), Field("clear", 1)])
COUNTER_OUT = StructSpec("ctr_out", [Field("count", 16), Field("saturated", 1)])


class CounterLibrary(RTLSharedLibrary):
    input_spec = COUNTER_IN
    output_spec = COUNTER_OUT

    def __init__(self) -> None:
        super().__init__(compile_verilog(COUNTER_V, params={"W": 16}))

    def drive(self, inputs: dict) -> None:
        self.sim.poke("event_in", inputs["event_in"])
        self.sim.poke("clear", inputs["clear"])

    def collect(self) -> dict:
        return {
            "count": self.sim.peek("count"),
            "saturated": self.sim.peek("saturated"),
        }


# ---------------------------------------------------------------------------
# 3) The RTLObject: integrate the counter into a full SoC.
# ---------------------------------------------------------------------------


class CounterRTLObject(RTLObject):
    """Counts LLC misses; host software reads the count over MMIO."""

    MMIO_BASE = 0x4000_0000

    def __init__(self, sim, name, library, llc):
        super().__init__(sim, name, library)
        self.events = 0
        llc.miss_listeners.append(lambda pkt: self._bump())
        self.last_count = 0

    def _bump(self) -> None:
        self.events += 1

    def build_input(self) -> bytes:
        event = 1 if self.events else 0
        if self.events:
            self.events -= 1
        clear = 0
        while self.cpu_req_queue:
            pkt = self.cpu_req_queue.popleft()
            if pkt.is_write:
                clear = 1
                self.respond_cpu(pkt)
            else:
                # respond from the last observed count
                self.respond_cpu(
                    pkt, self.last_count.to_bytes(pkt.size, "little")
                )
        return self.library.input_spec.pack(event_in=event, clear=clear)

    def consume_output(self, outputs: dict) -> None:
        self.last_count = outputs["count"]


def soc_demo() -> None:
    print("\n== RTL model inside a full SoC ==")
    soc = SoC(SoCConfig(num_cores=1, memory="DDR4-2ch"))
    ctr = CounterRTLObject(soc.sim, "miss_ctr", CounterLibrary(), soc.llc)
    soc.attach_rtl_cpu_side(ctr)

    # a pointer-chasing workload that misses the caches
    from repro.soc.cpu import alu, load

    def workload():
        for i in range(4000):
            yield load((i * 64 * 13) % (1 << 22))
            yield alu(1)

    soc.cores[0].run_stream(workload())
    soc.run_until_done()

    readings = []
    soc.iomaster.read(
        CounterRTLObject.MMIO_BASE, size=4,
        callback=lambda pkt: readings.append(int.from_bytes(pkt.data, "little")),
    )
    soc.sim.run(until=soc.sim.now + 200_000)
    ctr.stop()

    print(f"RTL counter read over MMIO : {readings[0]}")
    print(f"simulator's own LLC misses : {soc.llc.st_misses.value()}")
    assert abs(readings[0] - soc.llc.st_misses.value()) <= 4


if __name__ == "__main__":
    standalone_demo()
    soc_demo()
    print("\nquickstart OK")
