#!/usr/bin/env python3
"""Run a real assembly program on the simulated SoC, monitored by the PMU.

The paper's SoC runs real binaries under Linux; this example is the
repo's closest equivalent: a bubble sort written in assembly for the
repro ISA, assembled into simulated memory, executed on the out-of-order
timing core — with the Verilog PMU watching commits and cache misses.

Run:  python examples/assembly_workload.py [N]
"""

import random
import sys

from repro.isa import run_program
from repro.isa.programs import bubble_sort
from repro.models.pmu import PMUDriver, PMURTLObject, PMUSharedLibrary
from repro.soc.cpu.core import EventWire
from repro.soc.system import SoC, SoCConfig


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    soc = SoC(SoCConfig(num_cores=1, memory="DDR4-2ch"))
    core = soc.cores[0]

    # PMU wiring (commits on lanes 0-3, L1D misses on lane 4)
    pmu = PMURTLObject(soc.sim, "pmu", PMUSharedLibrary(),
                       clock=soc.sim.default_clock)
    soc.attach_rtl_cpu_side(pmu)
    pmu.connect_event(0, core.commit_wire, lanes=4)
    miss_wire = EventWire("l1d")
    soc.l1ds[0].miss_listeners.append(lambda pkt: miss_wire.pulse())
    pmu.connect_event(4, miss_wire)
    drv = PMUDriver(soc.iomaster)
    drv.enable(0b11111)

    # data + program
    rng = random.Random(11)
    values = [rng.randrange(0, 1 << 30) for _ in range(n)]
    base = 0x10_0000
    for i, v in enumerate(values):
        soc.physmem.write_word(base + 4 * i, v, 4)

    src = bubble_sort(base=base, n=n)
    print(f"assembling bubble sort ({len(src.splitlines())} lines) "
          f"for {n} elements...")
    thread = run_program(src, soc.physmem)
    core.run_stream(thread.uops())
    soc.run_until_done()

    # read the PMU over MMIO
    counters: dict[int, int] = {}
    drv.read_counters([0, 1, 2, 3, 4], lambda r: counters.update(r))
    soc.sim.run(until=soc.sim.now + 10**6)
    pmu.stop()

    got = [soc.physmem.read_word(base + 4 * i, 4) for i in range(n)]
    assert got == sorted(values), "the program must actually sort"
    commits = sum(counters[i] for i in range(4))
    print(f"sorted {n} words in {thread.retired} instructions")
    print(f"core: {core.st_cycles.value()} cycles, IPC {core.ipc():.2f}, "
          f"{core.st_mispredicts.value()} mispredicts")
    print(f"PMU : {commits} commits, {counters[4]} L1D misses "
          "(read over MMIO from the Verilog model)")
    assert abs(commits - core.st_committed.value()) <= 4


if __name__ == "__main__":
    main()
