#!/usr/bin/env python3
"""PMU use case (paper §4.1 / Fig. 5): monitor a multi-phase workload.

Runs the paper's three-sort benchmark (QuickSort over 10× the elements,
then SelectionSort and BubbleSort, separated by sleeps) on a simulated
out-of-order core with the Verilog PMU attached.  The PMU interrupts
every 10 000 cycles; the interrupt handler reads the counters over MMIO
and the harness compares the PMU-measured IPC/MPKI against the
simulator's own statistics — they should overlap, with a small,
quantified number of events lost to the counter-clear window.

Run:  python examples/pmu_monitoring.py [N]
"""

import sys

from repro.dse import render_fig5, run_fig5


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    print(f"running sort benchmark (N={n}, quicksort {10 * n}) with PMU...")
    result = run_fig5(n_sort=n, interval_cycles=10_000)
    print()
    print(render_fig5(result, max_rows=40))

    # the headline claims, checked:
    errs = sorted(
        abs(w.pmu_ipc - w.gem5_ipc)
        for w in result.windows
        if w.gem5_commits > 100
    )
    median_err = errs[len(errs) // 2]
    close = sum(1 for e in errs if e < 0.05)
    sleeps = [w for w in result.windows if w.gem5_ipc < 0.01]
    print()
    print(f"windows: {len(result.windows)}  sleep windows: {len(sleeps)}")
    print(f"median |PMU - gem5| IPC: {median_err:.4f}; "
          f"{close}/{len(errs)} windows agree within 0.05 "
          "(phase boundaries skew by sampling latency, as in the paper)")
    loss = result.lost_events() / max(result.total_committed, 1)
    print(f"events lost to reset/delay: {result.lost_events()} "
          f"({100 * loss:.2f}% — the interaction the paper quantifies)")


if __name__ == "__main__":
    main()
