"""Fuzz determinism, corpus minimisation and persistence."""

from __future__ import annotations

import json

from repro.hdl.common import CoverageOptions
from repro.verify import (
    Stimulus,
    fuzz,
    get_design,
    load_corpus,
    minimize_corpus,
    save_corpus,
)


def make_sim():
    return get_design("pmu").make_sim(instrument=CoverageOptions())


class TestDeterminism:
    def test_same_seed_same_corpus_and_coverage(self):
        a = fuzz(make_sim, seed=13, runs=6, cycles=24)
        b = fuzz(make_sim, seed=13, runs=6, cycles=24)
        assert [s.to_dict() for s in a.corpus] == \
               [s.to_dict() for s in b.corpus]
        assert a.summary == b.summary
        assert a.total_keys == b.total_keys

    def test_different_seed_differs(self):
        a = fuzz(make_sim, seed=13, runs=6, cycles=24)
        b = fuzz(make_sim, seed=14, runs=6, cycles=24)
        assert [s.to_dict() for s in a.corpus] != \
               [s.to_dict() for s in b.corpus]

    def test_stimulus_replay_is_deterministic(self):
        stim = Stimulus("uniform", 99, 32)
        outs = []
        for _ in range(2):
            sim = make_sim()
            stim.apply(sim)
            outs.append(list(sim.values))
        assert outs[0] == outs[1]


class TestCoverageGuidance:
    def test_corpus_only_keeps_coverage_increasing_runs(self):
        result = fuzz(make_sim, seed=3, runs=12, cycles=24)
        assert 0 < len(result.corpus) <= result.runs
        # every kept entry contributed keys; their union is the replayable set
        assert result.replay_keys() <= result.total_keys

    def test_minimized_corpus_preserves_coverage(self):
        result = fuzz(make_sim, seed=3, runs=12, cycles=24, minimize=False)
        kept, kept_keys = minimize_corpus(result.corpus, result.corpus_keys)
        union_before = set().union(*result.corpus_keys) \
            if result.corpus_keys else set()
        union_after = set().union(*kept_keys) if kept_keys else set()
        assert union_after == union_before
        assert len(kept) <= len(result.corpus)

    def test_summary_shape(self):
        result = fuzz(make_sim, seed=1, runs=4, cycles=16)
        stmt = result.summary["statement"]
        assert set(stmt) == {"covered", "total", "pct"}
        assert 0 < stmt["covered"] <= stmt["total"]
        assert result.summary["toggle"]["total_bits"] > 0


class TestPersistence:
    def test_corpus_roundtrip(self, tmp_path):
        result = fuzz(make_sim, seed=21, runs=6, cycles=16)
        path = tmp_path / "pmu.json"
        save_corpus(path, "pmu", 21, result)
        loaded = load_corpus(path)
        assert [s.to_dict() for s in loaded] == \
               [s.to_dict() for s in result.corpus]
        doc = json.loads(path.read_text())
        assert doc["design"] == "pmu"
        assert doc["seed"] == 21
        assert doc["coverage"] == result.summary

    def test_saved_json_is_byte_deterministic(self, tmp_path):
        texts = []
        for name in ("a.json", "b.json"):
            result = fuzz(make_sim, seed=8, runs=5, cycles=16)
            path = tmp_path / name
            save_corpus(path, "pmu", 8, result)
            texts.append(path.read_text())
        assert texts[0] == texts[1]
