"""The coverage identity invariant: interp == codegen, bit for bit.

Statement counters are compiled into the shared generated source, and
toggle/FSM coverage observes only architectural values — so for any
stimulus the two backends must report *identical* coverage.  This file
enforces that over every bundled design and several stimulus shapes.
"""

from __future__ import annotations

import pytest

from repro.hdl.common import CoverageOptions
from repro.hdl.verilog import compile_verilog
from repro.rtl import RTLSimulator
from repro.verify import CoverageCollector, Stimulus, design_names, get_design


def coverage_for(design, backend: str, stim: Stimulus) -> dict:
    sim = design.make_sim(backend=backend, instrument=CoverageOptions())
    collector = CoverageCollector(sim)
    stim.apply(sim, collector)
    doc = collector.report().to_dict()
    doc.pop("backend")
    return doc


@pytest.mark.parametrize("name", design_names())
@pytest.mark.parametrize("strategy", ("uniform", "weighted", "reset_pulse"))
def test_identical_coverage_across_backends(name, strategy):
    design = get_design(name)
    stim = Stimulus(strategy, seed=11, cycles=48)
    interp = coverage_for(design, "interp", stim)
    codegen = coverage_for(design, "codegen", stim)
    assert interp == codegen


@pytest.mark.parametrize("name", design_names())
def test_statement_points_exist_and_count(name):
    design = get_design(name)
    sim = design.make_sim(instrument=CoverageOptions())
    collector = CoverageCollector(sim)
    Stimulus("uniform", 5, 32).apply(sim, collector)
    report = collector.report()
    assert report.statement_total > 0
    assert report.statement_covered > 0
    assert sum(p["hits"] for p in report.statement) > 0


def test_uninstrumented_design_has_no_points():
    design = get_design("pmu")
    module = design.compile()  # no instrument
    assert module.coverage_points == []
    assert all(not s.name.startswith("__cov__")
               for s in module.signals.values())


FSM_V = """
module fsm(input clk, input rst, input go, output reg out);
    reg [1:0] state;
    always @(posedge clk) begin
        if (rst) begin
            state <= 2'd0;
            out <= 1'b0;
        end else begin
            case (state)
                2'd0: if (go) state <= 2'd1;
                2'd1: state <= 2'd2;
                2'd2: begin state <= 2'd0; out <= 1'b1; end
                default: state <= 2'd0;
            endcase
        end
    end
endmodule
"""


class TestFSMCoverage:
    def make(self, backend: str = "codegen") -> RTLSimulator:
        module = compile_verilog(FSM_V, top="fsm", filename="fsm.v",
                                 instrument=CoverageOptions())
        return RTLSimulator(module, backend=backend)

    def test_fsm_detected_at_elaboration(self):
        sim = self.make()
        infos = sim.module.fsm_infos
        assert len(infos) == 1
        assert infos[0].signal == "state"
        assert set(infos[0].states) == {0, 1, 2}

    def test_states_and_edges_recorded(self):
        sim = self.make()
        collector = CoverageCollector(sim)
        sim.reset()
        collector.sample()
        sim.poke("go", 1)
        collector.run_and_sample(8)
        report = collector.report()
        (entry,) = report.fsm
        assert entry["visited_states"] == [0, 1, 2]
        assert [0, 1] in entry["edges"] and [1, 2] in entry["edges"]
        assert report.fsm_state_covered == 3

    def test_fsm_coverage_identical_across_backends(self):
        docs = []
        for backend in ("interp", "codegen"):
            sim = self.make(backend)
            collector = CoverageCollector(sim)
            Stimulus("weighted", 3, 40).apply(sim, collector)
            doc = collector.report().to_dict()
            doc.pop("backend")
            docs.append(doc)
        assert docs[0] == docs[1]


class TestToggleCoverage:
    def test_toggle_bits_accumulate(self):
        design = get_design("pmu")
        sim = design.make_sim(instrument=CoverageOptions())
        collector = CoverageCollector(sim)
        Stimulus("uniform", 9, 64).apply(sim, collector)
        report = collector.report()
        assert 0 < report.toggle_covered <= report.toggle_total
        by_name = {s["name"]: s for s in report.toggle}
        # a free-toggling input must show both transition directions
        assert by_name["wdata"]["t01_bits"] > 0
        assert by_name["wdata"]["t10_bits"] > 0

    def test_hidden_counters_not_in_toggle_report(self):
        design = get_design("pmu")
        sim = design.make_sim(instrument=CoverageOptions())
        collector = CoverageCollector(sim)
        Stimulus("uniform", 9, 16).apply(sim, collector)
        assert all(not s["name"].startswith("__cov__")
                   for s in collector.report().toggle)


class TestEnableDisable:
    def test_disabled_window_excludes_statement_hits(self):
        design = get_design("pmu")
        sim = design.make_sim(instrument=CoverageOptions())
        collector = CoverageCollector(sim)
        sim.reset()
        collector.sample()
        collector.disable()
        sim.tick(20)           # counters tick in the kernel regardless
        collector.enable()
        hits_after_blind_window = sum(collector.statement_hits())
        collector.run_and_sample(10)
        hits_final = sum(collector.statement_hits())
        # the blind window contributed nothing; the live window did
        blind = hits_after_blind_window
        sim2 = design.make_sim(instrument=CoverageOptions())
        c2 = CoverageCollector(sim2)
        sim2.reset()
        c2.sample()
        baseline = sum(c2.statement_hits())
        assert blind == baseline
        assert hits_final > hits_after_blind_window
