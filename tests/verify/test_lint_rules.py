"""Every lint rule has a positive (fires) and negative (clean) fixture."""

from __future__ import annotations

from repro.verify import lint_source
from repro.verify.lint import (
    RULE_ASYNCRESET,
    RULE_CASE,
    RULE_LATCH,
    RULE_MULTIDRIVEN,
    RULE_SNOOPDRIVE,
    RULE_SYNTAX,
    RULE_UNDRIVEN,
    RULE_UNUSED,
    RULE_WIDTH,
)


def rules_of(source: str, filename: str = "t.v") -> set[str]:
    return {f.rule for f in lint_source(source, filename).findings}


class TestMultiDriven:
    def test_two_continuous_assigns_fire(self):
        src = """
        module m(input a, input b, output x);
            assign x = a;
            assign x = b;
        endmodule
        """
        assert RULE_MULTIDRIVEN in rules_of(src)

    def test_two_always_blocks_fire(self):
        src = """
        module m(input clk, input a, output reg r);
            always @(posedge clk) r <= a;
            always @(posedge clk) r <= ~a;
        endmodule
        """
        assert RULE_MULTIDRIVEN in rules_of(src)

    def test_cont_assign_plus_always_fires(self):
        src = """
        module m(input clk, input a, output reg r);
            assign r = a;
            always @(posedge clk) r <= ~a;
        endmodule
        """
        assert RULE_MULTIDRIVEN in rules_of(src)

    def test_single_driver_is_clean(self):
        src = """
        module m(input a, output x);
            assign x = a;
        endmodule
        """
        assert RULE_MULTIDRIVEN not in rules_of(src)

    def test_shared_loop_variable_is_clean(self):
        """A loop index reused across blocks is idiomatic, not a bug."""
        src = """
        module m(input clk, output reg [3:0] a, output reg [3:0] b);
            integer i;
            always @(posedge clk) begin
                for (i = 0; i < 4; i = i + 1) a[i] <= 1'b0;
            end
            always @(posedge clk) begin
                for (i = 0; i < 4; i = i + 1) b[i] <= 1'b1;
            end
        endmodule
        """
        findings = lint_source(src, "t.v").findings
        assert not any(
            f.rule == RULE_MULTIDRIVEN and "'i'" in f.message
            for f in findings
        )


class TestLatch:
    def test_if_without_else_fires(self):
        src = """
        module m(input s, input d, output reg q);
            always @(*) begin
                if (s) q = d;
            end
        endmodule
        """
        assert RULE_LATCH in rules_of(src)

    def test_if_with_else_is_clean(self):
        src = """
        module m(input s, input d, output reg q);
            always @(*) begin
                if (s) q = d; else q = 1'b0;
            end
        endmodule
        """
        assert RULE_LATCH not in rules_of(src)

    def test_default_before_if_is_clean(self):
        src = """
        module m(input s, input d, output reg q);
            always @(*) begin
                q = 1'b0;
                if (s) q = d;
            end
        endmodule
        """
        assert RULE_LATCH not in rules_of(src)

    def test_sequential_block_never_fires(self):
        src = """
        module m(input clk, input s, input d, output reg q);
            always @(posedge clk) begin
                if (s) q <= d;
            end
        endmodule
        """
        assert RULE_LATCH not in rules_of(src)


class TestWidth:
    def test_truncating_assign_fires(self):
        src = """
        module m(input [7:0] a, output [3:0] x);
            assign x = a;
        endmodule
        """
        assert RULE_WIDTH in rules_of(src)

    def test_matching_widths_are_clean(self):
        src = """
        module m(input [7:0] a, output [7:0] x);
            assign x = a;
        endmodule
        """
        assert RULE_WIDTH not in rules_of(src)

    def test_port_connection_mismatch_fires(self):
        src = """
        module child(input [7:0] d, output [7:0] q);
            assign q = d;
        endmodule
        module top(input [3:0] d, output [7:0] q);
            child u0(.d(d), .q(q));
        endmodule
        """
        assert RULE_WIDTH in rules_of(src)

    def test_unsized_literal_is_flexible(self):
        src = """
        module m(output [3:0] x);
            assign x = 3;
        endmodule
        """
        assert RULE_WIDTH not in rules_of(src)


class TestCase:
    def test_incomplete_case_without_default_fires(self):
        src = """
        module m(input [1:0] sel, output reg q);
            always @(*) begin
                q = 1'b0;
                case (sel)
                    2'b00: q = 1'b1;
                    2'b01: q = 1'b0;
                endcase
            end
        endmodule
        """
        assert RULE_CASE in rules_of(src)

    def test_default_arm_is_clean(self):
        src = """
        module m(input [1:0] sel, output reg q);
            always @(*) begin
                case (sel)
                    2'b00: q = 1'b1;
                    default: q = 1'b0;
                endcase
            end
        endmodule
        """
        assert RULE_CASE not in rules_of(src)

    def test_exhaustive_case_is_clean(self):
        src = """
        module m(input sel, output reg q);
            always @(*) begin
                case (sel)
                    1'b0: q = 1'b1;
                    1'b1: q = 1'b0;
                endcase
            end
        endmodule
        """
        assert RULE_CASE not in rules_of(src)


class TestUnusedUndriven:
    def test_unused_wire_fires(self):
        src = """
        module m(input a, output x);
            wire dead;
            assign dead = a;
            assign x = a;
        endmodule
        """
        findings = lint_source(src, "t.v").findings
        assert any(f.rule == RULE_UNUSED and "'dead'" in f.message
                   for f in findings)

    def test_used_wire_is_clean(self):
        src = """
        module m(input a, output x);
            wire mid;
            assign mid = a;
            assign x = mid;
        endmodule
        """
        assert RULE_UNUSED not in rules_of(src)

    def test_undriven_wire_fires(self):
        src = """
        module m(output x);
            wire ghost;
            assign x = ghost;
        endmodule
        """
        findings = lint_source(src, "t.v").findings
        assert any(f.rule == RULE_UNDRIVEN and "'ghost'" in f.message
                   for f in findings)

    def test_input_port_is_never_undriven(self):
        src = """
        module m(input a, output x);
            assign x = a;
        endmodule
        """
        assert RULE_UNDRIVEN not in rules_of(src)


class TestAsyncReset:
    def test_untested_async_reset_fires(self):
        src = """
        module m(input clk, input rst, input d, output reg q);
            always @(posedge clk or posedge rst) begin
                q <= d;
            end
        endmodule
        """
        assert RULE_ASYNCRESET in rules_of(src)

    def test_wrong_polarity_fires(self):
        src = """
        module m(input clk, input rst_n, input d, output reg q);
            always @(posedge clk or negedge rst_n) begin
                if (rst_n) q <= 1'b0;
                else q <= d;
            end
        endmodule
        """
        assert RULE_ASYNCRESET in rules_of(src)

    def test_proper_async_reset_is_clean(self):
        src = """
        module m(input clk, input rst_n, input d, output reg q);
            always @(posedge clk or negedge rst_n) begin
                if (!rst_n) q <= 1'b0;
                else q <= d;
            end
        endmodule
        """
        assert RULE_ASYNCRESET not in rules_of(src)

    def test_mixed_polarity_across_blocks_fires(self):
        src = """
        module m(input clk, input rst, input d, output reg a, output reg b);
            always @(posedge clk or posedge rst) begin
                if (rst) a <= 1'b0; else a <= d;
            end
            always @(posedge clk or negedge rst) begin
                if (!rst) b <= 1'b0; else b <= d;
            end
        endmodule
        """
        assert RULE_ASYNCRESET in rules_of(src)

    def test_sync_only_sensitivity_is_clean(self):
        src = """
        module m(input clk, input rst, input d, output reg q);
            always @(posedge clk) begin
                if (rst) q <= 1'b0; else q <= d;
            end
        endmodule
        """
        assert RULE_ASYNCRESET not in rules_of(src)


class TestSyntaxFindings:
    def test_verilog_parse_error_becomes_finding(self):
        report = lint_source("module m(input a;\n", "broken.v")
        assert [f.rule for f in report.findings] == [RULE_SYNTAX]
        f = report.findings[0]
        assert f.severity == "error"
        assert f.file == "broken.v"
        assert f.line >= 1
        assert not report.clean

    def test_vhdl_parse_error_becomes_finding(self):
        report = lint_source("entity e is port (\n", "broken.vhdl")
        assert [f.rule for f in report.findings] == [RULE_SYNTAX]
        assert report.findings[0].file == "broken.vhdl"

    def test_valid_source_has_no_syntax_finding(self):
        assert RULE_SYNTAX not in rules_of(
            "module m(input a, output x); assign x = a; endmodule"
        )


class TestVHDLLint:
    """The same pipeline lints VHDL via the shared AST."""

    def test_clean_vhdl_entity(self):
        src = """
        entity ctr is
          port (clk : in bit; rst : in bit;
                q : out bit_vector(7 downto 0));
        end entity;
        architecture rtl of ctr is
          signal cnt : bit_vector(7 downto 0);
        begin
          q <= cnt;
          process (clk)
          begin
            if rising_edge(clk) then
              if rst = '1' then
                cnt <= (others => '0');
              end if;
            end if;
          end process;
        end architecture;
        """
        assert lint_source(src, "ctr.vhdl").clean

    def test_vhdl_unused_signal_fires(self):
        src = """
        entity e is
          port (a : in bit; x : out bit);
        end entity;
        architecture rtl of e is
          signal dead : bit;
        begin
          x <= a;
        end architecture;
        """
        findings = lint_source(src, "e.vhdl").findings
        assert any(f.rule == RULE_UNUSED and "'dead'" in f.message
                   for f in findings)


class TestSnoopDrive:
    """Snoop handshake outputs must be driven in every state of a
    clocked block — a conditionally-driven snoop_ack holds its last
    value and acknowledges probes that were never observed."""

    BAD = """
    module m(input clk, input rst, input snoop_valid,
             output reg snoop_ack, output reg snoop_hit);
        always @(posedge clk) begin
            if (rst) begin
                snoop_ack <= 1'b0;
                snoop_hit <= 1'b0;
            end else begin
                if (snoop_valid) begin
                    snoop_ack <= 1'b1;
                    snoop_hit <= 1'b1;
                end
            end
        end
    endmodule
    """

    GOOD = """
    module m(input clk, input rst, input snoop_valid,
             output reg snoop_ack, output reg snoop_hit);
        always @(posedge clk) begin
            if (rst) begin
                snoop_ack <= 1'b0;
                snoop_hit <= 1'b0;
            end else begin
                snoop_ack <= 1'b0;
                snoop_hit <= 1'b0;
                if (snoop_valid) begin
                    snoop_ack <= 1'b1;
                    snoop_hit <= 1'b1;
                end
            end
        end
    endmodule
    """

    def test_conditionally_driven_snoop_output_fires(self):
        assert RULE_SNOOPDRIVE in rules_of(self.BAD)

    def test_default_assignment_every_state_is_clean(self):
        assert RULE_SNOOPDRIVE not in rules_of(self.GOOD)

    def test_non_snoop_outputs_are_not_flagged(self):
        src = """
        module m(input clk, input en, output reg ack);
            always @(posedge clk) begin
                if (en) ack <= 1'b1;
            end
        endmodule
        """
        assert RULE_SNOOPDRIVE not in rules_of(src)

    def test_internal_snoop_regs_are_not_flagged(self):
        src = """
        module m(input clk, input en, output reg q);
            reg snoop_seen;
            always @(posedge clk) begin
                if (en) snoop_seen <= 1'b1;
                q <= snoop_seen;
            end
        endmodule
        """
        assert RULE_SNOOPDRIVE not in rules_of(src)

    def test_finding_is_a_waivable_warning(self):
        report = lint_source(self.BAD, "t.v")
        f = [x for x in report.findings if x.rule == RULE_SNOOPDRIVE][0]
        assert f.severity == "warning"
        waived = lint_source(
            self.BAD.replace("always @(posedge clk) begin",
                             "always @(posedge clk) begin "
                             "// repro-lint: waive=SNOOPDRIVE"),
            "t.v",
        )
        assert all(x.waived for x in waived.findings
                   if x.rule == RULE_SNOOPDRIVE)

    def test_bundled_coherent_cache_is_clean(self):
        from repro.verify.designs import get_design

        design = get_design("rtlcache_coh")
        report = lint_source(design.source(), design.filename)
        assert not [f for f in report.findings if not f.waived]
