"""Cross-backend equivalence: passes on bundled designs, and actually
catches (and localises) an injected divergence."""

from __future__ import annotations

import pytest

from repro.verify import (
    Stimulus,
    check_equivalence,
    corner_stimuli,
    design_names,
    get_design,
)


@pytest.mark.parametrize("name", design_names())
def test_bundled_designs_are_equivalent(name):
    design = get_design(name)
    result = check_equivalence(
        lambda backend: design.make_sim(backend=backend),
        design=name, seed=1, random_runs=2, cycles=32,
    )
    assert result.ok, result.format()
    assert not result.skipped
    assert result.stimuli_run == len(corner_stimuli(32)) + 2
    assert "PASS" in result.format()


class _Corrupted:
    """Wraps a simulator and flips one output bit from a given cycle."""

    def __init__(self, sim, signal: str, after_cycle: int) -> None:
        self._sim = sim
        self._signal = signal
        self._after = after_cycle
        self._ticks = 0

    def __getattr__(self, name):
        return getattr(self._sim, name)

    def tick(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self._sim.tick()
            self._ticks += 1
            if self._ticks > self._after:
                sig = self._sim.module.signals[self._signal]
                self._sim.values[sig.index] ^= 1


class TestDivergenceDetection:
    def test_injected_divergence_is_found_and_localised(self):
        design = get_design("pmu")

        def make_sim(backend):
            sim = design.make_sim(backend=backend)
            if backend == "codegen":
                return _Corrupted(sim, "rdata", after_cycle=3)
            return sim

        result = check_equivalence(make_sim, design="pmu", seed=1,
                                   random_runs=1, cycles=16)
        assert not result.ok
        d = result.divergence
        assert d.signal == "rdata"
        assert d.cycle >= 3
        assert d.interp_value != d.codegen_value
        assert "rdata" in result.format()
        assert "FAIL" in result.format()

    def test_corpus_stimuli_are_replayed(self):
        design = get_design("pmu")
        extra = [Stimulus("uniform", 12345, 8)]
        result = check_equivalence(
            lambda backend: design.make_sim(backend=backend),
            design="pmu", stimuli=extra, seed=0, random_runs=0, cycles=8,
        )
        assert result.ok
        assert result.stimuli_run == len(corner_stimuli(8)) + 1


class TestSkip:
    def test_interp_fallback_design_is_skipped(self):
        """A design the codegen backend can't fuse reports SKIPPED."""
        from repro.hdl.verilog import compile_verilog
        from repro.rtl import RTLSimulator

        # bit-by-bit self-dependency forces iterative settling, which
        # makes the codegen backend fall back to the interpreter
        src = """
        module ripple(input [1:0] a, output [1:0] s);
            assign s[0] = a[0];
            assign s[1] = s[0] ^ a[1];
        endmodule
        """
        module = compile_verilog(src, top="ripple", filename="ripple.v")

        def make_sim(backend):
            return RTLSimulator(module, backend=backend)

        probe = make_sim("codegen")
        if probe.backend == "codegen":
            pytest.skip("design unexpectedly fused; fixture needs updating")
        result = check_equivalence(make_sim, design="ripple")
        assert result.skipped
        assert result.ok
        assert "SKIPPED" in result.format()
