"""Waiver mechanics: in-source comments and waiver files."""

from __future__ import annotations

import pytest

from repro.verify import (
    Finding,
    WaiverEntry,
    apply_waivers,
    lint_source,
    parse_waiver_file,
)

TRUNCATING = """\
module m(input [7:0] a, output [3:0] x);
    assign x = a;
endmodule
"""


class TestCommentWaivers:
    def test_waive_comment_on_same_line(self):
        src = TRUNCATING.replace(
            "assign x = a;", "assign x = a; // repro-lint: waive"
        )
        report = lint_source(src, "t.v")
        assert report.findings, "fixture must still produce the finding"
        assert report.clean
        assert all(f.waived and f.waived_by == "comment"
                   for f in report.findings)

    def test_waive_comment_on_line_above(self):
        src = TRUNCATING.replace(
            "    assign x = a;",
            "    // repro-lint: waive\n    assign x = a;",
        )
        report = lint_source(src, "t.v")
        assert report.findings and report.clean

    def test_scoped_waiver_matches_rule(self):
        src = TRUNCATING.replace(
            "assign x = a;", "assign x = a; // repro-lint: waive=WIDTH"
        )
        assert lint_source(src, "t.v").clean

    def test_scoped_waiver_for_other_rule_does_not_match(self):
        src = TRUNCATING.replace(
            "assign x = a;", "assign x = a; // repro-lint: waive=UNUSED"
        )
        report = lint_source(src, "t.v")
        assert not report.clean

    def test_unwaived_finding_blocks(self):
        report = lint_source(TRUNCATING, "t.v")
        assert not report.clean
        assert report.blocking


class TestWaiverFile:
    def test_parse_entries(self):
        entries = parse_waiver_file(
            "# comment\n"
            "WIDTH\n"
            "UNUSED:*/legacy/*.v\n"
            "LATCH:top.v:42\n"
        )
        assert entries == [
            WaiverEntry("WIDTH", "*", "*"),
            WaiverEntry("UNUSED", "*/legacy/*.v", "*"),
            WaiverEntry("LATCH", "top.v", "42"),
        ]

    def test_bad_line_raises(self):
        with pytest.raises(ValueError):
            parse_waiver_file("WIDTH:a:b:c:d\n", "w.txt")

    def test_file_waiver_applies(self):
        report = lint_source(
            TRUNCATING, "t.v",
            waivers=parse_waiver_file("WIDTH:t.v\n"),
        )
        assert report.findings and report.clean
        assert report.findings[0].waived_by == "waiver-file"

    def test_file_glob_mismatch_does_not_apply(self):
        report = lint_source(
            TRUNCATING, "t.v",
            waivers=parse_waiver_file("WIDTH:other.v\n"),
        )
        assert not report.clean

    def test_line_scoped_waiver(self):
        finding = Finding("WIDTH", "warning", "msg", "t.v", 2)
        apply_waivers([finding], {}, parse_waiver_file("WIDTH:t.v:2\n"))
        assert finding.waived
        other = Finding("WIDTH", "warning", "msg", "t.v", 3)
        apply_waivers([other], {}, parse_waiver_file("WIDTH:t.v:2\n"))
        assert not other.waived


class TestBundledWaivers:
    def test_rtlcache_width_truncations_are_waived_in_source(self):
        from repro.verify import get_design

        design = get_design("rtlcache")
        report = lint_source(design.source(), design.filename,
                             design.frontend)
        width = [f for f in report.findings if f.rule == "WIDTH"]
        assert width, "rtl_cache.v has genuine word-select truncations"
        assert all(f.waived for f in width)
        assert report.clean
