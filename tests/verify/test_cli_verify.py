"""The ``repro verify`` command family end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestLintCommand:
    def test_lint_all_bundled_designs_clean_or_waived(self, capsys):
        assert main(["verify", "lint"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out

    def test_lint_file_with_findings_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text(
            "module m(input [7:0] a, output [3:0] x);\n"
            "    assign x = a;\n"
            "endmodule\n"
        )
        assert main(["verify", "lint", "--file", str(bad)]) == 1
        assert "WIDTH" in capsys.readouterr().out

    def test_lint_syntax_error_is_a_finding_not_a_traceback(
        self, tmp_path, capsys
    ):
        broken = tmp_path / "broken.v"
        broken.write_text("module m(input a;\n")
        assert main(["verify", "lint", "--file", str(broken)]) == 1
        out = capsys.readouterr().out
        assert "SYNTAX" in out
        assert str(broken) in out

    def test_lint_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "lint.json"
        assert main(["verify", "lint", "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert "findings" in doc and "blocking" in doc
        assert doc["blocking"] == 0

    def test_lint_waiver_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text(
            "module m(input [7:0] a, output [3:0] x);\n"
            "    assign x = a;\n"
            "endmodule\n"
        )
        waivers = tmp_path / "waivers.txt"
        waivers.write_text("WIDTH\n")
        assert main(["verify", "lint", "--file", str(bad),
                     "--waivers", str(waivers)]) == 0

    def test_unknown_design_errors(self):
        with pytest.raises(SystemExit):
            main(["verify", "lint", "nosuchdesign"])


class TestCoverCommand:
    def test_cover_checks_backend_identity(self, capsys):
        assert main(["verify", "cover", "pmu", "--cycles", "32"]) == 0
        out = capsys.readouterr().out
        assert "interp and codegen coverage identical" in out
        assert "statement:" in out

    def test_cover_single_backend_json(self, tmp_path, capsys):
        out_path = tmp_path / "cover.json"
        assert main(["verify", "cover", "pmu", "--backend", "interp",
                     "--cycles", "16", "--json", str(out_path)]) == 0
        (doc,) = json.loads(out_path.read_text())
        assert doc["design"] == "pmu"
        assert doc["backend"] == "interp"
        assert doc["statement"]["total"] > 0


class TestFuzzCommand:
    def test_fuzz_writes_corpus_and_is_deterministic(
        self, tmp_path, capsys
    ):
        d1, d2 = tmp_path / "c1", tmp_path / "c2"
        for d in (d1, d2):
            assert main(["verify", "fuzz", "pmu", "--seed", "5",
                         "--runs", "6", "--cycles", "16",
                         "--corpus-dir", str(d)]) == 0
        assert (d1 / "pmu.json").read_text() == \
               (d2 / "pmu.json").read_text()

    def test_min_statement_gate_fails_when_unreachable(self, tmp_path):
        assert main(["verify", "fuzz", "pmu", "--runs", "2",
                     "--cycles", "8", "--corpus-dir", "",
                     "--min-statement", "100"]) == 1

    def test_min_statement_gate_passes_when_met(self, tmp_path):
        assert main(["verify", "fuzz", "pmu", "--runs", "6",
                     "--cycles", "32", "--corpus-dir", "",
                     "--min-statement", "50"]) == 0


class TestEquivCommand:
    def test_equiv_passes_on_bundled_design(self, capsys):
        assert main(["verify", "equiv", "pmu", "--runs", "1",
                     "--cycles", "16", "--corpus-dir", ""]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_equiv_replays_fuzz_corpus(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["verify", "fuzz", "pmu", "--seed", "2",
                     "--runs", "4", "--cycles", "16",
                     "--corpus-dir", str(corpus)]) == 0
        capsys.readouterr()
        assert main(["verify", "equiv", "pmu", "--runs", "0",
                     "--cycles", "16", "--corpus-dir", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out


class TestOptLevelFlag:
    """``--opt-level`` threads through the whole verify family."""

    def test_cover_identity_at_o2(self, capsys):
        assert main(["verify", "cover", "pmu", "--cycles", "32",
                     "--opt-level", "2"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_fuzz_at_o2_matches_o0_corpus(self, tmp_path):
        """Optimisation must not change what the fuzz loop discovers:
        same seed, same corpus, at any level."""
        d0, d2 = tmp_path / "c0", tmp_path / "c2"
        assert main(["verify", "fuzz", "pmu", "--seed", "5",
                     "--runs", "6", "--cycles", "16",
                     "--corpus-dir", str(d0)]) == 0
        assert main(["verify", "fuzz", "pmu", "--seed", "5",
                     "--runs", "6", "--cycles", "16",
                     "--opt-level", "2", "--corpus-dir", str(d2)]) == 0
        assert (d0 / "pmu.json").read_text() == \
               (d2 / "pmu.json").read_text()

    def test_equiv_at_o2_uses_unoptimized_reference(self, capsys):
        assert main(["verify", "equiv", "pmu", "--runs", "1",
                     "--cycles", "16", "--opt-level", "2",
                     "--corpus-dir", ""]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_compile_reports_opt_stats(self, capsys):
        from repro.verify.designs import DESIGNS

        src = DESIGNS["pmu"]
        assert main(["compile", "--top", "pmu", "-O", "2",
                     src.filename]) == 0
        out = capsys.readouterr().out
        assert "-O2" in out
