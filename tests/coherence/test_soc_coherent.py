"""Coherent multi-core SoC: per-core stats layout and snoop scaling.

Pins the dumped stat-key layout for a 2-core coherent system — every
core's L1 reports under its own ``system.cpuN.l1d.*`` namespace — and
the regression for the silent-merge bug that motivated it: duplicate
flat keys in a stats dump must raise, never alias two caches' counters
into one row.
"""

from __future__ import annotations

import pytest

from repro.soc.stats import StatGroup
from repro.soc.system import SoC, SoCConfig
from repro.workloads import sharing_benchmark

L1D_STATS = (
    "evictions",
    "hits",
    "interventions",
    "invalidations",
    "miss_latency_cycles::count",
    "miss_latency_cycles::mean",
    "miss_latency_cycles::stdev",
    "misses",
    "mshr_hits",
    "mshr_rejects",
    "snoops",
    "upgrade_misses",
    "writebacks",
)


def _run_coherent(cores: int, iters: int = 60) -> dict:
    soc = SoC(SoCConfig(num_cores=cores, memory="DDR4-1ch", coherent=True))
    for core, stream in zip(soc.cores, sharing_benchmark(cores, iters=iters)):
        core.run_stream(stream)
    soc.run_until_done()
    return soc.sim.stats_dump()


class TestStatsKeyLayout:
    def test_two_core_l1d_key_set_is_pinned(self):
        stats = _run_coherent(2)
        got = sorted(k for k in stats if ".l1d." in k)
        want = sorted(
            f"system.cpu{core}.l1d.{name}"
            for core in range(2)
            for name in L1D_STATS
        )
        assert got == want

    def test_per_core_counters_are_distinct_rows(self):
        stats = _run_coherent(2)
        # both cores did real work; neither row absorbed the other
        assert stats["system.cpu0.l1d.hits"] > 0
        assert stats["system.cpu1.l1d.hits"] > 0


class TestDumpCollisionRegression:
    def test_dotted_stat_name_aliasing_a_group_raises(self):
        root = StatGroup("system")
        cpu0 = StatGroup("cpu0", root)
        cpu0.scalar("hits").inc()
        root.scalar("cpu0.hits").inc()
        with pytest.raises(ValueError, match="collision"):
            root.dump()

    def test_collision_inside_one_group_raises(self):
        root = StatGroup("system")
        root.scalar("l1d.hits").inc()
        l1d = StatGroup("l1d", root)
        l1d.scalar("hits").inc()
        with pytest.raises(ValueError, match="collision"):
            root.dump()


class TestSnoopScaling:
    def test_invalidations_appear_only_with_sharers(self):
        one = _run_coherent(1)
        two = _run_coherent(2)
        assert one["system.cpu0.l1d.invalidations"] == 0
        assert two["system.cpu0.l1d.invalidations"] > 0
        assert two["system.l2dir.snoops_sent"] > one["system.l2dir.snoops_sent"]

    def test_snoop_traffic_grows_with_sharer_count(self):
        two = _run_coherent(2)
        four = _run_coherent(4)
        assert four["system.l2dir.snoops_sent"] > two["system.l2dir.snoops_sent"]
