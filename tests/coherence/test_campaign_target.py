"""The coherence fault-campaign target: directory metadata is fault space.

The directory's sharer/owner metadata is behavioural (no flops), so the
campaign covers it through a ``dir_state`` pseudo-memory: sampled
``dir_state[k]`` faults route to ``DirectoryController.flip_state_bit``
via the injector's duck-typed hook.  A flipped sharer bit is a lost (or
phantom) invalidation and must surface — as a ProtocolError crash, a
hang, or a detected invariant violation — never as silent corruption of
the golden observables without detection.
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    flip_targets,
)
from repro.resilience.targets import get_target, normalize_params


@pytest.fixture(scope="module")
def target():
    return get_target("coherence")


class TestFaultSpace:
    def test_dir_state_words_are_flip_targets(self, target):
        module = target.module(normalize_params(target))
        targets = dict(flip_targets(module, include_memories=True))
        from repro.coherence import DIR_STATE_DEPTH, DIR_STATE_WIDTH

        for word in range(DIR_STATE_DEPTH):
            assert targets[f"dir_state[{word}]"] == DIR_STATE_WIDTH
        # the RTL participant's own flops are still covered
        assert "busy" in targets

    def test_rtl_memories_are_covered_too(self, target):
        module = target.module(normalize_params(target))
        names = {name for name, _ in flip_targets(module,
                                                  include_memories=True)}
        assert any(name.startswith("tags[") for name in names)


class TestInjection:
    def test_golden_run_is_clean(self, target):
        rig = target.build(normalize_params(target))
        try:
            rig.run(target.max_cycles)
            obs = rig.observables()
            assert all(obs[f"responses[{i}]"] > 0 for i in range(3))
            assert rig.detection() == {"invariant_violations": 0}
        finally:
            rig.finish()

    def test_dir_state_flip_reaches_the_directory(self, target):
        from repro.coherence import ProtocolError
        from repro.resilience.targets import (
            CycleBudgetExceeded, WallClockExceeded,
        )

        rig = target.build(normalize_params(target))
        plan = FaultPlan([Fault("rtl-flip", 800, 0,
                                signal="dir_state[2]")])
        inj = FaultInjector(rig.sim, plan, absolute_cycles=True)
        try:
            try:
                rig.run(target.max_cycles)
            except (ProtocolError, CycleBudgetExceeded, WallClockExceeded):
                pass  # detected: the corrupted metadata tripped an audit
            assert int(inj.st_flips.value()) == 1
        finally:
            rig.finish()

    def test_dir_state_flip_is_noop_without_a_directory(self, target):
        """The same named fault must skip systems that lack the hook."""
        from repro.resilience.targets import CacheRig

        cache_target = get_target("rtlcache")
        rig = cache_target.build(normalize_params(cache_target))
        plan = FaultPlan([Fault("rtl-flip", 200, 0,
                                signal="dir_state[2]")])
        inj = FaultInjector(rig.sim, plan, absolute_cycles=True)
        assert isinstance(rig, CacheRig)
        try:
            rig.run(cache_target.max_cycles)
            assert int(inj.st_flips.value()) == 0
        finally:
            rig.finish()
