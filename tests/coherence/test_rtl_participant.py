"""The RTL cache as a coherence participant.

Lockstep contract: beside the behavioural L1s, the RTL write-through
cache must observe every probe through its snoop pins, report hit/miss
exactly as its mirror predicts, and leave the same observable memory
state as an all-behavioural run — under the serial tick path and the
tier-(a) pooled tick engine alike.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.coherence import run_sharing_stress
from repro.coherence.check import build_sharing_system
from repro.rtl.parallel.pool import pool_available
from repro.rtl.parallel.sched import attach_parallel_rtl
from repro.soc.packet import set_next_packet_id

SMALL = dict(l1_size=1024, mshrs=2)  # force evictions and MSHR pressure


class TestLockstep:
    def test_rtl_beside_behavioural_l1s(self):
        result = run_sharing_stress(cores=2, ops=300, seed=7, rtl=True,
                                    **SMALL)
        stats = result["stats"]
        # every directory probe reached the pins and the pin-level
        # hit/miss matched the mirror (a divergence raises inside)
        assert stats["system.rtl_l1.invalidations"] > 0
        assert (stats["system.rtl_l1.rtl_snoops"]
                == stats["system.rtl_l1.invalidations"])

    def test_rtl_only_participant(self):
        run_sharing_stress(cores=0, ops=200, seed=2, rtl=True)

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_lockstep_across_seeds(self, seed):
        run_sharing_stress(cores=2, ops=200, seed=seed, rtl=True, **SMALL)


@pytest.mark.skipif(not pool_available(),
                    reason="platform lacks the fork start method")
class TestPooledTicks:
    """Snoop-response events at the same timestamp as RTL ticks keep the
    serial interleaving when ticks run through the worker pool."""

    def _run(self, rtl_jobs, until=None, ckpt_path=None):
        set_next_packet_id(0)
        system = build_sharing_system(cores=2, ops=150, seed=5, rtl=2,
                                      **SMALL)
        sim = system.sim
        sched = None
        if rtl_jobs > 1:
            sched = attach_parallel_rtl(sim, system.rtls, rtl_jobs)
            assert sched is not None
        try:
            sim.startup()
            ckpt_tick = None
            if ckpt_path is not None:
                sim.run(until=until)
                ckpt_tick = sim.save_checkpoint(ckpt_path)
            step = sim.default_clock.cycles_to_ticks(2_000)

            def quiet():
                return (all(d.done for d in system.drivers)
                        and all(c.quiet for c in system.caches)
                        and system.directory.quiet)

            while not quiet():
                sim.run(until=sim.now + step)
        finally:
            if sched is not None:
                sched.close()
        return sim.now, sim.stats_dump(), ckpt_tick

    def test_full_run_bit_identical(self):
        end_s, stats_s, _ = self._run(rtl_jobs=1)
        end_p, stats_p, _ = self._run(rtl_jobs=2)
        assert end_p == end_s
        assert stats_p == stats_s
        assert stats_s["system.rtl_l1.rtl_snoops"] > 0
        assert stats_s["system.rtl_l1_1.rtl_snoops"] > 0

    def test_mid_run_checkpoint_bytes_match_serial(self, tmp_path):
        until = 1_000_000  # mid-flight: snoops and fills in the air
        a = tmp_path / "serial.ckpt"
        b = tmp_path / "pooled.ckpt"
        end_s, stats_s, tick_s = self._run(1, until=until, ckpt_path=str(a))
        end_p, stats_p, tick_p = self._run(2, until=until, ckpt_path=str(b))
        assert (end_p, tick_p) == (end_s, tick_s)
        assert stats_p == stats_s
        assert (hashlib.sha256(a.read_bytes()).hexdigest()
                == hashlib.sha256(b.read_bytes()).hexdigest())

    def test_stress_harness_pool_path(self):
        set_next_packet_id(0)
        serial = run_sharing_stress(cores=2, ops=150, seed=5, rtl=2, **SMALL)
        set_next_packet_id(0)
        pooled = run_sharing_stress(cores=2, ops=150, seed=5, rtl=2,
                                    rtl_jobs=2, **SMALL)
        assert pooled == serial
