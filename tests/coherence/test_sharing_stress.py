"""Seeded random-sharing stress: invariants, golden memory, pool identity.

The acceptance bar for the coherence subsystem: the MESI invariants hold
under >= 10k seeded random sharing ops at 2 and 4 sharers, the final
memory image equals the interleaving-independent golden write replay,
and the worker-pool fan-out is bit-identical to the serial runs.
"""

from __future__ import annotations

import pytest

import repro.dse.sweep as sweep
from repro.coherence import run_sharing_stress
from repro.dse.sweep import run_coherence_sweep
from repro.parallel import ResultCache


class TestGoldenStress:
    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_invariants_hold_per_core_count(self, cores):
        result = run_sharing_stress(cores=cores, ops=300, seed=3)
        assert len(result["checksums"]) == cores
        assert result["memory"]
        # the protocol actually exercised sharing above one core
        stats = result["stats"]
        if cores > 1:
            assert stats["system.l2dir.snoops_sent"] > 0
            assert sum(stats[f"system.l1_{c}.invalidations"]
                       for c in range(cores)) > 0

    def test_ten_thousand_ops_at_two_sharers(self):
        run_sharing_stress(cores=2, ops=5_000, seed=11)

    def test_ten_thousand_ops_at_four_sharers(self):
        run_sharing_stress(cores=4, ops=2_500, seed=11)

    def test_deterministic_replay(self):
        a = run_sharing_stress(cores=2, ops=150, seed=4)
        b = run_sharing_stress(cores=2, ops=150, seed=4)
        assert a == b

    def test_seed_changes_the_traffic(self):
        a = run_sharing_stress(cores=2, ops=150, seed=4)
        b = run_sharing_stress(cores=2, ops=150, seed=5)
        assert a["checksums"] != b["checksums"]


class TestPoolIdentity:
    def test_pooled_sweep_bit_identical_to_serial(self):
        serial = {
            n: run_sharing_stress(cores=n, ops=200, seed=9)
            for n in (1, 2, 4)
        }
        pooled = run_coherence_sweep(sharers=(1, 2, 4), ops=200, seed=9,
                                     jobs=2)
        for n, want in serial.items():
            got = {k: v for k, v in pooled[n].items() if k != "seconds"}
            assert got == want, f"pool-mode divergence at sharers={n}"


class TestSweepCache:
    def test_resubmit_is_all_cache_hits(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        first = run_coherence_sweep(sharers=(1, 2), ops=60, seed=1,
                                    cache=cache)

        def boom(point):
            raise AssertionError(f"cache miss recomputed point {point}")

        monkeypatch.setattr(sweep, "_coherence_point", boom)
        second = run_coherence_sweep(sharers=(1, 2), ops=60, seed=1,
                                     cache=cache)
        assert second == first

    def test_key_covers_every_axis(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = {
            cache.key(experiment="coherence_point", sharers=s, ops=o,
                      seed=d, rtl=r)
            for s, o, d, r in [(1, 60, 1, False), (2, 60, 1, False),
                               (1, 61, 1, False), (1, 60, 2, False),
                               (1, 60, 1, True)]
        }
        assert len(keys) == 5
