"""Unit tests for the MESI state table (repro.coherence.protocol)."""

from __future__ import annotations

import pytest

from repro.coherence import (
    EVENTS,
    TRANSITIONS,
    ProtocolError,
    State,
    next_state,
)

M = State.MODIFIED
E = State.EXCLUSIVE
S = State.SHARED
I = State.INVALID  # noqa: E741 - the canonical MESI letter


class TestTableShape:
    def test_every_key_is_a_known_state_event_pair(self):
        for (state, event), succ in TRANSITIONS.items():
            assert isinstance(state, State)
            assert isinstance(succ, State)
            assert event in EVENTS

    def test_next_state_agrees_with_the_table(self):
        for (state, event), succ in TRANSITIONS.items():
            assert next_state(state, event) is succ


class TestLegalTransitions:
    def test_read_hits_do_not_move_state(self):
        for state in (M, E, S):
            assert next_state(state, "read_hit") is state

    def test_exclusive_write_is_a_silent_upgrade(self):
        assert next_state(E, "write_hit") is M
        assert next_state(M, "write_hit") is M

    def test_fills_land_only_on_invalid(self):
        assert next_state(I, "fill_shared") is S
        assert next_state(I, "fill_exclusive") is E
        assert next_state(I, "fill_modified") is M

    def test_shared_upgrade_reaches_modified(self):
        assert next_state(S, "upgrade") is M

    def test_snoop_share_demotes_owners_to_shared(self):
        for state in (M, E, S):
            assert next_state(state, "snoop_share") is S

    def test_snoop_invalidate_always_ends_invalid(self):
        for state in (M, E, S):
            assert next_state(state, "snoop_invalidate") is I

    def test_every_state_can_evict(self):
        for state in (M, E, S):
            assert next_state(state, "evict") is I


class TestIllegalTransitions:
    def test_write_hit_in_shared_must_upgrade_first(self):
        with pytest.raises(ProtocolError):
            next_state(S, "write_hit")

    def test_snoop_against_invalid_is_a_directory_lie(self):
        for event in ("snoop_share", "snoop_invalidate"):
            with pytest.raises(ProtocolError):
                next_state(I, event)

    def test_fill_over_a_live_line(self):
        for state in (M, E, S):
            with pytest.raises(ProtocolError):
                next_state(state, "fill_shared")

    def test_unknown_event(self):
        with pytest.raises(ProtocolError):
            next_state(M, "flush")

    def test_error_carries_cache_and_block_context(self):
        with pytest.raises(ProtocolError) as err:
            next_state(S, "write_hit", cache="l1_3", block=0x40080)
        assert "l1_3" in str(err.value)
        assert "0x40080" in str(err.value)
