"""Elaborator internals: codegen inspection, deep hierarchies, width rules."""

import pytest

from repro.hdl.common import ElabError
from repro.hdl.verilog import compile_verilog
from repro.rtl import RTLSimulator


class TestGeneratedSource:
    def test_source_attached_to_module(self):
        rtl = compile_verilog(
            "module t (input a, output y); assign y = ~a; endmodule"
        )
        src = rtl.generated_source
        assert "def _comb_" in src
        assert "v[" in src

    def test_sync_process_signature(self):
        rtl = compile_verilog("""
        module t (input clk, input d, output q);
            reg r;
            always @(posedge clk) r <= d;
            assign q = r;
        endmodule
        """)
        assert "def _sync_" in rtl.generated_source
        assert "(v, m, nba, nbm)" in rtl.generated_source


class TestHierarchy:
    def test_three_level_parameter_propagation(self):
        src = """
        module leaf #(parameter W = 1) (input [W-1:0] a, output [W-1:0] y);
            assign y = a + 1;
        endmodule
        module mid #(parameter W = 1) (input [W-1:0] a, output [W-1:0] y);
            leaf #(.W(W)) u (.a(a), .y(y));
        endmodule
        module top (input [11:0] a, output [11:0] y);
            mid #(.W(12)) u (.a(a), .y(y));
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src, top="top"))
        sim.poke("a", 0xFFF)
        sim.settle()
        assert sim.peek("y") == 0  # wraps at 12 bits: param reached the leaf

    def test_flattened_names_are_prefixed(self):
        src = """
        module inner (input a, output y); assign y = a; endmodule
        module outer (input a, output y);
            inner u0 (.a(a), .y(y));
        endmodule
        """
        rtl = compile_verilog(src, top="outer")
        assert any(name.startswith("u0.") for name in rtl.signals)

    def test_two_instances_do_not_share_state(self):
        src = """
        module cnt (input clk, input en, output [3:0] q);
            reg [3:0] c;
            always @(posedge clk) if (en) c <= c + 1;
            assign q = c;
        endmodule
        module top (input clk, input e0, input e1,
                    output [3:0] q0, output [3:0] q1);
            cnt a (.clk(clk), .en(e0), .q(q0));
            cnt b (.clk(clk), .en(e1), .q(q1));
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src, top="top"))
        sim.poke("e0", 1); sim.poke("e1", 0); sim.settle()
        sim.tick(5)
        assert sim.peek("q0") == 5 and sim.peek("q1") == 0

    def test_unconnected_port_allowed(self):
        src = """
        module leaf (input a, output y, output z);
            assign y = a;
            assign z = ~a;
        endmodule
        module top (input a, output y);
            leaf u (.a(a), .y(y), .z());
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src, top="top"))
        sim.poke("a", 1); sim.settle()
        assert sim.peek("y") == 1

    def test_output_to_expression_rejected(self):
        src = """
        module leaf (input a, output y); assign y = a; endmodule
        module top (input a, output y);
            leaf u (.a(a), .y(y + 1));
        endmodule
        """
        with pytest.raises(ElabError):
            compile_verilog(src, top="top")


class TestWidthRules:
    def test_wider_operand_wins(self):
        src = """
        module t (input [3:0] a, input [11:0] b, output [11:0] y);
            assign y = a + b;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 0xF); sim.poke("b", 0xFF0); sim.settle()
        assert sim.peek("y") == 0xFFF

    def test_assignment_truncates(self):
        src = """
        module t (input [7:0] a, output [3:0] y);
            assign y = a;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 0xAB); sim.settle()
        assert sim.peek("y") == 0xB

    def test_memory_index_wraps(self):
        """Out-of-range memory index wraps (documented deviation)."""
        src = """
        module t (input [7:0] idx, output [7:0] y);
            reg [7:0] m [0:3];
            always @(*) begin
                m[0] = 8'h11;
                m[1] = 8'h22;
                m[2] = 8'h33;
                m[3] = 8'h44;
            end
            assign y = m[idx];
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("idx", 5)  # 5 % 4 == 1
        sim.settle()
        assert sim.peek("y") == 0x22

    def test_shift_by_huge_amount(self):
        src = """
        module t (input [7:0] a, input [7:0] s, output [7:0] y);
            assign y = a << s;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 0xFF); sim.poke("s", 200); sim.settle()
        assert sim.peek("y") == 0


class TestRegressions:
    def test_signal_init_value(self):
        src = """
        module t (input clk, output [7:0] y);
            reg [7:0] r = 8'h5A;
            assign y = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.settle()
        assert sim.peek("y") == 0x5A

    def test_multiple_assign_statements_one_keyword(self):
        src = """
        module t (input a, output x, output y);
            assign x = a, y = ~a;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 1); sim.settle()
        assert sim.peek("x") == 1 and sim.peek("y") == 0

    def test_nba_to_concat_lvalue(self):
        src = """
        module t (input clk, input [7:0] d, output [3:0] hi, output [3:0] lo);
            reg [3:0] h;
            reg [3:0] l;
            always @(posedge clk) {h, l} <= d;
            assign hi = h;
            assign lo = l;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("d", 0xA7); sim.settle(); sim.tick()
        assert sim.peek("hi") == 0xA and sim.peek("lo") == 0x7
