"""Verilog generate-for: structural unrolling, naming, nesting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.common import ElabError
from repro.hdl.verilog import compile_verilog
from repro.rtl import CombLoopError, RTLSimulator

RIPPLE = """
module fa (input a, input b, input cin, output s, output cout);
    assign s = a ^ b ^ cin;
    assign cout = (a & b) | (a & cin) | (b & cin);
endmodule

module ripple_add #(parameter W = 8) (
    input [W-1:0] x, input [W-1:0] y,
    output [W-1:0] sum, output carry
);
    wire [W:0] c;
    assign c[0] = 1'b0;
    genvar i;
    generate
        for (i = 0; i < W; i = i + 1) begin : bit
            wire s_i;
            fa u (.a(x[i]), .b(y[i]), .cin(c[i]), .s(s_i), .cout(c[i+1]));
            assign sum[i] = s_i;
        end
    endgenerate
    assign carry = c[W];
endmodule
"""


class TestGenerateFor:
    @pytest.fixture(scope="class")
    def adder(self):
        return RTLSimulator(compile_verilog(RIPPLE, top="ripple_add"))

    def test_structural_adder_adds(self, adder):
        for a, b in ((0, 0), (1, 1), (200, 100), (255, 255), (170, 85)):
            adder.poke("x", a)
            adder.poke("y", b)
            adder.settle()
            assert adder.peek("sum") == (a + b) & 0xFF, (a, b)
            assert adder.peek("carry") == (a + b) >> 8

    def test_per_iteration_names_are_scoped(self, adder):
        names = set(adder.module.signals)
        assert "bit[0].s_i" in names and "bit[7].s_i" in names
        assert "bit[3].u.s" in names  # instance inside the generate block

    def test_parameterised_width(self):
        sim = RTLSimulator(
            compile_verilog(RIPPLE, top="ripple_add", params={"W": 12})
        )
        sim.poke("x", 0xFFF)
        sim.poke("y", 1)
        sim.settle()
        assert sim.peek("sum") == 0 and sim.peek("carry") == 1

    def test_generate_without_region_keyword(self):
        """Verilog-2005 allows a bare for-generate at module scope."""
        src = """
        module t (input [3:0] a, output [3:0] y);
            genvar i;
            for (i = 0; i < 4; i = i + 1) begin : g
                assign y[i] = ~a[i];
            end
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 0b0101)
        sim.settle()
        assert sim.peek("y") == 0b1010

    def test_nested_generate(self):
        src = """
        module t (input [3:0] a, output [15:0] y);
            genvar i;
            genvar j;
            for (i = 0; i < 4; i = i + 1) begin : outer
                for (j = 0; j < 4; j = j + 1) begin : inner
                    assign y[i * 4 + j] = a[i] & a[j];
                end
            end
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 0b1010)
        sim.settle()
        expected = 0
        a = 0b1010
        for i in range(4):
            for j in range(4):
                if (a >> i) & 1 and (a >> j) & 1:
                    expected |= 1 << (i * 4 + j)
        assert sim.peek("y") == expected

    def test_genvar_visible_in_expressions(self):
        src = """
        module t (output [7:0] y);
            genvar i;
            for (i = 0; i < 8; i = i + 1) begin : g
                assign y[i] = (i % 2 == 0);
            end
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.settle()
        assert sim.peek("y") == 0b01010101

    def test_registered_generate_blocks(self):
        src = """
        module t (input clk, input [3:0] d, output [3:0] q);
            genvar i;
            for (i = 0; i < 4; i = i + 1) begin : g
                reg bitreg;
                always @(posedge clk) bitreg <= d[i];
                assign q[i] = bitreg;
            end
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("d", 0b1100)
        sim.settle()
        sim.tick()
        assert sim.peek("q") == 0b1100

    def test_runaway_generate_rejected(self):
        src = """
        module t (output y);
            genvar i;
            for (i = 0; i >= 0; i = i + 1) begin : g
            end
            assign y = 0;
        endmodule
        """
        with pytest.raises(ElabError, match="iterations"):
            compile_verilog(src)


class TestIterativeSettle:
    def test_bitwise_feedback_settles(self):
        """Word-level false loops (ripple carry) settle iteratively."""
        sim = RTLSimulator(compile_verilog(RIPPLE, top="ripple_add"))
        assert sim._iterative

    def test_true_loop_still_detected(self):
        src = """
        module t (output y);
            wire a;
            wire b;
            assign a = ~b;
            assign b = a;
            assign y = a;
        endmodule
        """
        with pytest.raises(CombLoopError):
            RTLSimulator(compile_verilog(src))


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=0xFFFF),
    b=st.integers(min_value=0, max_value=0xFFFF),
)
def test_property_structural_adder_matches_python(a, b):
    sim = test_property_structural_adder_matches_python._sim
    sim.poke("x", a)
    sim.poke("y", b)
    sim.settle()
    assert sim.peek("sum") == (a + b) & 0xFFFF
    assert sim.peek("carry") == (a + b) >> 16


test_property_structural_adder_matches_python._sim = RTLSimulator(
    compile_verilog(RIPPLE, top="ripple_add", params={"W": 16})
)
