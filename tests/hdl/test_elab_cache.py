"""Design compilation cache: identical sources share one elaboration."""

from __future__ import annotations

import pytest

from repro.hdl.elaborator import ELAB_CACHE
from repro.hdl.verilog import compile_verilog
from repro.hdl.vhdl import compile_vhdl

COUNTER_V = """
module ctr(input clk, input rst, output reg [7:0] q);
    always @(posedge clk) begin
        if (rst) q <= 0; else q <= q + 1;
    end
endmodule
"""

COUNTER_VHDL = """
entity ctr is
  port (clk : in bit; rst : in bit; q : out bit_vector(7 downto 0));
end entity;
architecture rtl of ctr is
  signal cnt : bit_vector(7 downto 0);
begin
  q <= cnt;
  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        cnt <= (others => '0');
      end if;
    end if;
  end process;
end architecture;
"""


@pytest.fixture(autouse=True)
def clean_cache():
    ELAB_CACHE.clear()
    yield
    ELAB_CACHE.clear()


class TestSharing:
    def test_identical_compiles_share_one_design(self):
        a = compile_verilog(COUNTER_V, top="ctr")
        b = compile_verilog(COUNTER_V, top="ctr")
        assert a is b
        assert ELAB_CACHE.info()["hits"] >= 1

    def test_different_params_do_not_share(self):
        src = COUNTER_V.replace("[7:0]", "[W-1:0]").replace(
            "module ctr(", "module ctr #(parameter W = 8) ("
        )
        a = compile_verilog(src, top="ctr", params={"W": 8})
        b = compile_verilog(src, top="ctr", params={"W": 16})
        assert a is not b
        assert a.signals["q"].width == 8
        assert b.signals["q"].width == 16

    def test_different_source_does_not_share(self):
        a = compile_verilog(COUNTER_V, top="ctr")
        b = compile_verilog(COUNTER_V + "\n// trailing comment", top="ctr")
        assert a is not b

    def test_vhdl_keying_is_case_insensitive(self):
        a = compile_vhdl(COUNTER_VHDL, top="ctr")
        b = compile_vhdl(COUNTER_VHDL, top="CTR")
        assert a is b

    def test_frontends_never_collide(self):
        """Same source text through both frontends must key separately."""
        key_v = ELAB_CACHE.key("verilog", COUNTER_V, "ctr", None)
        key_h = ELAB_CACHE.key("vhdl", COUNTER_V, "ctr", None)
        assert key_v != key_h


class TestInstrumentationKeying:
    """Coverage-instrumented builds must never collide with plain ones."""

    def test_instrumented_and_plain_do_not_share(self):
        from repro.hdl.common import CoverageOptions

        plain = compile_verilog(COUNTER_V, top="ctr")
        cov = compile_verilog(COUNTER_V, top="ctr",
                              instrument=CoverageOptions())
        assert plain is not cov
        assert plain.coverage_points == []
        assert cov.coverage_points

    def test_same_instrument_options_share(self):
        from repro.hdl.common import CoverageOptions

        a = compile_verilog(COUNTER_V, top="ctr",
                            instrument=CoverageOptions())
        b = compile_verilog(COUNTER_V, top="ctr",
                            instrument=CoverageOptions())
        assert a is b

    def test_different_instrument_options_do_not_share(self):
        from repro.hdl.common import CoverageOptions

        a = compile_verilog(COUNTER_V, top="ctr",
                            instrument=CoverageOptions())
        b = compile_verilog(COUNTER_V, top="ctr",
                            instrument=CoverageOptions(statement=False))
        assert a is not b

    def test_key_includes_instrument_token(self):
        from repro.hdl.common import CoverageOptions

        plain = ELAB_CACHE.key("verilog", COUNTER_V, "ctr", None)
        cov = ELAB_CACHE.key("verilog", COUNTER_V, "ctr", None,
                             CoverageOptions())
        assert plain != cov


class TestOptimisationKeying:
    """Optimized builds must never collide with unoptimized ones.

    Mirrors :class:`TestInstrumentationKeying`: the optimiser rewrites
    process code in place, so (source, top, params) alone is no longer
    the design's identity once ``opt_level``/pass toggles enter play.
    """

    def test_opt_levels_do_not_share(self):
        from repro.hdl.common import ElabOptions

        o0 = compile_verilog(COUNTER_V, top="ctr")
        o2 = compile_verilog(COUNTER_V, top="ctr",
                             options=ElabOptions(opt_level=2))
        assert o0 is not o2
        assert o0.opt_stats == {}
        assert o2.opt_stats

    def test_same_opt_level_shares(self):
        from repro.hdl.common import ElabOptions

        a = compile_verilog(COUNTER_V, top="ctr",
                            options=ElabOptions(opt_level=2))
        b = compile_verilog(COUNTER_V, top="ctr",
                            options=ElabOptions(opt_level=2))
        assert a is b

    def test_explicit_o0_equals_no_options(self):
        """-O0 and 'no options' are the same (unoptimized) build."""
        from repro.hdl.common import ElabOptions

        a = compile_verilog(COUNTER_V, top="ctr")
        b = compile_verilog(COUNTER_V, top="ctr",
                            options=ElabOptions(opt_level=0))
        assert a is b

    def test_pass_toggle_changes_key(self):
        from repro.hdl.common import ElabOptions

        full = compile_verilog(COUNTER_V, top="ctr",
                               options=ElabOptions(opt_level=2))
        ablated = compile_verilog(
            COUNTER_V, top="ctr",
            options=ElabOptions(opt_level=2, activity=False),
        )
        assert full is not ablated

    def test_key_includes_opt_token(self):
        from repro.hdl.common import ElabOptions

        plain = ELAB_CACHE.key("verilog", COUNTER_V, "ctr", None)
        opt = ELAB_CACHE.key("verilog", COUNTER_V, "ctr", None, None,
                             ElabOptions(opt_level=1))
        assert plain != opt

    def test_key_orthogonal_to_instrumentation(self):
        from repro.hdl.common import CoverageOptions, ElabOptions

        cov = ELAB_CACHE.key("verilog", COUNTER_V, "ctr", None,
                             CoverageOptions())
        cov_opt = ELAB_CACHE.key("verilog", COUNTER_V, "ctr", None,
                                 CoverageOptions(), ElabOptions(opt_level=2))
        assert cov != cov_opt

    def test_env_default_joins_key(self, monkeypatch):
        """REPRO_OPT_LEVEL changes what a bare compile() builds."""
        plain = compile_verilog(COUNTER_V, top="ctr")
        monkeypatch.setenv("REPRO_OPT_LEVEL", "2")
        opt = compile_verilog(COUNTER_V, top="ctr")
        assert plain is not opt
        assert opt.opt_stats


class TestSharedSimulation:
    def test_shared_design_simulates_independently(self):
        from repro.rtl import RTLSimulator

        module = compile_verilog(COUNTER_V, top="ctr")
        assert compile_verilog(COUNTER_V, top="ctr") is module
        s1 = RTLSimulator(module)
        s2 = RTLSimulator(module)
        for s in (s1, s2):
            s.reset("rst")
        s1.tick(5)
        s2.tick(2)
        assert s1.peek("q") == 5
        assert s2.peek("q") == 2


class TestKnob:
    def test_env_knob_disables_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_ELAB_CACHE", "0")
        a = compile_verilog(COUNTER_V, top="ctr")
        b = compile_verilog(COUNTER_V, top="ctr")
        assert a is not b
        info = ELAB_CACHE.info()
        assert info["enabled"] is False
        assert info["hits"] == 0 and info["entries"] == 0

    def test_clear_resets_counters(self):
        compile_verilog(COUNTER_V, top="ctr")
        compile_verilog(COUNTER_V, top="ctr")
        ELAB_CACHE.clear()
        info = ELAB_CACHE.info()
        assert info == {**info, "entries": 0, "hits": 0, "misses": 0}

    def test_miss_then_hit_counters(self):
        compile_verilog(COUNTER_V, top="ctr")
        assert ELAB_CACHE.info()["misses"] == 1
        compile_verilog(COUNTER_V, top="ctr")
        info = ELAB_CACHE.info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        assert info["entries"] == 1
