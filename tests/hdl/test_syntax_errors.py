"""Unified syntax-error shape across both frontends.

Both the Verilog and VHDL frontends raise
:class:`repro.hdl.HDLSyntaxError` subclasses carrying a structured
``loc`` (file/line/col) and a bare ``message`` — the contract the lint
subsystem relies on to render malformed sources as findings.
"""

from __future__ import annotations

import pytest

from repro.hdl import HDLError, HDLSyntaxError
from repro.hdl.verilog import compile_verilog
from repro.hdl.vhdl import compile_vhdl


class TestVerilog:
    def test_parse_error_is_syntax_error(self):
        with pytest.raises(HDLSyntaxError) as exc:
            compile_verilog("module m(input a;\n", filename="broken.v")
        err = exc.value
        assert isinstance(err, HDLError)
        assert err.loc is not None
        assert err.loc.filename == "broken.v"
        assert err.loc.line >= 1
        assert err.loc.col >= 1
        assert err.message
        assert "broken.v" in str(err)

    def test_lex_error_is_syntax_error(self):
        with pytest.raises(HDLSyntaxError) as exc:
            compile_verilog("module m; ` endmodule", filename="lex.v")
        assert exc.value.loc is not None


class TestVHDL:
    def test_parse_error_is_syntax_error(self):
        with pytest.raises(HDLSyntaxError) as exc:
            compile_vhdl("entity e is port (\n", filename="broken.vhdl")
        err = exc.value
        assert err.loc is not None
        assert err.loc.filename == "broken.vhdl"
        assert err.loc.line >= 1
        assert err.message

    def test_message_attribute_is_bare_text(self):
        """``message`` must not embed the location (str(err) does)."""
        with pytest.raises(HDLSyntaxError) as exc:
            compile_vhdl("entity e is port (\n", filename="broken.vhdl")
        err = exc.value
        assert "broken.vhdl" not in err.message
        assert "broken.vhdl" in str(err)


class TestElabErrorsAreNotSyntaxErrors:
    def test_semantic_error_is_hdl_but_not_syntax(self):
        src = """
        module m(input a, output x);
            assign x = nosuch;
        endmodule
        """
        with pytest.raises(HDLError) as exc:
            compile_verilog(src, top="m")
        assert not isinstance(exc.value, HDLSyntaxError)
