"""Cross-frontend equivalence: the same design written in Verilog and in
VHDL must behave identically — the paper's claim that both toolflows
produce interchangeable models behind the wrapper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.verilog import compile_verilog
from repro.hdl.vhdl import compile_vhdl
from repro.rtl import RTLSimulator

ALU_VERILOG = """
module alu (
    input clk,
    input rst,
    input [1:0] op,
    input [7:0] a,
    input [7:0] b,
    output [7:0] y,
    output zero
);
    reg [7:0] acc;
    always @(posedge clk) begin
        if (rst)
            acc <= 0;
        else begin
            case (op)
                2'd0: acc <= a + b;
                2'd1: acc <= a - b;
                2'd2: acc <= a & b;
                default: acc <= a ^ b;
            endcase
        end
    end
    assign y = acc;
    assign zero = (acc == 0);
endmodule
"""

ALU_VHDL = """
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity alu is
  port (
    clk  : in  std_logic;
    rst  : in  std_logic;
    op   : in  std_logic_vector(1 downto 0);
    a    : in  std_logic_vector(7 downto 0);
    b    : in  std_logic_vector(7 downto 0);
    y    : out std_logic_vector(7 downto 0);
    zero : out std_logic
  );
end entity;

architecture rtl of alu is
  signal acc : std_logic_vector(7 downto 0);
begin
  process(clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        acc <= (others => '0');
      else
        case op is
          when "00" => acc <= std_logic_vector(unsigned(a) + unsigned(b));
          when "01" => acc <= std_logic_vector(unsigned(a) - unsigned(b));
          when "10" => acc <= a and b;
          when others => acc <= a xor b;
        end case;
      end if;
    end if;
  end process;
  y <= acc;
  zero <= '1' when unsigned(acc) = 0 else '0';
end architecture;
"""


@pytest.fixture(scope="module")
def sims():
    return (
        RTLSimulator(compile_verilog(ALU_VERILOG)),
        RTLSimulator(compile_vhdl(ALU_VHDL)),
    )


def _step(sim, op, a, b):
    sim.poke("op", op)
    sim.poke("a", a)
    sim.poke("b", b)
    sim.settle()
    sim.tick()
    return sim.peek("y"), sim.peek("zero")


class TestEquivalence:
    def test_both_compile_with_same_interface(self, sims):
        v, h = sims
        v_io = {(s.name, s.width) for s in v.module.inputs + v.module.outputs}
        h_io = {(s.name, s.width) for s in h.module.inputs + h.module.outputs}
        assert v_io == h_io

    def test_directed_vectors_match(self, sims):
        v, h = sims
        for sim in sims:
            sim.reset()
        vectors = [
            (0, 200, 100), (1, 5, 9), (2, 0xF0, 0x3C), (3, 0xAA, 0xAA),
            (0, 255, 1), (1, 0, 0),
        ]
        for op, a, b in vectors:
            assert _step(v, op, a, b) == _step(h, op, a, b), (op, a, b)

    @settings(max_examples=60, deadline=None)
    @given(
        op=st.integers(min_value=0, max_value=3),
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_property_lockstep(self, sims, op, a, b):
        v, h = sims
        assert _step(v, op, a, b) == _step(h, op, a, b)
