"""Verilog lexer: tokens, literals, comments, errors."""

import pytest

from repro.hdl.common import LexError, Loc
from repro.hdl.verilog.lexer import parse_based_literal, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "EOF"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds("module foo endmodule")
        assert toks == [("KW", "module"), ("ID", "foo"), ("KW", "endmodule")]

    def test_multichar_operators_longest_match(self):
        toks = kinds("a <= b >> 2")
        assert ("OP", "<=") in toks and ("OP", ">>") in toks

    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [("ID", "a"), ("ID", "b")]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [("ID", "a"), ("ID", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* forever")

    def test_directive_line_skipped(self):
        assert kinds("`timescale 1ns/1ps\nwire") == [("KW", "wire")]

    def test_line_numbers_tracked(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1
        assert toks[1].loc.line == 2 and toks[1].loc.col == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a £ b")

    def test_dollar_identifiers(self):
        assert kinds("$display")[0] == ("ID", "$display")


class TestLiterals:
    def test_plain_decimal(self):
        assert kinds("42") == [("NUMBER", "42")]

    def test_underscore_decimal(self):
        assert kinds("1_000")[0][0] == "NUMBER"

    def test_based_forms(self):
        loc = Loc(1, 1)
        assert parse_based_literal("8'hFF", loc) == (8, 255)
        assert parse_based_literal("4'd9", loc) == (4, 9)
        assert parse_based_literal("'b0101", loc) == (None, 5)
        assert parse_based_literal("12'o777", loc) == (12, 0o777)
        assert parse_based_literal("8'sd5", loc) == (8, 5)

    def test_based_value_truncated_to_width(self):
        assert parse_based_literal("4'hFF", Loc(1, 1)) == (4, 0xF)

    def test_underscores_in_based(self):
        assert parse_based_literal("32'hDEAD_BEEF", Loc(1, 1)) == (32, 0xDEADBEEF)

    def test_malformed_based_rejected(self):
        with pytest.raises(LexError):
            tokenize("8'q12")
        with pytest.raises(LexError):
            parse_based_literal("8'h", Loc(1, 1))
        with pytest.raises(LexError):
            parse_based_literal("8'b102", Loc(1, 1))
