"""VHDL frontend: parse + elaborate + simulate semantics (GHDL flow)."""

import pytest

from repro.hdl.common import ParseError
from repro.hdl.vhdl import compile_vhdl
from repro.hdl.vhdl.lexer import parse_bitstring, tokenize
from repro.hdl.common import Loc
from repro.rtl import RTLSimulator


def vhdl_comb(body: str, decls: str = "", in_width=8, out_width=8):
    src = f"""
    library ieee;
    use ieee.std_logic_1164.all;
    use ieee.numeric_std.all;
    entity t is
      port (
        a : in std_logic_vector({in_width - 1} downto 0);
        b : in std_logic_vector({in_width - 1} downto 0);
        y : out std_logic_vector({out_width - 1} downto 0)
      );
    end entity;
    architecture rtl of t is
      {decls}
    begin
      {body}
    end architecture;
    """
    return RTLSimulator(compile_vhdl(src))


class TestLexer:
    def test_case_insensitive(self):
        toks = tokenize("ENTITY Foo IS")
        assert [(t.kind, t.text) for t in toks[:3]] == [
            ("KW", "entity"), ("ID", "foo"), ("KW", "is")
        ]

    def test_comment(self):
        toks = tokenize("a -- comment\nb")
        assert [t.text for t in toks if t.kind == "ID"] == ["a", "b"]

    def test_char_literal(self):
        toks = tokenize("x <= '1';")
        assert any(t.kind == "CHAR" and t.text == "'1'" for t in toks)

    def test_bitstrings(self):
        assert parse_bitstring('"0101"', Loc(1, 1)) == (4, 5)
        assert parse_bitstring('x"ff"', Loc(1, 1)) == (8, 255)
        assert parse_bitstring('b"11"', Loc(1, 1)) == (2, 3)

    def test_operators(self):
        toks = tokenize("y <= a /= b;")
        assert any(t.is_op("/=") for t in toks)
        assert any(t.is_op("<=") for t in toks)


class TestConcurrent:
    def test_arithmetic_assignment(self):
        sim = vhdl_comb("y <= std_logic_vector(unsigned(a) + unsigned(b));")
        sim.poke("a", 200); sim.poke("b", 100); sim.settle()
        assert sim.peek("y") == (300 & 0xFF)

    def test_logical_ops(self):
        sim = vhdl_comb("y <= a and b;")
        sim.poke("a", 0xF0); sim.poke("b", 0xAA); sim.settle()
        assert sim.peek("y") == 0xA0

    def test_when_else_chain(self):
        sim = vhdl_comb(
            'y <= x"01" when unsigned(a) > unsigned(b) else '
            'x"02" when a = b else x"03";'
        )
        sim.poke("a", 9); sim.poke("b", 3); sim.settle()
        assert sim.peek("y") == 1
        sim.poke("b", 9); sim.settle()
        assert sim.peek("y") == 2
        sim.poke("b", 20); sim.settle()
        assert sim.peek("y") == 3

    def test_concatenation(self):
        sim = vhdl_comb("y <= a(3 downto 0) & b(3 downto 0);")
        sim.poke("a", 0x0A); sim.poke("b", 0x0B); sim.settle()
        assert sim.peek("y") == 0xAB

    def test_not_operator(self):
        sim = vhdl_comb("y <= not a;")
        sim.poke("a", 0x0F); sim.settle()
        assert sim.peek("y") == 0xF0

    def test_shift_operators(self):
        sim = vhdl_comb("y <= std_logic_vector(unsigned(a) sll 2);")
        sim.poke("a", 3); sim.settle()
        assert sim.peek("y") == 12

    def test_slice_read(self):
        sim = vhdl_comb("y <= a(7 downto 4) & a(3 downto 0);")
        sim.poke("a", 0x5C); sim.settle()
        assert sim.peek("y") == 0x5C

    def test_bit_index(self):
        src = """
        entity t is
          port (a : in std_logic_vector(7 downto 0); y : out std_logic);
        end entity;
        architecture rtl of t is begin
          y <= a(6);
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        sim.poke("a", 0x40); sim.settle()
        assert sim.peek("y") == 1


class TestProcesses:
    def test_clocked_register(self):
        src = """
        entity t is
          port (clk : in std_logic;
                d : in std_logic_vector(7 downto 0);
                q : out std_logic_vector(7 downto 0));
        end entity;
        architecture rtl of t is
          signal r : std_logic_vector(7 downto 0);
        begin
          process(clk) begin
            if rising_edge(clk) then
              r <= d;
            end if;
          end process;
          q <= r;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        sim.poke("d", 0x7E); sim.settle()
        assert sim.peek("q") == 0
        sim.tick()
        assert sim.peek("q") == 0x7E

    def test_sync_reset_elsif_idiom(self):
        src = """
        entity t is
          port (clk, rst, en : in std_logic;
                q : out std_logic_vector(3 downto 0));
        end entity;
        architecture rtl of t is
          signal c : std_logic_vector(3 downto 0);
        begin
          process(rst, clk) begin
            if rst = '1' then
              c <= (others => '0');
            elsif rising_edge(clk) then
              if en = '1' then
                c <= std_logic_vector(unsigned(c) + 1);
              end if;
            end if;
          end process;
          q <= c;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        sim.reset()
        sim.poke("en", 1); sim.settle(); sim.tick(5)
        assert sim.peek("q") == 5
        sim.poke("rst", 1); sim.settle(); sim.tick()
        assert sim.peek("q") == 0

    def test_combinational_process(self):
        src = """
        entity t is
          port (a, b : in std_logic_vector(7 downto 0);
                y : out std_logic_vector(7 downto 0));
        end entity;
        architecture rtl of t is begin
          process(a, b) begin
            if unsigned(a) > unsigned(b) then
              y <= a;
            else
              y <= b;
            end if;
          end process;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        sim.poke("a", 3); sim.poke("b", 9); sim.settle()
        assert sim.peek("y") == 9

    def test_case_statement(self):
        src = """
        entity t is
          port (sel : in std_logic_vector(1 downto 0);
                y : out std_logic_vector(7 downto 0));
        end entity;
        architecture rtl of t is begin
          process(sel) begin
            case sel is
              when "00" => y <= x"11";
              when "01" | "10" => y <= x"22";
              when others => y <= x"33";
            end case;
          end process;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        for sel, expect in ((0, 0x11), (1, 0x22), (2, 0x22), (3, 0x33)):
            sim.poke("sel", sel); sim.settle()
            assert sim.peek("y") == expect

    def test_for_loop_shift_register(self):
        src = """
        entity t is
          port (clk : in std_logic;
                din : in std_logic;
                q : out std_logic_vector(3 downto 0));
        end entity;
        architecture rtl of t is
          signal r : std_logic_vector(3 downto 0);
        begin
          process(clk) begin
            if rising_edge(clk) then
              for i in 3 downto 1 loop
                r(i) <= r(i - 1);
              end loop;
              r(0) <= din;
            end if;
          end process;
          q <= r;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        for bit in (1, 0, 1, 1):
            sim.poke("din", bit); sim.settle(); sim.tick()
        # after feeding 1,0,1,1: r3=first bit fed, r0=last -> 1011
        assert sim.peek("q") == 0b1011

    def test_variables_rejected_with_message(self):
        src = """
        entity t is port (y : out std_logic); end entity;
        architecture rtl of t is begin
          process
            variable v : std_logic;
          begin
            y <= '0';
          end process;
        end architecture;
        """
        with pytest.raises(ParseError, match="variable"):
            compile_vhdl(src)


class TestGenericsAndInstances:
    def test_generic_override(self):
        src = """
        entity t is
          generic (W : integer := 4);
          port (a : in std_logic_vector(W-1 downto 0);
                y : out std_logic_vector(W-1 downto 0));
        end entity;
        architecture rtl of t is begin
          y <= std_logic_vector(unsigned(a) + 1);
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src, params={"W": 12}))
        sim.poke("a", 0xFFF); sim.settle()
        assert sim.peek("y") == 0

    def test_constant_declaration(self):
        src = """
        entity t is port (y : out std_logic_vector(7 downto 0)); end entity;
        architecture rtl of t is
          constant MAGIC : integer := 42;
        begin
          y <= std_logic_vector(to_unsigned(MAGIC + 1, 8));
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        sim.settle()
        assert sim.peek("y") == 43

    def test_entity_instantiation(self):
        src = """
        entity inv is
          generic (W : integer := 8);
          port (a : in std_logic_vector(W-1 downto 0);
                y : out std_logic_vector(W-1 downto 0));
        end entity;
        architecture rtl of inv is begin
          y <= not a;
        end architecture;

        entity top is
          port (x : in std_logic_vector(7 downto 0);
                z : out std_logic_vector(7 downto 0));
        end entity;
        architecture rtl of top is
          signal mid : std_logic_vector(7 downto 0);
        begin
          u0 : entity work.inv generic map (W => 8) port map (a => x, y => mid);
          u1 : entity work.inv generic map (W => 8) port map (a => mid, y => z);
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src, top="top"))
        sim.poke("x", 0x3C); sim.settle()
        assert sim.peek("z") == 0x3C  # double inversion

    def test_others_one_aggregate_rejected(self):
        src = """
        entity t is port (y : out std_logic_vector(7 downto 0)); end entity;
        architecture rtl of t is begin
          y <= (others => '1');
        end architecture;
        """
        with pytest.raises(ParseError):
            compile_vhdl(src)


class TestForGenerate:
    def test_instantiation_bank(self):
        src = """
        entity inv is
          port (a : in std_logic; y : out std_logic);
        end entity;
        architecture rtl of inv is begin
          y <= not a;
        end architecture;

        entity invbank is
          generic (W : integer := 8);
          port (x : in std_logic_vector(W-1 downto 0);
                z : out std_logic_vector(W-1 downto 0));
        end entity;
        architecture rtl of invbank is
        begin
          g : for i in 0 to W-1 generate
            u : entity work.inv port map (a => x(i), y => z(i));
          end generate;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src, top="invbank"))
        sim.poke("x", 0xC3)
        sim.settle()
        assert sim.peek("z") == (~0xC3) & 0xFF

    def test_concurrent_assign_in_generate(self):
        src = """
        entity t is
          port (a : in std_logic_vector(3 downto 0);
                y : out std_logic_vector(3 downto 0));
        end entity;
        architecture rtl of t is begin
          g : for i in 0 to 3 generate
            y(i) <= a(3 - i);
          end generate;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        sim.poke("a", 0b0011)
        sim.settle()
        assert sim.peek("y") == 0b1100  # bit reversal

    def test_downto_generate(self):
        src = """
        entity t is
          port (a : in std_logic_vector(3 downto 0);
                y : out std_logic_vector(3 downto 0));
        end entity;
        architecture rtl of t is begin
          g : for i in 3 downto 0 generate
            y(i) <= a(i);
          end generate;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src))
        sim.poke("a", 0b1010)
        sim.settle()
        assert sim.peek("y") == 0b1010

    def test_generic_bound_generate(self):
        src = """
        entity t is
          generic (N : integer := 4);
          port (y : out std_logic_vector(N-1 downto 0));
        end entity;
        architecture rtl of t is begin
          g : for i in 0 to N-1 generate
            y(i) <= '1' when (i mod 2) = 0 else '0';
          end generate;
        end architecture;
        """
        sim = RTLSimulator(compile_vhdl(src, params={"N": 8}))
        sim.settle()
        assert sim.peek("y") == 0b01010101
