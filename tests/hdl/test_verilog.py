"""Verilog frontend: parse + elaborate + simulate semantics.

Each test compiles a small module through the full toolflow and checks
behaviour, mirroring how Verilator users validate generated models.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl.common import ElabError, ParseError
from repro.hdl.verilog import compile_verilog
from repro.rtl import CombLoopError, RTLSimulator


def comb_eval(expr: str, width=8, inputs=("a", "b", "c"), in_width=8, **values):
    """Compile `assign y = expr;` and evaluate it for given input values."""
    ports = ", ".join(f"input [{in_width - 1}:0] {n}" for n in inputs)
    src = f"""
    module t ({ports}, output [{width - 1}:0] y);
        assign y = {expr};
    endmodule
    """
    sim = RTLSimulator(compile_verilog(src))
    for name, value in values.items():
        sim.poke(name, value)
    sim.settle()
    return sim.peek("y")


class TestOperators:
    def test_arithmetic(self):
        assert comb_eval("a + b", a=200, b=100) == (300 & 0xFF)
        assert comb_eval("a - b", a=5, b=10) == ((5 - 10) & 0xFF)
        assert comb_eval("a * b", a=20, b=20) == (400 & 0xFF)

    def test_division_and_modulo(self):
        assert comb_eval("a / b", a=17, b=5) == 3
        assert comb_eval("a % b", a=17, b=5) == 2

    def test_division_by_zero_yields_zero(self):
        assert comb_eval("a / b", a=17, b=0) == 0
        assert comb_eval("a % b", a=17, b=0) == 0

    def test_bitwise(self):
        assert comb_eval("a & b", a=0xF0, b=0xAA) == 0xA0
        assert comb_eval("a | b", a=0xF0, b=0x0A) == 0xFA
        assert comb_eval("a ^ b", a=0xFF, b=0x0F) == 0xF0

    def test_shifts(self):
        assert comb_eval("a << b", a=1, b=3) == 8
        assert comb_eval("a >> b", a=0x80, b=4) == 8
        assert comb_eval("a << b", a=0xFF, b=4) == 0xF0  # masked to 8 bits

    def test_comparisons(self):
        assert comb_eval("a < b", width=1, a=1, b=2) == 1
        assert comb_eval("a >= b", width=1, a=2, b=2) == 1
        assert comb_eval("a == b", width=1, a=5, b=5) == 1
        assert comb_eval("a != b", width=1, a=5, b=5) == 0

    def test_logical(self):
        assert comb_eval("a && b", width=1, a=3, b=0) == 0
        assert comb_eval("a || b", width=1, a=0, b=7) == 1
        assert comb_eval("!a", width=1, a=0) == 1

    def test_unary(self):
        assert comb_eval("~a", a=0x0F) == 0xF0
        assert comb_eval("-a", a=1) == 0xFF

    def test_reductions(self):
        assert comb_eval("&a", width=1, a=0xFF) == 1
        assert comb_eval("&a", width=1, a=0xFE) == 0
        assert comb_eval("|a", width=1, a=0) == 0
        assert comb_eval("|a", width=1, a=4) == 1
        assert comb_eval("^a", width=1, a=0b1011) == 1
        assert comb_eval("^a", width=1, a=0b1010) == 0
        assert comb_eval("~&a", width=1, a=0xFF) == 0
        assert comb_eval("~|a", width=1, a=0) == 1

    def test_ternary(self):
        assert comb_eval("a ? b : c", a=1, b=5, c=9) == 5
        assert comb_eval("a ? b : c", a=0, b=5, c=9) == 9

    def test_precedence(self):
        assert comb_eval("a + b * c", a=1, b=2, c=3) == 7
        assert comb_eval("(a + b) * c", a=1, b=2, c=3) == 9
        assert comb_eval("a | b & c", a=0b100, b=0b011, c=0b010) == 0b110

    def test_xnor(self):
        assert comb_eval("a ~^ b", a=0xFF, b=0xFF) == 0xFF
        assert comb_eval("a ^~ b", a=0xF0, b=0x0F) == 0x00


class TestSelectsAndConcat:
    def test_constant_bit_select(self):
        assert comb_eval("a[3]", width=1, a=0b1000) == 1

    def test_dynamic_bit_select(self):
        assert comb_eval("a[b]", width=1, a=0b0100, b=2) == 1

    def test_part_select(self):
        assert comb_eval("a[7:4]", width=4, a=0xAB) == 0xA

    def test_part_select_out_of_range_rejected(self):
        with pytest.raises(ElabError):
            comb_eval("a[9:4]", a=0)

    def test_concat(self):
        assert comb_eval("{a[3:0], b[3:0]}", a=0xA, b=0xB) == 0xAB

    def test_replication(self):
        assert comb_eval("{4{a[0]}}", width=4, a=1) == 0xF

    def test_concat_lvalue(self):
        src = """
        module t (input [7:0] x, output [3:0] hi, output [3:0] lo);
            assign {hi, lo} = x;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("x", 0xC5)
        sim.settle()
        assert sim.peek("hi") == 0xC and sim.peek("lo") == 5

    def test_bit_select_lvalue(self):
        src = """
        module t (input clk, input [2:0] idx, input val, output [7:0] q);
            reg [7:0] r;
            always @(posedge clk) r[idx] <= val;
            assign q = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("idx", 5); sim.poke("val", 1); sim.settle(); sim.tick()
        assert sim.peek("q") == 0b100000

    def test_part_select_lvalue(self):
        src = """
        module t (input [3:0] n, output [7:0] q);
            reg [7:0] r;
            always @(*) begin
                r = 8'h00;
                r[7:4] = n;
            end
            assign q = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("n", 0x9); sim.settle()
        assert sim.peek("q") == 0x90


class TestParameters:
    def test_default_and_override(self):
        src = """
        module t #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
            assign y = a + 1;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 0xF); sim.settle()
        assert sim.peek("y") == 0  # wraps at 4 bits
        sim16 = RTLSimulator(compile_verilog(src, params={"W": 16}))
        sim16.poke("a", 0xF); sim16.settle()
        assert sim16.peek("y") == 0x10

    def test_localparam(self):
        src = """
        module t (output [7:0] y);
            localparam MAGIC = 42;
            assign y = MAGIC + 1;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.settle()
        assert sim.peek("y") == 43

    def test_unknown_override_rejected(self):
        src = "module t (output y); assign y = 0; endmodule"
        with pytest.raises(ElabError):
            compile_verilog(src, params={"NOPE": 1})

    def test_parameter_expressions(self):
        src = """
        module t #(parameter W = 8, parameter HALF = W / 2)
                  (output [HALF-1:0] y);
            assign y = {HALF{1'b1}};
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.settle()
        assert sim.peek("y") == 0xF


class TestAlwaysBlocks:
    def test_comb_always_star(self):
        src = """
        module t (input [7:0] a, input [7:0] b, output [7:0] y);
            reg [7:0] r;
            always @(*) begin
                if (a > b) r = a;
                else r = b;
            end
            assign y = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 9); sim.poke("b", 4); sim.settle()
        assert sim.peek("y") == 9

    def test_case_statement(self):
        src = """
        module t (input [1:0] sel, output [7:0] y);
            reg [7:0] r;
            always @(*) begin
                case (sel)
                    2'd0: r = 8'h11;
                    2'd1, 2'd2: r = 8'h22;
                    default: r = 8'h33;
                endcase
            end
            assign y = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        for sel, expect in ((0, 0x11), (1, 0x22), (2, 0x22), (3, 0x33)):
            sim.poke("sel", sel); sim.settle()
            assert sim.peek("y") == expect

    def test_for_loop_in_sync_block(self):
        src = """
        module t (input clk, input [7:0] din, output [7:0] dout);
            reg [7:0] pipe [0:3];
            integer i;
            always @(posedge clk) begin
                for (i = 3; i > 0; i = i - 1)
                    pipe[i] <= pipe[i-1];
                pipe[0] <= din;
            end
            assign dout = pipe[3];
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        for v in (10, 20, 30, 40):
            sim.poke("din", v); sim.settle(); sim.tick()
        assert sim.peek("dout") == 10

    def test_blocking_assign_sequencing_in_comb(self):
        src = """
        module t (input [7:0] a, output [7:0] y);
            reg [7:0] t1;
            reg [7:0] r;
            always @(*) begin
                t1 = a + 1;
                r = t1 * 2;
            end
            assign y = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("a", 3); sim.settle()
        assert sim.peek("y") == 8

    def test_async_reset_idiom(self):
        src = """
        module t (input clk, input rst, output [3:0] q);
            reg [3:0] c;
            always @(posedge clk or posedge rst) begin
                if (rst) c <= 0;
                else c <= c + 1;
            end
            assign q = c;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.reset()
        sim.tick(5)
        assert sim.peek("q") == 5


class TestHierarchy:
    SRC = """
    module half_adder (input x, input y, output s, output c);
        assign s = x ^ y;
        assign c = x & y;
    endmodule

    module full_adder (input a, input b, input cin, output sum, output cout);
        wire s1;
        wire c1;
        wire c2;
        half_adder ha1 (.x(a), .y(b), .s(s1), .c(c1));
        half_adder ha2 (.x(s1), .y(cin), .s(sum), .c(c2));
        assign cout = c1 | c2;
    endmodule
    """

    def test_two_level_hierarchy(self):
        sim = RTLSimulator(compile_verilog(self.SRC, top="full_adder"))
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    sim.poke("a", a); sim.poke("b", b); sim.poke("cin", cin)
                    sim.settle()
                    total = a + b + cin
                    assert sim.peek("sum") == total & 1
                    assert sim.peek("cout") == total >> 1

    def test_unknown_module_rejected(self):
        src = "module t (output y); nosuch u0 (.p(y)); endmodule"
        with pytest.raises(ElabError):
            compile_verilog(src, top="t")

    def test_unknown_port_rejected(self):
        src = self.SRC + """
        module t (output y);
            half_adder u (.nope(y));
        endmodule
        """
        with pytest.raises(ElabError):
            compile_verilog(src, top="t")

    def test_top_ambiguity_requires_explicit(self):
        with pytest.raises(ValueError):
            compile_verilog(self.SRC)


class TestErrors:
    def test_comb_loop_detected(self):
        # an oscillating zero-delay loop never converges; a value-stable
        # structural loop (a=b; b=a) settles like in event-driven sims
        src = """
        module t (output y);
            wire a;
            wire b;
            assign a = ~b;
            assign b = a;
            assign y = a;
        endmodule
        """
        with pytest.raises(CombLoopError):
            RTLSimulator(compile_verilog(src))

    def test_unknown_identifier(self):
        src = "module t (output y); assign y = zz; endmodule"
        with pytest.raises(ElabError):
            compile_verilog(src)

    def test_syntax_error_has_location(self):
        src = "module t (output y)\n  assign y = 1;\nendmodule"
        with pytest.raises(ParseError) as exc:
            compile_verilog(src)
        assert ":2:" in str(exc.value) or ":1:" in str(exc.value)

    def test_ascending_range_rejected(self):
        src = "module t (input [0:7] a, output y); assign y = a[0]; endmodule"
        with pytest.raises(ElabError):
            compile_verilog(src)


# ---------------------------------------------------------------------------
# Property-based: random same-width expressions vs a modular-arithmetic oracle
# ---------------------------------------------------------------------------

_BINOPS = {
    "+": lambda a, b, m: (a + b) & m,
    "-": lambda a, b, m: (a - b) & m,
    "*": lambda a, b, m: (a * b) & m,
    "&": lambda a, b, m: a & b,
    "|": lambda a, b, m: a | b,
    "^": lambda a, b, m: a ^ b,
}


@st.composite
def _expr_trees(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from(["a", "b", "c"]))
    op = draw(st.sampled_from(sorted(_BINOPS)))
    left = draw(_expr_trees(depth=depth + 1))
    right = draw(_expr_trees(depth=depth + 1))
    return (op, left, right)


def _tree_to_verilog(tree) -> str:
    if isinstance(tree, str):
        return tree
    op, l, r = tree
    return f"({_tree_to_verilog(l)} {op} {_tree_to_verilog(r)})"


def _tree_eval(tree, env, mask) -> int:
    if isinstance(tree, str):
        return env[tree]
    op, l, r = tree
    return _BINOPS[op](_tree_eval(l, env, mask), _tree_eval(r, env, mask), mask)


@settings(max_examples=60, deadline=None)
@given(
    tree=_expr_trees(),
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
    c=st.integers(min_value=0, max_value=255),
)
def test_property_expressions_match_modular_oracle(tree, a, b, c):
    """Same-width +,-,*,&,|,^ expressions behave as mod-2^W arithmetic."""
    expr = _tree_to_verilog(tree)
    got = comb_eval(expr, a=a, b=b, c=c)
    want = _tree_eval(tree, {"a": a, "b": b, "c": c}, 0xFF)
    assert got == want, expr


class TestCasez:
    def test_priority_encoder(self):
        src = """
        module pri_enc (input [7:0] req, output [2:0] grant, output any);
            reg [2:0] g;
            reg a;
            always @(*) begin
                a = 1;
                casez (req)
                    8'b1???????: g = 3'd7;
                    8'b01??????: g = 3'd6;
                    8'b001?????: g = 3'd5;
                    8'b0001????: g = 3'd4;
                    8'b00001???: g = 3'd3;
                    8'b000001??: g = 3'd2;
                    8'b0000001?: g = 3'd1;
                    8'b00000001: g = 3'd0;
                    default: begin g = 3'd0; a = 0; end
                endcase
            end
            assign grant = g;
            assign any = a;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        for req in range(256):
            sim.poke("req", req)
            sim.settle()
            if req == 0:
                assert sim.peek("any") == 0
            else:
                assert sim.peek("grant") == req.bit_length() - 1

    def test_z_digit_wildcard(self):
        src = """
        module t (input [3:0] x, output y);
            reg r;
            always @(*) begin
                casez (x)
                    4'b1zz1: r = 1;
                    default: r = 0;
                endcase
            end
            assign y = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        for x, expect in ((0b1001, 1), (0b1111, 1), (0b1011, 1),
                          (0b0001, 0), (0b1000, 0)):
            sim.poke("x", x)
            sim.settle()
            assert sim.peek("y") == expect, bin(x)

    def test_hex_wildcard_nibbles(self):
        src = """
        module t (input [7:0] x, output y);
            reg r;
            always @(*) begin
                casez (x)
                    8'hA?: r = 1;
                    default: r = 0;
                endcase
            end
            assign y = r;
        endmodule
        """
        sim = RTLSimulator(compile_verilog(src))
        sim.poke("x", 0xA7); sim.settle()
        assert sim.peek("y") == 1
        sim.poke("x", 0xB7); sim.settle()
        assert sim.peek("y") == 0

    def test_wildcard_outside_case_rejected(self):
        from repro.hdl.common import ElabError

        with pytest.raises(ElabError):
            compile_verilog(
                "module t (output [1:0] y); assign y = 2'b1?; endmodule"
            )
