"""RTLObject: ports, tick cadence/frequency ratio, struct exchange,
memory-side issue with in-flight caps, TLB hookup."""

import pytest

from repro.bridge import (
    BehavioralSharedLibrary,
    CPU_SIDE_PORTS,
    Field,
    MEM_SIDE_PORTS,
    RTLObject,
    StructSpec,
)
from repro.soc.event import ClockDomain
from repro.soc.mem import IdealMemory
from repro.soc.packet import MemCmd, Packet
from repro.soc.ports import RequestPort
from repro.soc.simobject import Simulation
from repro.soc.tlb import TLB, PageTable


class EchoLibrary(BehavioralSharedLibrary):
    """Counts its own ticks; echoes an input field."""

    input_spec = StructSpec("i", [Field("x", 8)])
    output_spec = StructSpec("o", [Field("x", 8), Field("ticks", 32)])

    def __init__(self):
        super().__init__()
        self.reset_calls = 0

    def reset(self):
        super().reset()
        self.reset_calls += 1

    def step(self, inputs):
        return {"x": inputs["x"], "ticks": self.ticks}


class Probe(RTLObject):
    """RTLObject that records consumed outputs."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.seen = []
        self.x_in = 0

    def build_input(self):
        return self.library.input_spec.pack(x=self.x_in)

    def consume_output(self, outputs):
        self.seen.append(outputs)


class TestLifecycle:
    def test_reset_called_at_startup(self, sim):
        obj = Probe(sim, "rtl", EchoLibrary())
        sim.run(until=10_000)
        assert obj.library.reset_calls == 1

    def test_ticks_at_default_clock(self, sim):
        obj = Probe(sim, "rtl", EchoLibrary())
        sim.run(until=sim.default_clock.cycles_to_ticks(10) + 1)
        assert 9 <= obj.st_ticks.value() <= 11

    def test_frequency_ratio(self, sim):
        """A 1 GHz RTL model ticks half as often as the 2 GHz default."""
        fast = Probe(sim, "fast", EchoLibrary())
        slow = Probe(sim, "slow", EchoLibrary(),
                     clock=ClockDomain(1e9, "slow_clk"))
        sim.run(until=100_000)  # 100 ns
        assert abs(fast.st_ticks.value() - 2 * slow.st_ticks.value()) <= 2

    def test_stop_halts_ticking(self, sim):
        obj = Probe(sim, "rtl", EchoLibrary())
        sim.run(until=10_000)
        obj.stop()
        ticks = obj.st_ticks.value()
        sim.run(until=50_000)
        assert obj.st_ticks.value() == ticks

    def test_struct_exchange_roundtrip(self, sim):
        obj = Probe(sim, "rtl", EchoLibrary())
        obj.x_in = 0x5A
        sim.run(until=5_000)
        assert obj.seen
        assert all(o["x"] == 0x5A for o in obj.seen)

    def test_port_counts_match_paper(self, sim):
        obj = Probe(sim, "rtl", EchoLibrary())
        assert len(obj.cpu_side) == CPU_SIDE_PORTS == 2
        assert len(obj.mem_side) == MEM_SIDE_PORTS == 2


class TestCpuSide:
    def test_requests_queue_and_respond(self, sim):
        class Responder(Probe):
            def build_input(self):
                while self.cpu_req_queue:
                    self.respond_cpu(self.cpu_req_queue.popleft(),
                                     b"\xAB\xCD\x00\x00")
                return super().build_input()

        obj = Responder(sim, "rtl", EchoLibrary())
        got = []
        drv = RequestPort("drv", recv_timing_resp=lambda p: (got.append(p), True)[1],
                          recv_req_retry=lambda: None)
        drv.connect(obj.cpu_side[0])
        drv.send_timing_req(Packet(MemCmd.ReadReq, 0x0, 4))
        sim.run(until=20_000)
        assert len(got) == 1
        assert got[0].data == b"\xAB\xCD\x00\x00"
        assert obj.st_cpu_reqs.value() == 1


class TestMemSide:
    def _rig(self, sim, max_inflight=None, mem_latency=3):
        obj = Probe(sim, "rtl", EchoLibrary(), max_inflight=max_inflight)
        mems = []
        for i in range(2):
            mem = IdealMemory(sim, f"mem{i}", latency_cycles=mem_latency)
            obj.mem_side[i].connect(mem.port)
            mems.append(mem)
        return obj, mems

    def test_read_issues_and_response_queued(self, sim):
        obj, mems = self._rig(sim)
        sim.startup()
        assert obj.send_mem_read(0x100, 64)
        sim.run(until=sim.now + 100_000)
        assert obj.st_mem_reads.value() == 1
        assert obj.st_mem_resps.value() == 1

    def test_write_with_data_lands_in_memory(self, sim):
        obj, mems = self._rig(sim)
        sim.startup()
        obj.send_mem_write(0x200, 8, data=b"ABCDEFGH")
        sim.run(until=sim.now + 100_000)
        assert mems[0].physmem.read(0x200, 8) == b"ABCDEFGH"

    def test_port_selection(self, sim):
        obj, mems = self._rig(sim)
        sim.startup()
        obj.send_mem_read(0x0, 64, port_idx=1)
        sim.run(until=sim.now + 100_000)
        assert mems[1].st_reads.value() == 1
        assert mems[0].st_reads.value() == 0

    def test_max_inflight_enforced(self, sim):
        obj, _ = self._rig(sim, max_inflight=2, mem_latency=100)
        sim.startup()
        assert obj.send_mem_read(0x0, 64)
        assert obj.send_mem_read(0x40, 64)
        assert not obj.can_issue_mem()
        assert not obj.send_mem_read(0x80, 64)
        sim.run(until=sim.now + 10**6)
        assert obj.inflight == 0
        assert obj.can_issue_mem()

    def test_inflight_peak_stat(self, sim):
        obj, _ = self._rig(sim, mem_latency=50)
        sim.startup()
        for i in range(5):
            obj.send_mem_read(i * 64, 64)
        sim.run(until=sim.now + 10**6)
        assert obj.st_inflight_peak.value() == 5

    def test_meta_travels_with_response(self, sim):
        obj, _ = self._rig(sim)
        sim.startup()
        obj.send_mem_read(0x40, 64, seq=1234)
        sim.run(until=sim.now + 10**6)
        assert obj.mem_resp_queue[0].meta["seq"] == 1234


class TestTLBIntegration:
    def test_translated_issue(self, sim):
        pt = PageTable()
        pt.map(0x10000, 0x80000, 0x1000)
        tlb = TLB(sim, "tlb", page_table=pt)
        obj = Probe(sim, "rtl", EchoLibrary(), tlb=tlb)
        mem = IdealMemory(sim, "mem")
        obj.mem_side[0].connect(mem.port)
        obj.mem_side[1].connect(IdealMemory(sim, "mem2").port)
        sim.startup()
        obj.send_mem_write(0x10040, 4, data=b"\x01\x02\x03\x04", translate=True)
        sim.run(until=sim.now + 10**6)
        assert mem.physmem.read(0x80040, 4) == b"\x01\x02\x03\x04"
        assert tlb.misses.value() == 1

    def test_translate_without_tlb_rejected(self, sim):
        obj = Probe(sim, "rtl", EchoLibrary())
        mem = IdealMemory(sim, "mem")
        obj.mem_side[0].connect(mem.port)
        with pytest.raises(RuntimeError):
            obj.send_mem_read(0x0, 64, translate=True)
