"""Tier-(a) parallel RTLObject ticking: bit-identical to serial.

The contract under test: running N NVDLA instances through the worker
pool (``rtl_jobs > 1``) produces the same end tick, the same stats
counters, and byte-identical mid-run checkpoints as the serial path.
"""

import hashlib

import pytest

from repro.dse.nvdla_system import build_nvdla_system
from repro.rtl.parallel.pool import PooledLibrary, pool_available
from repro.rtl.parallel.sched import attach_parallel_rtl
from repro.soc.packet import set_next_packet_id
from repro.soc.simobject import Simulation

pytestmark = pytest.mark.skipif(
    not pool_available(), reason="platform lacks the fork start method"
)

SCALE = 0.2  # shrink sanity3 so the suite stays fast


def _run(n_nvdla, rtl_jobs, until=None, ckpt_path=None):
    """One full run; returns (end_tick, stats, ckpt_tick).

    The packet-id counter is process-global and serialized raw into
    checkpoints, so it is re-seeded per run to keep runs comparable.
    """
    set_next_packet_id(0)
    system = build_nvdla_system(
        workload="sanity3", n_nvdla=n_nvdla, scale=SCALE,
        rtl_jobs=rtl_jobs,
    )
    if rtl_jobs > 1 and n_nvdla > 1:
        assert system.parallel is not None
        assert all(isinstance(r.library, PooledLibrary) for r in system.rtls)
    else:
        assert system.parallel is None
    ckpt_tick = None
    try:
        if ckpt_path is None:
            end = system.run_to_completion()
        else:
            for host in system.hosts:
                host.start()
            sim = system.soc.sim
            sim.startup()
            sim.run(until=until)
            ckpt_tick = sim.save_checkpoint(ckpt_path)
            step = sim.default_clock.cycles_to_ticks(20_000)
            while not all(h.done for h in system.hosts):
                boundary = (sim.now // step + 1) * step
                sim.run(until=boundary)
            for rtl in system.rtls:
                rtl.stop()
            end = sim.now
        stats = system.soc.sim.stats_dump()
    finally:
        system.close()
    return end, stats, ckpt_tick


class TestAttachGating:
    def test_serial_when_jobs_is_one(self, sim: Simulation):
        assert attach_parallel_rtl(sim, [object(), object()], jobs=1) is None

    def test_serial_with_fewer_than_two_objects(self, sim: Simulation):
        assert attach_parallel_rtl(sim, [object()], jobs=4) is None


class TestBitIdentical:
    def test_two_nvdla_stats_match_serial(self):
        end_s, stats_s, _ = _run(2, rtl_jobs=1)
        end_p, stats_p, _ = _run(2, rtl_jobs=2)
        assert end_p == end_s
        assert stats_p == stats_s
        # sanity: the RTL actually ticked
        assert any("tick" in k and v > 0 for k, v in stats_s.items())

    def test_four_nvdla_stats_match_serial(self):
        end_s, stats_s, _ = _run(4, rtl_jobs=4)
        end_p, stats_p, _ = _run(4, rtl_jobs=1)
        assert end_p == end_s
        assert stats_p == stats_s

    def test_mid_run_checkpoint_bytes_match_serial(self, tmp_path):
        until = 1_000_000
        a = tmp_path / "serial.ckpt"
        b = tmp_path / "parallel.ckpt"
        end_s, stats_s, tick_s = _run(2, 1, until=until, ckpt_path=str(a))
        end_p, stats_p, tick_p = _run(2, 2, until=until, ckpt_path=str(b))
        assert (end_p, tick_p) == (end_s, tick_s)
        assert stats_p == stats_s
        assert (hashlib.sha256(a.read_bytes()).hexdigest()
                == hashlib.sha256(b.read_bytes()).hexdigest())


class TestSchedulerLifecycle:
    def test_close_restores_serial_libraries_and_callbacks(self):
        set_next_packet_id(0)
        system = build_nvdla_system(
            workload="sanity3", n_nvdla=2, scale=SCALE, rtl_jobs=2,
        )
        inners = [r.library.inner for r in system.rtls]
        system.run_to_completion()   # closes the scheduler in finally
        assert system.parallel is None
        for rtl, inner in zip(system.rtls, inners):
            assert rtl.library is inner
            assert rtl._tick_event.callback == rtl._tick

    def test_worker_state_synced_home_on_close(self):
        # After close(), the local libraries hold the worker's final
        # model state — a post-run checkpoint must capture it.
        set_next_packet_id(0)
        serial = build_nvdla_system(
            workload="sanity3", n_nvdla=2, scale=SCALE, rtl_jobs=1,
        )
        serial.run_to_completion()
        set_next_packet_id(0)
        parallel = build_nvdla_system(
            workload="sanity3", n_nvdla=2, scale=SCALE, rtl_jobs=2,
        )
        parallel.run_to_completion()
        for rs, rp in zip(serial.rtls, parallel.rtls):
            assert rs.library.checkpoint_state() == \
                rp.library.checkpoint_state()
