"""Batched ticking through the bridge: tick_batch, _batch_window and
model-level idle_cycles — all proven against the unbatched schedule."""

from __future__ import annotations

import pytest

from repro.bridge import BehavioralSharedLibrary, Field, StructSpec
from repro.models.pmu.rtl_object import PMURTLObject
from repro.models.pmu.wrapper import PMUSharedLibrary, threshold_addr, REG_ENABLE
from repro.models.rtlcache.wrapper import RTLCacheObject
from repro.soc.cpu.core import EventWire
from repro.soc.event import ClockDomain, Event, EventPriority, EventQueue
from repro.soc.mem import IdealMemory
from repro.soc.packet import MemCmd, Packet
from repro.soc.ports import RequestPort


class CountingLibrary(BehavioralSharedLibrary):
    input_spec = StructSpec("i", [Field("x", 8)])
    output_spec = StructSpec("o", [Field("ticks", 32)])

    def step(self, inputs):
        return {"ticks": self.ticks}


class TestNextEventTick:
    def test_empty_queue(self):
        assert EventQueue().next_event_tick() is None

    def test_earliest_live_entry(self):
        q = EventQueue()
        q.schedule_fn(lambda: None, 500)
        q.schedule_fn(lambda: None, 100)
        assert q.next_event_tick() == 100

    def test_skips_lazily_cancelled_entries(self):
        q = EventQueue()
        ev = q.schedule(Event(lambda: None, "dead"), 100)
        q.schedule_fn(lambda: None, 700)
        q.deschedule(ev)
        assert q.next_event_tick() == 700


class TestSharedLibraryTickBatch:
    def test_default_implementation_loops(self):
        lib = CountingLibrary()
        out = lib.tick_batch(lib.input_spec.zeros(), 5)
        assert lib.ticks == 5
        # last output corresponds to the 5th tick (ticks was 4 going in)
        assert lib.output_spec.unpack(out)["ticks"] == 4

    def test_rejects_non_positive_counts(self):
        lib = CountingLibrary()
        with pytest.raises(ValueError):
            lib.tick_batch(lib.input_spec.zeros(), 0)

    def test_rtl_fused_batch_equals_singles(self):
        """The fused RTL batch must reproduce n sequential ticks exactly."""
        batched = PMUSharedLibrary()
        stepped = PMUSharedLibrary()
        for lib in (batched, stepped):
            lib.reset()
            # enable all counters, count event 0
            lib.tick(lib.input_spec.pack(awvalid=1, awaddr=REG_ENABLE,
                                         wdata=0xFFFFF))
        stim = batched.input_spec.pack(events=1)
        out_b = batched.tick_batch(stim, 40)
        out_s = b""
        for _ in range(40):
            out_s = stepped.tick(stim)
        assert out_b == out_s
        assert batched.ticks == stepped.ticks == 41
        assert batched.sim.values == stepped.sim.values
        assert batched.sim.mems == stepped.sim.mems


def _cache_rig(sim_obj, batch):
    clk = ClockDomain(1e9)
    obj = RTLCacheObject(sim_obj, "cache", clock=clk, batch_cycles=batch)
    mem = IdealMemory(sim_obj, "mem", latency_cycles=5)
    obj.mem_side[0].connect(mem.port)
    obj.mem_side[1].connect(IdealMemory(sim_obj, "mem2").port)
    return obj


def _drive_cache(sim_obj, obj, addrs_and_ticks, until):
    got = []
    drv = RequestPort("drv",
                      recv_timing_resp=lambda p: (got.append(
                          (sim_obj.eventq.cur_tick, p.addr, p.data)), True)[1],
                      recv_req_retry=lambda: None)
    drv.connect(obj.cpu_side[0])
    for addr, tick in addrs_and_ticks:
        sim_obj.eventq.schedule_fn(
            lambda a=addr: drv.send_timing_req(Packet(MemCmd.ReadReq, a, 8)),
            tick)
    sim_obj.startup()
    sim_obj.run(until=until)
    return got


class TestRTLObjectBatching:
    REQS = [(0x1000, 5_000), (0x2040, 220_000), (0x1000, 700_000)]

    def _run(self, batch):
        from repro.soc.simobject import Simulation

        sim = Simulation()
        obj = _cache_rig(sim, batch)
        got = _drive_cache(sim, obj, self.REQS, until=1_000_000)
        return got, obj

    def test_batched_run_matches_unbatched(self):
        """Same responses, same data, same response *ticks* — batching
        must be invisible to the rest of the SoC."""
        got1, obj1 = self._run(batch=1)
        gotN, objN = self._run(batch=64)
        assert len(got1) == len(self.REQS)
        assert got1 == gotN
        assert obj1.st_batched_ticks.value() == 0
        assert objN.st_batched_ticks.value() > 0
        # the third read re-hits the line filled by the first
        assert objN.library.sim.peek("hit_count") == 1

    def test_busy_cache_never_batches(self):
        from repro.soc.simobject import Simulation

        sim = Simulation()
        obj = _cache_rig(sim, batch=64)
        obj._waiting_fill = True
        assert obj.idle_cycles() == 1

    def test_window_clamped_by_event_horizon(self):
        """With a foreign event 10 cycles out, the window cannot jump it."""
        from repro.soc.simobject import Simulation

        sim = Simulation()
        obj = _cache_rig(sim, batch=64)
        sim.startup()
        sim.eventq.service_one()  # position time at the first tick
        sim.eventq.schedule_fn(lambda: None,
                               sim.eventq.cur_tick + 10 * obj.clock.period)
        assert obj._batch_window() == 10


class TestPMUIdleCycles:
    def _pmu(self, sim):
        return PMURTLObject(sim, "pmu", PMUSharedLibrary(), batch_cycles=32)

    def test_idle_pmu_batches(self, sim):
        assert self._pmu(sim).idle_cycles() == 32

    def test_clock_lane_pins_to_single_step(self, sim):
        obj = self._pmu(sim)
        obj.connect_clock_event(0)
        assert obj.idle_cycles() == 1

    def test_queued_wire_pulses_pin_to_single_step(self, sim):
        obj = self._pmu(sim)
        wire = EventWire("commit")
        obj.connect_event(1, wire, lanes=4)
        assert obj.idle_cycles() == 32
        wire.pulse()
        assert obj.idle_cycles() == 1

    def test_pending_mmio_pins_to_single_step(self, sim):
        obj = self._pmu(sim)
        obj.cpu_req_queue.append(Packet(MemCmd.ReadReq, 0x1000_0000, 4))
        assert obj.idle_cycles() == 1

    def test_batched_counters_match_unbatched(self, sim):
        """Threshold interrupts still fire identically when idle stretches
        between event bursts are batched."""
        from repro.soc.simobject import Simulation

        def run(batch):
            s = Simulation()
            obj = PMURTLObject(s, "pmu", PMUSharedLibrary(),
                               clock=ClockDomain(1e9), batch_cycles=batch)
            wire = EventWire("ev")
            obj.connect_event(0, wire)
            irqs = []
            obj.on_interrupt(lambda t: irqs.append(t))
            obj.respond_cpu = lambda pkt, data=None: None  # sink write acks

            def configure():
                # threshold 3 on counter 0, then enable it
                for addr, val in ((obj.mmio_base + threshold_addr(0), 3),
                                  (obj.mmio_base + REG_ENABLE, 1)):
                    pkt = Packet(MemCmd.WriteReq, addr, 4,
                                 data=val.to_bytes(4, "little"))
                    pkt.dest_port = 0
                    obj.cpu_req_queue.append(pkt)

            s.eventq.schedule_fn(configure, 100)
            for t in (10_000, 50_000, 400_000, 410_000, 420_000, 800_000):
                s.eventq.schedule_fn(wire.pulse, t)
            s.startup()
            s.run(until=1_000_000)
            return irqs, obj

        irqs1, _ = run(1)
        irqsN, objN = run(64)
        assert irqs1 == irqsN
        assert len(irqs1) == 2  # pulses 1-3 and 4-6 each cross threshold 3
        assert objN.st_batched_ticks.value() > 0
