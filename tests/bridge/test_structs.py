"""Struct exchange: layout, packing, masking, arrays."""

import pytest
from hypothesis import given, strategies as st

from repro.bridge.structs import Field, StructSpec


class TestField:
    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            Field("f", 0)
        with pytest.raises(ValueError):
            Field("f", 65)

    def test_nbytes(self):
        assert Field("f", 1).nbytes == 1
        assert Field("f", 12).nbytes == 2
        assert Field("f", 32).nbytes == 4
        assert Field("f", 8, count=3).nbytes == 3

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            Field("f", 8, count=0)


class TestStructSpec:
    def test_size_is_sum_of_fields(self):
        spec = StructSpec("s", [Field("a", 1), Field("b", 32), Field("c", 12)])
        assert spec.size == 1 + 4 + 2

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            StructSpec("s", [Field("a", 1), Field("a", 2)])

    def test_pack_unpack_roundtrip(self):
        spec = StructSpec("s", [Field("a", 4), Field("b", 16)])
        data = spec.pack(a=0x9, b=0xBEEF)
        assert spec.unpack(data) == {"a": 9, "b": 0xBEEF}

    def test_unspecified_fields_zero(self):
        spec = StructSpec("s", [Field("a", 8), Field("b", 8)])
        assert spec.unpack(spec.pack(b=7)) == {"a": 0, "b": 7}

    def test_values_masked_to_width(self):
        spec = StructSpec("s", [Field("a", 4)])
        assert spec.unpack(spec.pack(a=0xFF))["a"] == 0xF

    def test_unknown_field_rejected(self):
        spec = StructSpec("s", [Field("a", 8)])
        with pytest.raises(KeyError):
            spec.pack(nope=1)

    def test_array_fields(self):
        spec = StructSpec("s", [Field("v", 16, count=3)])
        data = spec.pack(v=[1, 2, 70000])
        assert spec.unpack(data)["v"] == [1, 2, 70000 & 0xFFFF]

    def test_array_length_checked(self):
        spec = StructSpec("s", [Field("v", 8, count=2)])
        with pytest.raises(ValueError):
            spec.pack(v=[1, 2, 3])

    def test_unpack_length_checked(self):
        spec = StructSpec("s", [Field("a", 8)])
        with pytest.raises(ValueError):
            spec.unpack(b"\0\0")

    def test_zeros(self):
        spec = StructSpec("s", [Field("a", 8), Field("b", 32)])
        assert spec.unpack(spec.zeros()) == {"a": 0, "b": 0}

    def test_contains_and_iter(self):
        spec = StructSpec("s", [Field("a", 8)])
        assert "a" in spec and "b" not in spec
        assert [f.name for f in spec] == ["a"]

    def test_byte_layout_is_little_endian_per_field(self):
        spec = StructSpec("s", [Field("a", 16), Field("b", 8)])
        assert spec.pack(a=0x1234, b=0x56) == b"\x34\x12\x56"


@given(
    a=st.integers(min_value=0, max_value=(1 << 12) - 1),
    b=st.integers(min_value=0, max_value=(1 << 48) - 1),
    v=st.lists(st.integers(min_value=0, max_value=255), min_size=4, max_size=4),
)
def test_property_roundtrip(a, b, v):
    spec = StructSpec(
        "s", [Field("a", 12), Field("b", 48), Field("v", 8, count=4)]
    )
    out = spec.unpack(spec.pack(a=a, b=b, v=v))
    assert out == {"a": a, "b": b, "v": v}
