"""Lightweight job kinds for serve-layer tests.

Workers are module-level so they pickle into fork-pool workers.  Every
worker appends one line per *execution* to a per-point marker file, so
tests can assert exactly how many times a point actually simulated
(the dedup/cache/resume invariants are all "ran exactly once" claims).
"""

from __future__ import annotations

import os
import time

from repro.serve import JobKind, register_kind
from repro.serve.kinds import _KINDS


def _mark(marker_dir: str, value) -> None:
    if not marker_dir:
        return
    os.makedirs(marker_dir, exist_ok=True)
    path = os.path.join(marker_dir, f"point-{value}")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(f"{time.time()}\n")


def echo_point(point):
    """(value, delay_s, marker_dir) -> deterministic payload."""
    value, delay, marker_dir = point
    _mark(marker_dir, value)
    if delay:
        time.sleep(delay)
    return {"value": value * 2}


def failing_point(point):
    value, _delay, marker_dir = point
    _mark(marker_dir, value)
    raise ValueError(f"point {value} always fails")


def hang_once_point(point):
    """Hang "forever" the first time the flagged point runs; succeed on
    the retry (the hang marker doubles as the execution log)."""
    value, delay, marker_dir = point
    hang_flag = os.path.join(marker_dir, f"hang-{value}")
    _mark(marker_dir, value)
    if value == 0 and not os.path.exists(hang_flag):
        with open(hang_flag, "w", encoding="utf-8") as fh:
            fh.write("hung\n")
        time.sleep(120)
    if delay:
        time.sleep(delay)
    return {"value": value * 2}


def _make_normalize(marker_dir: str, delay: float):
    def normalize(params: dict) -> dict:
        values = [int(v) for v in params.get("values", [0, 1, 2, 3])]
        return {"values": values,
                "delay": float(params.get("delay", delay)),
                "marker_dir": params.get("marker_dir", marker_dir)}
    return normalize


def _build_points(params: dict) -> list:
    return [(v, params["delay"], params["marker_dir"])
            for v in params["values"]]


def _point_fields(params: dict, point) -> dict:
    value, delay, _marker = point
    # marker_dir is host-local scratch, not part of the result identity
    return {"design": "echo", "value": value, "delay": delay}


def _assemble(params: dict, results: list) -> dict:
    return {"values": [r["value"] for r in results]}


def register_test_kind(name: str, tmp_path, worker=echo_point,
                       delay: float = 0.0) -> JobKind:
    """Register (or replace) a throwaway kind writing markers under
    ``tmp_path/markers``."""
    marker_dir = str(tmp_path / "markers")
    kind = JobKind(
        name=name,
        normalize=_make_normalize(marker_dir, delay),
        build_points=_build_points,
        worker=worker,
        point_fields=_point_fields,
        assemble=_assemble,
    )
    return register_kind(kind, replace=True)


def unregister(name: str) -> None:
    _KINDS.pop(name, None)


def executions(tmp_path, value) -> int:
    """How many times point *value* actually ran."""
    path = tmp_path / "markers" / f"point-{value}"
    if not path.exists():
        return 0
    return len(path.read_text().splitlines())
