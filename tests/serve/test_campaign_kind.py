"""The ``campaign`` job kind: fault campaigns as a service.

Submitting a campaign must stream one ``triage`` event per experiment
(in point order, cache hits included — a resumed campaign replays its
triage log) and assemble the same vulnerability report the CLI path
produces, byte for byte, because both key the shared cache on
``campaign_point`` fields.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.parallel import ResultCache

from tests.serve.test_scheduler import make_scheduler, run, wait_terminal

BUDGET = 6
PARAMS = {"target": "rtlcache", "budget": BUDGET, "seed": 1}


@pytest.fixture
def camp_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "camp"))
    return tmp_path


def _submit(tmp_path, cache_dir="cache"):
    async def main():
        sched = make_scheduler(
            tmp_path, cache=ResultCache(root=tmp_path / cache_dir)
        )
        sched.start()
        try:
            job = sched.submit("alice", "campaign", dict(PARAMS))
            done = await wait_terminal(sched, job.id)
            assert done.state == "done"
            triage = [e for e in done.events if e.type == "triage"]
            return done.payload, triage, done.params
        finally:
            await sched.close()
    return run(main())


class TestCampaignKind:
    def test_streams_one_triage_event_per_experiment(self, camp_env):
        payload, triage, params = _submit(camp_env)
        assert len(triage) == BUDGET
        assert [e.data["point_index"] for e in triage] == list(range(BUDGET))
        for event, exp in zip(triage, payload["experiments"]):
            assert event.data["signal"] == exp["signal"]
            assert event.data["bit"] == exp["bit"]
            assert event.data["cycle"] == exp["cycle"]
            assert event.data["outcome"] == exp["outcome"]
        # normalize filled the per-target defaults into the params
        assert params["checkpoint_every"] > 0
        assert params["params"]["ecc"] is False

    def test_cache_hits_still_stream_triage(self, camp_env):
        first, triage_a, _ = _submit(camp_env)
        second, triage_b, _ = _submit(camp_env)   # same cache: all hits
        assert len(triage_b) == BUDGET
        assert [e.data for e in triage_a] == [e.data for e in triage_b]
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_matches_cli_report_bytes(self, camp_env):
        from repro.resilience.campaign import render_report, run_campaign

        payload, _, _ = _submit(camp_env)
        direct = run_campaign(
            "rtlcache", budget=BUDGET, seed=1,
            cache=ResultCache(root=camp_env / "cache"),
        )
        assert render_report(payload) == render_report(direct)

    def test_bad_campaign_params_rejected_at_submit(self, camp_env):
        async def main():
            sched = make_scheduler(camp_env)
            try:
                with pytest.raises(ValueError, match="target"):
                    sched.submit("alice", "campaign", {"budget": 4})
                with pytest.raises(ValueError, match="unknown"):
                    sched.submit("alice", "campaign",
                                 {"target": "rtlcache", "bogus": 1})
            finally:
                await sched.close()
        run(main())
