"""HTTP end-to-end tests for the serve layer.

The server runs in a background thread on its own event loop (port 0,
address handed back through an Event), and the tests drive it with the
blocking :class:`ServeClient` — the same split a real deployment has.
A final test exercises the installed CLI (``repro serve`` /
``repro submit``) as subprocesses over the real ``pmu_fig5`` kind.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import subprocess
import sys
import threading
import time

import pytest

from repro.parallel import ResultCache
from repro.serve import (
    Scheduler,
    ServeClient,
    ServeError,
    ServeServer,
    TenantQuota,
    TenantRegistry,
)

from tests.serve import kindutil

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture
def serve(tmp_path):
    """Factory: start a server thread with custom scheduler kwargs,
    yield connected clients, always shut down cleanly."""
    started: list[tuple[ServeClient, threading.Thread]] = []

    def boot(**kwargs) -> ServeClient:
        kwargs.setdefault("worker_jobs", 2)
        if "cache" not in kwargs:
            kwargs["cache"] = ResultCache(root=tmp_path / "cache")
        kwargs.setdefault("maintenance_interval", 3600.0)
        info: dict = {}
        ready = threading.Event()

        def run() -> None:
            async def main() -> None:
                server = ServeServer(Scheduler(**kwargs), port=0)
                await server.start()
                info["url"] = server.address
                ready.set()
                await server.wait_closed()

            try:
                asyncio.run(main())
            except BaseException as exc:  # surfaced via ready timeout
                info["error"] = exc
                ready.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(15), "server thread never came up"
        if "error" in info:
            raise AssertionError(f"server failed to start: {info['error']}")
        client = ServeClient(info["url"], timeout=60.0)
        client.wait_healthy(timeout=15.0)
        started.append((client, thread))
        return client

    yield boot
    for client, thread in started:
        try:
            client.shutdown()
        except (ServeError, OSError):
            pass
        thread.join(timeout=30)
        assert not thread.is_alive(), "server thread failed to shut down"


@pytest.fixture
def kind_name(request, tmp_path):
    name = f"t_{request.node.name[:40]}"
    kindutil.register_test_kind(name, tmp_path)
    yield name
    kindutil.unregister(name)


class TestProtocol:
    def test_health_kinds_stats(self, serve, kind_name):
        client = serve()
        assert client.healthy()
        kinds = client.kinds()
        assert "pmu_fig5" in kinds and kind_name in kinds
        stats = client.stats()
        assert stats["running"] == 0
        assert stats["dedup_hits"] == 0
        assert "cache" in stats

    def test_error_statuses(self, serve, tmp_path, request):
        slow = f"s_{request.node.name[:36]}"
        kindutil.register_test_kind(slow, tmp_path, delay=0.3)
        try:
            client = serve()
            with pytest.raises(ServeError) as err:
                client.submit("alice", "definitely_not_a_kind", {})
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.status("j999999")
            assert err.value.status == 404
            job = client.submit("alice", slow, {"values": [1, 2, 3, 4]})
            with pytest.raises(ServeError) as err:
                client.result(job["id"])   # still running
            assert err.value.status == 409
            client.cancel(job["id"])
            client.wait(job["id"], timeout=30)
        finally:
            kindutil.unregister(slow)

    def test_quota_maps_to_429(self, serve, kind_name):
        client = serve(
            tenants=TenantRegistry(TenantQuota(max_points_per_job=2)),
        )
        with pytest.raises(ServeError) as err:
            client.submit("alice", kind_name, {"values": [1, 2, 3]})
        assert err.value.status == 429
        assert "max_points_per_job" in str(err.value)

    def test_clean_shutdown(self, serve, kind_name):
        client = serve()
        job = client.submit("alice", kind_name, {"values": [1]})
        client.wait(job["id"], timeout=30)
        doc = client.shutdown()
        assert doc == {"shutting_down": True}
        deadline = time.monotonic() + 15
        while client.healthy():
            assert time.monotonic() < deadline, "server ignored shutdown"
            time.sleep(0.1)


class TestEndToEnd:
    def test_two_tenants_dedup_identical_payloads(
            self, serve, tmp_path, request):
        slow = f"d_{request.node.name[:36]}"
        kindutil.register_test_kind(slow, tmp_path, delay=0.2)
        try:
            client = serve(shard_points=2)
            a = client.submit("alice", slow, {"values": [3, 1, 4, 5, 9]})
            b = client.submit("bob", slow, {"values": [3, 1, 4, 5, 9]})
            assert b["dedup_of"] == a["id"]
            done_a = client.wait(a["id"], timeout=60)
            done_b = client.wait(b["id"], timeout=60)
            assert done_a["state"] == done_b["state"] == "done"
            res_a = client.result(a["id"])
            res_b = client.result(b["id"])
            assert res_a["payload"] == res_b["payload"]
            assert json.dumps(res_a["payload"], sort_keys=True) == \
                json.dumps(res_b["payload"], sort_keys=True)
            assert res_a["payload"] == {"values": [6, 2, 8, 10, 18]}
            stats = client.stats()
            # identical request: one cache-miss execution fleet-wide
            assert stats["dedup_hits"] == 1
            assert stats["executed_points"] == 5
            listing = client.jobs(tenant="bob")
            assert [j["id"] for j in listing] == [b["id"]]
        finally:
            kindutil.unregister(slow)

    def test_event_stream_over_http(self, serve, kind_name):
        client = serve()
        job = client.submit("alice", kind_name, {"values": [1, 2, 3]})
        events = list(client.events(job["id"]))
        types = [e["type"] for e in events]
        assert types[0] == "state" and "progress" in types
        assert events[-1]["type"] == "state"
        assert events[-1]["state"] == "done"
        assert [e["seq"] for e in events] == list(range(len(events)))
        # resume the stream from a cursor: no duplicates, same tail
        tail = list(client.events(job["id"], after=2))
        assert [e["seq"] for e in tail] == list(range(2, len(events)))


@pytest.mark.slow
class TestCLI:
    def test_repro_serve_and_submit_subprocesses(self, tmp_path):
        """The shipped commands end to end: `repro serve` in one
        process, two `repro submit --wait` tenants in others, real
        pmu_fig5 simulations, dedup asserted over /stats."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        port_file_args = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--jobs", "2",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        ]
        server = subprocess.Popen(
            port_file_args, env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # the CLI prints "repro serve listening on http://..." once up
            line = server.stderr.readline()
            match = re.search(r"listening on (http://\S+)", line)
            assert match, line
            url = match.group(1)

            params = json.dumps(
                {"n": 60, "intervals": [4000], "sleep_cycles": 8000}
            )
            submit = [
                sys.executable, "-m", "repro.cli", "submit",
                "--url", url, "--kind", "pmu_fig5",
                "--params-json", params, "--wait",
            ]
            out_a = subprocess.run(
                submit + ["--tenant", "alice"], env=env, cwd=str(tmp_path),
                capture_output=True, text=True, timeout=600,
            )
            assert out_a.returncode == 0, out_a.stderr
            out_b = subprocess.run(
                submit + ["--tenant", "bob"], env=env, cwd=str(tmp_path),
                capture_output=True, text=True, timeout=600,
            )
            assert out_b.returncode == 0, out_b.stderr
            res_a = json.loads(out_a.stdout)
            res_b = json.loads(out_b.stdout)
            assert res_a["payload"] == res_b["payload"]
            series = res_a["payload"]["series"]["4000"]
            assert series["total_committed"] > 0
            # sequential identical request: served from the point cache
            assert res_b["cache_hits"] == 1
            assert res_b["executed_points"] == 0

            client = ServeClient(url, timeout=30.0)
            client.shutdown()
            stdout, stderr = server.communicate(timeout=60)
            assert server.returncode == 0, stderr
            assert "clean shutdown" in stderr
        finally:
            if server.poll() is None:
                server.kill()
                server.communicate()
