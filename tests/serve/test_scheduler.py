"""Scheduler-level tests: dedup, quotas, preemption, bit-identity.

Each test drives the scheduler inside its own ``asyncio.run`` so no
event loop leaks between tests.  Workers live in ``kindutil`` (module
level, fork-picklable) and log one marker line per execution — the
"exactly one cache-miss execution" claims are asserted from those
logs, not from scheduler bookkeeping alone.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.parallel import ResultCache, run_points
from repro.serve import (
    QuotaExceeded,
    Scheduler,
    TenantQuota,
    TenantRegistry,
    UnknownKindError,
)

from tests.serve import kindutil


@pytest.fixture
def kind_name(request, tmp_path):
    """A per-test registered echo kind (unregistered afterwards)."""
    name = f"t_{request.node.name[:40]}"
    kindutil.register_test_kind(name, tmp_path)
    yield name
    kindutil.unregister(name)


def make_scheduler(tmp_path, **kwargs) -> Scheduler:
    kwargs.setdefault("worker_jobs", 2)
    if "cache" not in kwargs:
        # constructed lazily: ResultCache reaps stale tmp files at
        # construction, which would race tests that pre-stage orphans
        kwargs["cache"] = ResultCache(root=tmp_path / "cache")
    kwargs.setdefault("maintenance_interval", 3600.0)
    return Scheduler(**kwargs)


async def wait_terminal(sched: Scheduler, job_id: str,
                        timeout: float = 60.0):
    job = sched.get(job_id)
    deadline = time.monotonic() + timeout
    cursor = 0
    while not job.terminal:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"job {job_id} still {job.state} after {timeout}s"
            )
        events = await asyncio.wait_for(job.next_events(cursor), timeout=5.0)
        cursor += len(events)
    return job


def run(coro):
    return asyncio.run(coro)


class TestBasics:
    def test_job_runs_and_assembles(self, tmp_path, kind_name):
        async def main():
            sched = make_scheduler(tmp_path)
            sched.start()
            try:
                job = sched.submit("alice", kind_name,
                                   {"values": [1, 2, 3]})
                done = await wait_terminal(sched, job.id)
                assert done.state == "done"
                assert done.payload == {"values": [2, 4, 6]}
                types = [e.type for e in done.events]
                assert types[0] == "state" and "progress" in types
                assert done.describe()["done_points"] == 3
            finally:
                await sched.close()
        run(main())

    def test_unknown_kind_is_value_error(self, tmp_path):
        async def main():
            sched = make_scheduler(tmp_path)
            with pytest.raises(UnknownKindError):
                sched.submit("alice", "no_such_kind", {})
            await sched.close()
        run(main())

    def test_bit_identical_vs_direct_run_points(self, tmp_path, kind_name):
        """The serve path must produce byte-for-byte the payload a
        direct run_points call over the same points produces."""
        from repro.serve import get_kind

        kind = get_kind(kind_name)
        params = kind.normalize({"values": [5, 6, 7, 8, 9]})
        points = kind.build_points(params)
        direct = kind.assemble(params, run_points(points, kind.worker))

        async def main():
            sched = make_scheduler(tmp_path, shard_points=2)
            sched.start()
            try:
                job = sched.submit("alice", kind_name,
                                   {"values": [5, 6, 7, 8, 9]})
                done = await wait_terminal(sched, job.id)
                assert done.state == "done"
                return done.payload
            finally:
                await sched.close()

        served = run(main())
        import json

        assert served == direct
        assert json.dumps(served, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_failed_points_fail_the_job(self, tmp_path, request):
        name = f"f_{request.node.name[:40]}"
        kindutil.register_test_kind(name, tmp_path,
                                    worker=kindutil.failing_point)
        try:
            async def main():
                sched = make_scheduler(tmp_path, max_attempts=2)
                sched.start()
                try:
                    job = sched.submit("alice", name, {"values": [1]})
                    done = await wait_terminal(sched, job.id)
                    assert done.state == "failed"
                    assert "retry budget" in (done.error or "")
                    assert any(e.type == "point_failures"
                               for e in done.events)
                finally:
                    await sched.close()
            run(main())
        finally:
            kindutil.unregister(name)


class TestDedup:
    def test_identical_concurrent_submissions_share_one_execution(
            self, tmp_path, request):
        name = f"d_{request.node.name[:36]}"
        kindutil.register_test_kind(name, tmp_path, delay=0.2)
        try:
            async def main():
                sched = make_scheduler(tmp_path, shard_points=2)
                sched.start()
                try:
                    a = sched.submit("alice", name, {"values": [1, 2, 3, 4]})
                    # concurrent identical submission from another tenant
                    b = sched.submit("bob", name, {"values": [1, 2, 3, 4]})
                    assert b.dedup_of == a.id
                    assert sched.dedup_hits == 1
                    done_a = await wait_terminal(sched, a.id)
                    done_b = await wait_terminal(sched, b.id)
                    assert done_a.state == done_b.state == "done"
                    assert done_a.payload == done_b.payload
                    return sched.executed_points
                finally:
                    await sched.close()

            executed = run(main())
            assert executed == 4
            # the markers are ground truth: each point simulated once
            for v in (1, 2, 3, 4):
                assert kindutil.executions(tmp_path, v) == 1
        finally:
            kindutil.unregister(name)

    def test_sequential_resubmission_is_pure_cache_reads(
            self, tmp_path, kind_name):
        async def main():
            sched = make_scheduler(tmp_path)
            sched.start()
            try:
                a = sched.submit("alice", kind_name, {"values": [1, 2]})
                done_a = await wait_terminal(sched, a.id)
                b = sched.submit("bob", kind_name, {"values": [1, 2]})
                done_b = await wait_terminal(sched, b.id)
                assert done_a.payload == done_b.payload
                assert done_b.cache_hits == 2
                assert done_b.executed_points == 0
            finally:
                await sched.close()
        run(main())
        for v in (1, 2):
            assert kindutil.executions(tmp_path, v) == 1

    def test_follower_promoted_when_primary_fails(self, tmp_path, request):
        name = f"p_{request.node.name[:36]}"
        kindutil.register_test_kind(name, tmp_path,
                                    worker=kindutil.failing_point)
        try:
            async def main():
                sched = make_scheduler(tmp_path, max_attempts=1)
                sched.start()
                try:
                    a = sched.submit("alice", name, {"values": [1]})
                    b = sched.submit("bob", name, {"values": [1]})
                    assert b.dedup_of == a.id
                    done_a = await wait_terminal(sched, a.id)
                    # the follower must not inherit the failure blindly:
                    # it is promoted, runs, and fails on its own evidence
                    done_b = await wait_terminal(sched, b.id)
                    assert done_a.state == "failed"
                    assert done_b.state == "failed"
                    assert done_b.dedup_of is None
                finally:
                    await sched.close()
            run(main())
            assert kindutil.executions(tmp_path, 1) == 2
        finally:
            kindutil.unregister(name)


class TestQuotas:
    def test_queued_jobs_quota_rejects(self, tmp_path, kind_name):
        registry = TenantRegistry(TenantQuota(max_queued=1))

        async def main():
            sched = make_scheduler(tmp_path, tenants=registry)
            # scheduler not started: jobs stay queued
            sched.submit("alice", kind_name, {"values": [1]})
            with pytest.raises(QuotaExceeded):
                sched.submit("alice", kind_name, {"values": [2]})
            # quotas are per tenant: bob is unaffected
            sched.submit("bob", kind_name, {"values": [1]})
            await sched.close()
        run(main())

    def test_point_and_priority_quotas(self, tmp_path, kind_name):
        registry = TenantRegistry(
            TenantQuota(max_points_per_job=2, max_priority=1)
        )

        async def main():
            sched = make_scheduler(tmp_path, tenants=registry)
            with pytest.raises(QuotaExceeded):
                sched.submit("alice", kind_name, {"values": [1, 2, 3]})
            with pytest.raises(QuotaExceeded):
                sched.submit("alice", kind_name, {"values": [1]},
                             priority=5)
            sched.submit("alice", kind_name, {"values": [1, 2]},
                         priority=1)
            await sched.close()
        run(main())

    def test_empty_tenant_rejected(self, tmp_path, kind_name):
        async def main():
            sched = make_scheduler(tmp_path)
            with pytest.raises(QuotaExceeded):
                sched.submit("", kind_name, {"values": [1]})
            await sched.close()
        run(main())


class TestPreemption:
    def test_higher_priority_preempts_and_low_job_resumes(
            self, tmp_path, request):
        slow = f"s_{request.node.name[:36]}"
        kindutil.register_test_kind(slow, tmp_path, delay=0.3)
        try:
            async def main():
                sched = make_scheduler(
                    tmp_path, worker_jobs=1, fleet_slots=1, shard_points=1,
                )
                sched.start()
                try:
                    low = sched.submit("alice", slow,
                                       {"values": [1, 2, 3, 4]})
                    # let the low-priority job actually start running
                    while low.done_points == 0:
                        await asyncio.sleep(0.02)
                    high = sched.submit("bob", slow,
                                        {"values": [10], "delay": 0.05},
                                        priority=5)
                    done_high = await wait_terminal(sched, high.id)
                    done_low = await wait_terminal(sched, low.id)
                    assert done_high.state == "done"
                    assert done_low.state == "done"
                    assert done_low.payload == {"values": [2, 4, 6, 8]}
                    assert done_low.preemptions >= 1
                    # the high-priority job finished first
                    assert done_high.finished_at <= done_low.finished_at
                    # preemption kept completed points: no re-execution
                    for v in (1, 2, 3, 4):
                        assert kindutil.executions(tmp_path, v) == 1
                    assert any(
                        e.type == "state" and e.data.get("state") == "preempted"
                        for e in done_low.events
                    )
                finally:
                    await sched.close()
            run(main())
        finally:
            kindutil.unregister(slow)

    def test_explicit_preempt_requeues(self, tmp_path, request):
        slow = f"e_{request.node.name[:36]}"
        kindutil.register_test_kind(slow, tmp_path, delay=0.25)
        try:
            async def main():
                sched = make_scheduler(
                    tmp_path, worker_jobs=1, fleet_slots=1, shard_points=1,
                )
                sched.start()
                try:
                    job = sched.submit("alice", slow, {"values": [1, 2, 3]})
                    while job.done_points == 0:
                        await asyncio.sleep(0.02)
                    sched.preempt(job.id)
                    done = await wait_terminal(sched, job.id)
                    assert done.state == "done"
                    assert done.preemptions == 1
                    assert done.payload == {"values": [2, 4, 6]}
                finally:
                    await sched.close()
            run(main())
        finally:
            kindutil.unregister(slow)


class TestCancelAndHang:
    def test_cancel_queued_job(self, tmp_path, kind_name):
        async def main():
            sched = make_scheduler(tmp_path)
            job = sched.submit("alice", kind_name, {"values": [1]})
            sched.cancel(job.id)
            assert job.state == "cancelled"
            await sched.close()
        run(main())

    def test_cancel_running_job_stops_at_shard_boundary(
            self, tmp_path, request):
        slow = f"c_{request.node.name[:36]}"
        kindutil.register_test_kind(slow, tmp_path, delay=0.25)
        try:
            async def main():
                sched = make_scheduler(
                    tmp_path, worker_jobs=1, shard_points=1,
                )
                sched.start()
                try:
                    job = sched.submit("alice", slow,
                                       {"values": [1, 2, 3, 4, 5]})
                    while job.done_points == 0:
                        await asyncio.sleep(0.02)
                    sched.cancel(job.id)
                    done = await wait_terminal(sched, job.id)
                    assert done.state == "cancelled"
                    assert done.done_points < 5
                finally:
                    await sched.close()
            run(main())
        finally:
            kindutil.unregister(slow)

    def test_timeout_kill_emits_hang_event_and_job_completes(
            self, tmp_path, request):
        """A hung worker inside a serve job is killed by point_timeout,
        resumes via retry, and the job streams a structured hang event
        — the PR 3/4 plumbing surfaced per job."""
        name = f"h_{request.node.name[:36]}"
        kindutil.register_test_kind(name, tmp_path,
                                    worker=kindutil.hang_once_point)
        try:
            async def main():
                sched = make_scheduler(
                    tmp_path, worker_jobs=2, point_timeout=0.5,
                    max_attempts=3,
                    checkpoint_root=str(tmp_path / "ckpt"),
                )
                sched.start()
                try:
                    job = sched.submit("alice", name,
                                       {"values": [0, 1, 2, 3]})
                    done = await wait_terminal(sched, job.id)
                    assert done.state == "done"
                    assert done.payload == {"values": [0, 2, 4, 6]}
                    hang = [e for e in done.events if e.type == "hang"]
                    assert hang and hang[0].data["timeout_kills"] >= 1
                    assert done.run_stats.timeout_kills >= 1
                finally:
                    await sched.close()
            run(main())
        finally:
            kindutil.unregister(name)


class TestMaintenance:
    def test_maintenance_reaps_stale_cache_tmp(self, tmp_path, kind_name):
        import os

        cache_root = tmp_path / "cache"
        cache = ResultCache(root=cache_root, tmp_max_age_s=60.0)
        stale = cache_root / "orphan.tmp"
        cache_root.mkdir(parents=True, exist_ok=True)
        stale.write_text("{}")
        old = time.time() - 3600
        os.utime(stale, (old, old))

        async def main():
            sched = make_scheduler(tmp_path, cache=cache,
                                   maintenance_interval=0.05)
            sched.start()
            for _ in range(100):
                if not stale.exists():
                    break
                await asyncio.sleep(0.05)
            await sched.close()
            assert not stale.exists()
            assert sched.reaped_tmp >= 1
        run(main())
