"""Parallel sweep engine wired into the DSE harness.

The load-bearing guarantee: a ``jobs=N`` sweep (and a cache-served
sweep) is *bit-identical* to the serial one — same tick counts, same
normalised floats — so figures regenerated in parallel are the paper's
figures, just sooner.
"""

import pytest

import repro.parallel.cache as cache_mod
from repro.dse import render_dse, run_dse
from repro.dse.sweep import _dse_point
from repro.parallel import ResultCache

# Shrunk grid: 5 simulations per sweep, small enough for the test tier.
SWEEP = dict(inflight_sweep=(1, 16), memories=("DDR4-1ch", "HBM"), scale=0.1)


@pytest.fixture(scope="module")
def serial_result():
    return run_dse("sanity3", 1, jobs=1, **SWEEP)


class TestDeterminism:
    def test_parallel_bit_identical(self, serial_result):
        parallel = run_dse("sanity3", 1, jobs=4, **SWEEP)
        assert parallel.normalized == serial_result.normalized
        assert parallel.ideal_ticks == serial_result.ideal_ticks

    def test_worker_matches_inline_measurement(self):
        from repro.dse.sweep import measure_exec_ticks

        point = ("sanity3", 1, "HBM", 16, 0.1)
        assert _dse_point(point)["ticks"] == measure_exec_ticks(*point)


class TestCacheIntegration:
    def test_second_run_is_all_hits_and_identical(self, tmp_path, serial_result):
        cache = ResultCache(tmp_path)
        cold = run_dse("sanity3", 1, jobs=1, cache=cache, **SWEEP)
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.points == 5
        warm = run_dse("sanity3", 1, jobs=1, cache=cache, **SWEEP)
        assert warm.cache_hits == 5
        assert warm.cache_misses == 0
        assert warm.normalized == cold.normalized == serial_result.normalized
        # aggregate point time is preserved from the cold measurements
        assert warm.point_seconds > 0
        assert warm.wall_seconds < cold.wall_seconds

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        tiny = dict(inflight_sweep=(8,), memories=("HBM",), scale=0.1)
        run_dse("sanity3", 1, cache=cache, **tiny)
        monkeypatch.setattr(cache_mod, "code_version", lambda: "0" * 16)
        stale = run_dse("sanity3", 1, cache=cache, **tiny)
        assert stale.cache_hits == 0
        assert stale.cache_misses == 2

    def test_parameter_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        tiny = dict(inflight_sweep=(8,), memories=("HBM",), scale=0.1)
        run_dse("sanity3", 1, cache=cache, **tiny)
        other = run_dse("sanity3", 1, cache=cache,
                        inflight_sweep=(4,), memories=("HBM",), scale=0.1)
        # the ideal baseline (keyed on max inflight=sweep max) differs too
        assert other.cache_hits == 0


class TestWallTimeReporting:
    def test_both_times_reported(self, serial_result):
        assert serial_result.wall_seconds > 0
        assert serial_result.point_seconds > 0
        # serial: aggregate point time is within elapsed time
        assert serial_result.point_seconds <= serial_result.wall_seconds * 1.05
        assert serial_result.speedup > 0

    def test_rendered_footer_shows_speedup(self, serial_result):
        text = render_dse(serial_result, inflight_sweep=SWEEP["inflight_sweep"])
        assert "simulated" in text and "elapsed" in text
        assert f"jobs={serial_result.jobs}" in text
