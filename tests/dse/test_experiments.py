"""Experiment harness: tiny-configuration runs of every paper experiment
(the full-size regenerations live in benchmarks/)."""

import pytest

from repro.dse import (
    render_dse,
    render_fig5,
    render_table2,
    render_table3,
    run_dse,
    run_fig5,
    run_standalone,
)
from repro.dse.pmu_experiment import Table2Row, run_table2
from repro.dse.sweep import measure_exec_ticks


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(n_sort=60, interval_cycles=4000, sleep_cycles=8000)

    def test_produces_windows(self, result):
        assert len(result.windows) >= 5

    def test_pmu_and_gem5_ipc_agree_in_steady_windows(self, result):
        errs = [
            abs(w.pmu_ipc - w.gem5_ipc)
            for w in result.windows
            if w.gem5_commits > 500
        ]
        assert errs, "no steady windows sampled"
        errs.sort()
        assert errs[len(errs) // 2] < 0.05

    def test_sleep_phases_visible_as_zero_ipc(self, result):
        assert any(w.gem5_ipc < 0.01 for w in result.windows)

    def test_lost_events_small_but_nonzero(self, result):
        # the PMU misses a few events (enable latency, clear windows) —
        # the exact interaction the paper quantifies with gem5+rtl
        assert 0 <= result.lost_events() < 0.05 * result.total_committed

    def test_render(self, result):
        text = render_fig5(result, max_rows=5)
        assert "PMU IPC" in text and "gem5 IPC" in text


class TestDSE:
    def test_tiny_sweep_shapes(self):
        result = run_dse(
            "sanity3", 1, inflight_sweep=(1, 64), memories=("DDR4-1ch", "HBM"),
            scale=0.15,
        )
        hbm = result.normalized["HBM"]
        ddr = result.normalized["DDR4-1ch"]
        # more in-flight always helps; HBM >= DDR4-1ch
        assert hbm[64] > hbm[1]
        assert hbm[64] > ddr[64]
        assert 0 < hbm[64] <= 1.05

    def test_render(self):
        result = run_dse("googlenet", 1, inflight_sweep=(4,),
                         memories=("HBM",), scale=0.1)
        text = render_dse(result, inflight_sweep=(4,))
        assert "Fig. 6" in text and "HBM" in text

    def test_measure_returns_positive_ticks(self):
        ticks = measure_exec_ticks("sanity3", 1, "ideal", 64, scale=0.1)
        assert ticks > 0


class TestTable3:
    def test_standalone_runs(self):
        elapsed = run_standalone("sanity3", scale=0.1)
        assert elapsed > 0

    def test_render(self):
        from repro.dse.sweep import Table3Result

        rows = [Table3Result("sanity3", 1.0, 2.5, 3.0)]
        text = render_table3(rows)
        assert "2.50" in text and "3.00" in text
        assert rows[0].perfect_overhead == 2.5
        assert rows[0].ddr4_overhead == 3.0


class TestTable2:
    def test_tiny_overhead_run(self):
        rows = run_table2(sizes=(25,))
        assert len(rows) == 1
        row = rows[0]
        # adding the PMU cannot speed the simulation up (allow noise)
        assert row.pmu_overhead > 0.8
        # waveform tracing costs more than the bare PMU
        assert row.t_gem5_pmu_waveform > row.t_gem5_pmu * 0.9

    def test_render(self):
        rows = [Table2Row(100, 1.0, 1.2, 4.0)]
        text = render_table2(rows)
        assert "gem5+PMU" in text and "waveform" in text
        assert "1.20" in text and "4.00" in text
