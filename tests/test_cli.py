"""CLI: argument handling and the compile command end-to-end."""

import pathlib

import pytest

from repro.cli import _parse_params, build_parser, main

PMU_V = pathlib.Path("src/repro/models/pmu/pmu.v")
BITONIC_VHDL = pathlib.Path("src/repro/models/bitonic/bitonic.vhdl")


class TestParamParsing:
    def test_basic(self):
        assert _parse_params(["W=8", "N=0x10"]) == {"W": 8, "N": 16}

    def test_missing_equals_rejected(self):
        with pytest.raises(SystemExit):
            _parse_params(["W8"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("compile", "fig5", "table2", "dse", "table3"):
            args = parser.parse_args(
                [cmd, "x.v"] if cmd == "compile" else [cmd]
            )
            assert args.command == cmd


class TestCompileCommand:
    def test_compile_verilog(self, capsys):
        rc = main(["compile", str(PMU_V), "--param", "NCOUNTERS=8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top module : pmu" in out
        assert "Verilator-equivalent" in out

    def test_compile_vhdl(self, capsys):
        rc = main(["compile", str(BITONIC_VHDL), "--top", "bitonic8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top module : bitonic8" in out
        assert "GHDL-equivalent" in out

    def test_free_run_with_vcd(self, tmp_path, capsys):
        vcd = tmp_path / "pmu.vcd"
        rc = main([
            "compile", str(PMU_V), "--param", "NCOUNTERS=4",
            "--ticks", "10", "--vcd", str(vcd),
        ])
        assert rc == 0
        assert vcd.exists()
        assert "$enddefinitions" in vcd.read_text()
        assert "free-ran 10 cycles" in capsys.readouterr().out

    def test_show_code(self, capsys):
        rc = main(["compile", str(PMU_V), "--show-code"])
        assert rc == 0
        assert "def _sync" in capsys.readouterr().out


class TestExperimentCommands:
    def test_tiny_dse(self, capsys):
        rc = main([
            "dse", "--workload", "sanity3", "--nvdla", "1",
            "--inflight", "8", "--memories", "HBM", "--scale", "0.1",
            "--no-cache",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HBM" in out and "normalized" in out
        assert "jobs=1" in out

    def test_tiny_dse_cached(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = [
            "dse", "--workload", "sanity3", "--nvdla", "1",
            "--inflight", "8", "--memories", "HBM", "--scale", "0.1",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hit(s), 2 miss(es)" in first   # ideal + HBM@8
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es)" in second

    def test_parallel_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["dse", "--jobs", "4", "--no-cache"])
        assert args.jobs == 4 and args.no_cache
        args = parser.parse_args(["fig5", "--intervals", "4000,8000",
                                  "--jobs", "2"])
        assert args.intervals == "4000,8000" and args.jobs == 2
        args = parser.parse_args(["table3", "--jobs", "2"])
        assert args.jobs == 2


class TestTracingOptions:
    def test_trace_flags_parse_on_every_experiment_command(self):
        parser = build_parser()
        for cmd in ("fig5", "table2", "dse", "table3"):
            args = parser.parse_args([
                cmd, "--debug-flags", "Cache,DRAM",
                "--trace-out", "t.json",
                "--trace-start", "1000", "--trace-end", "2000",
            ])
            assert args.debug_flags == "Cache,DRAM"
            assert args.trace_out == "t.json"
            assert args.trace_start == 1000 and args.trace_end == 2000

    def test_flag_listing_exits_before_running(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig5", "--debug-flags", "?"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in ("Cache", "Cache.MSHR", "DRAM", "RTL", "Packet"):
            assert name in out

    def test_trace_out_produces_loadable_json(self, tmp_path, capsys):
        import json

        from repro.trace.flags import (
            reset_flags,
            set_chrome_tracer,
            set_default_profiler,
        )

        path = tmp_path / "trace.json"
        try:
            rc = main([
                "dse", "--workload", "sanity3", "--nvdla", "1",
                "--inflight", "8", "--memories", "HBM", "--scale", "0.05",
                "--no-cache", "--debug-flags", "Cache",
                "--trace-out", str(path),
            ])
        finally:
            reset_flags()
            set_chrome_tracer(None)
            set_default_profiler(None)
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestInjectErrors:
    """Malformed --inject specs die with a one-line diagnostic, exit 2."""

    def test_malformed_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig5", "--inject", "rtl-flip@20000:nosignal["])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1          # exactly one line
        assert "bad fault spec" in err
        assert "nosignal[" in err            # names the offending spec

    def test_unknown_kind_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table2", "--inject", "no-such-kind@5"])
        assert exc.value.code == 2
        assert "no-such-kind" in capsys.readouterr().err


class TestCampaignCommand:
    def test_parser_registered(self):
        args = build_parser().parse_args(
            ["campaign", "rtlcache", "--budget", "8", "--seed", "2",
             "--jobs", "2", "--param", "idxw=5", "--no-cache"]
        )
        assert args.command == "campaign"
        assert args.target == "rtlcache" and args.budget == 8
        assert args.param == ["idxw=5"] and args.no_cache

    def test_list_targets(self, capsys):
        assert main(["campaign", "--list-targets"]) == 0
        out = capsys.readouterr().out
        for name in ("pmu", "rtlcache", "rtlcache_ecc"):
            assert name in out

    def test_missing_target_exits_2(self, capsys):
        assert main(["campaign"]) == 2
        assert "TARGET is required" in capsys.readouterr().err

    def test_unknown_target_exits_2(self, capsys):
        assert main(["campaign", "bogus"]) == 2
        assert "unknown campaign target" in capsys.readouterr().err

    def test_bad_param_exits_2(self, capsys):
        assert main(["campaign", "rtlcache", "--param", "nope=1"]) == 2
        assert "unknown parameter" in capsys.readouterr().err
        assert main(["campaign", "rtlcache", "--param", "broken"]) == 2
        assert "expected NAME=VALUE" in capsys.readouterr().err

    def test_end_to_end_report(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "camp"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = tmp_path / "report.json"
        rc = main(["campaign", "rtlcache", "--budget", "6", "--seed", "1",
                   "--report", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "outcomes:" in out and "AVF:" in out
        doc = json.loads(report.read_text())
        assert doc["campaign"]["target"] == "rtlcache"
        assert sum(doc["histogram"].values()) == 6
