"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.soc.simobject import Simulation


@pytest.fixture
def sim() -> Simulation:
    return Simulation()


@pytest.fixture
def small_soc():
    """A 1-core SoC with a small DDR4 memory — cheap to build and run."""
    from repro.soc.system import SoC, SoCConfig

    return SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
