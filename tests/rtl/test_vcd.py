"""VCD writer: header format, change-only emission, runtime toggling."""

import io

from repro.rtl import RTLModule, RTLSimulator, VCDWriter
from repro.rtl.vcd import _identifier


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = {_identifier(i) for i in range(2000)}
        assert len(ids) == 2000
        assert all(all(33 <= ord(c) <= 126 for c in s) for s in ids)

    def test_compact(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1
        assert len(_identifier(94)) == 2


def _module():
    m = RTLModule("dut")
    m.add_signal("clk", 1, is_input=True)
    m.add_signal("a", 1, is_input=True)
    m.add_signal("bus", 8)
    return m


class TestHeader:
    def test_header_contents(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.write_header()
        text = w.stream.getvalue()
        assert "$timescale 1ps $end" in text
        assert "$scope module dut $end" in text
        assert "$var wire 1" in text and "$var wire 8" in text
        assert "$enddefinitions $end" in text

    def test_header_written_once(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.write_header()
        size = len(w.stream.getvalue())
        w.write_header()
        assert len(w.stream.getvalue()) == size


class TestSampling:
    def test_only_changes_emitted(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(1, [0, 1, 0x42])
        first = w.stream.getvalue()
        w.sample(2, [0, 1, 0x42])  # identical: nothing new
        assert w.stream.getvalue() == first
        w.sample(3, [0, 0, 0x42])
        assert "#3" in w.stream.getvalue()

    def test_multibit_binary_format(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(1, [0, 0, 0b1010])
        assert "b1010 " in w.stream.getvalue()

    def test_disable_suppresses_output(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO(), enabled=False)
        w.sample(1, [1, 1, 1])
        assert w.stream.getvalue() == ""

    def test_reenable_forces_full_dump(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(1, [0, 1, 5])
        w.disable()
        w.sample(2, [1, 0, 9])
        size = len(w.stream.getvalue())
        w.enable()
        w.sample(3, [1, 0, 9])
        text = w.stream.getvalue()
        assert len(text) > size
        assert "#3" in text


def _parse_vcd(text):
    """Minimal VCD reader: declared var widths, the $dumpvars initial
    block, and every value-change line that follows.

    Returns ``(widths, initial, changes)`` where *widths* maps vcd id ->
    declared width, *initial* maps id -> value string inside the
    ``$dumpvars … $end`` block, and *changes* is a list of ``(id,
    value_str)`` for emissions after it.
    """
    widths: dict[str, int] = {}
    initial: dict[str, str] = {}
    changes: list[tuple[str, str]] = []
    in_dumpvars = False
    seen_dumpvars = False
    past_defs = False
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("$var"):
            # $var wire <width> <id> <name> $end
            parts = line.split()
            widths[parts[3]] = int(parts[2])
            continue
        if line.startswith("$enddefinitions"):
            past_defs = True
            continue
        if line == "$dumpvars":
            assert past_defs, "$dumpvars before $enddefinitions"
            assert not seen_dumpvars, "duplicate $dumpvars block"
            in_dumpvars = seen_dumpvars = True
            continue
        if line == "$end" and in_dumpvars:
            in_dumpvars = False
            continue
        if line.startswith("$") or not past_defs:
            continue
        if line.startswith("b"):
            value, _, vid = line[1:].partition(" ")
        else:
            value, vid = line[0], line[1:]
        if in_dumpvars:
            initial[vid] = value
        else:
            changes.append((vid, value))
    assert seen_dumpvars, "no $dumpvars block emitted"
    return widths, initial, changes


class TestDumpvarsBlock:
    def test_first_sample_emits_initial_values_for_all_signals(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(0, [0, 1, 0x42])
        widths, initial, changes = _parse_vcd(w.stream.getvalue())
        assert set(initial) == set(widths)  # every declared var dumped
        assert changes == []

    def test_dumpvars_emitted_once(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(0, [0, 0, 1])
        w.sample(1, [1, 0, 2])
        w.disable()
        w.enable()            # full re-dump, but no second $dumpvars
        w.sample(2, [1, 0, 2])
        text = w.stream.getvalue()
        assert text.count("$dumpvars") == 1
        _parse_vcd(text)  # parser enforces single block + $end pairing

    def test_values_confined_to_declared_width(self):
        """Negative and over-width values must be masked, never emitted
        as out-of-spec lines like ``b-101 !``."""
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(0, [0, 1, -5])       # negative on the 8-bit bus
        w.sample(1, [0, 1, 0x1FF])    # over-width on the 8-bit bus
        w.sample(2, [3, -1, 0])       # over-width/negative 1-bit values
        text = w.stream.getvalue()
        assert "-" not in text.split("$enddefinitions")[1]
        widths, initial, changes = _parse_vcd(text)
        for vid, value in list(initial.items()) + changes:
            assert set(value) <= {"0", "1"}, f"bad value {value!r}"
            assert len(value) <= widths[vid]

    def test_negative_value_emitted_as_twos_complement(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(0, [0, 0, -5])
        _, initial, _ = _parse_vcd(w.stream.getvalue())
        bus_id = [vid for vid, width in _parse_vcd(
            w.stream.getvalue())[0].items() if width == 8][0]
        assert initial[bus_id] == "11111011"  # -5 & 0xFF

    def test_masked_value_does_not_retrigger_change_emission(self):
        m = _module()
        w = VCDWriter(m, stream=io.StringIO())
        w.sample(0, [0, 0, 0xFB])
        size = len(w.stream.getvalue())
        w.sample(1, [0, 0, -5])  # same bits after masking: no change
        assert len(w.stream.getvalue()) == size

    def test_gtkwave_style_roundtrip(self):
        """Drive a real simulation and re-read the produced file."""
        m = RTLModule("m")
        clk = m.add_signal("clk", 1, is_input=True)
        c = m.add_signal("c", 4)

        def p(v, mm, nba, nbm):
            nba.append((c.index, (v[c.index] + 1) & 0xF))

        m.add_sync(p, clk, reads={c.index}, writes={c.index})
        w = VCDWriter(m, stream=io.StringIO())
        sim = RTLSimulator(m, trace=w)
        sim.tick(5)
        widths, initial, changes = _parse_vcd(w.stream.getvalue())
        assert set(initial) == set(widths)
        assert changes  # the counter kept changing after the first dump
        for vid, value in changes:
            assert len(value) <= widths[vid]


class TestIntegration:
    def test_simulator_produces_waveform(self):
        m = RTLModule("m")
        clk = m.add_signal("clk", 1, is_input=True)
        c = m.add_signal("c", 4)

        def p(v, mm, nba, nbm):
            nba.append((c.index, (v[c.index] + 1) & 0xF))

        m.add_sync(p, clk, reads={c.index}, writes={c.index})
        w = VCDWriter(m, stream=io.StringIO())
        sim = RTLSimulator(m, trace=w)
        sim.tick(4)
        text = w.stream.getvalue()
        assert text.count("#") >= 4
        assert "b1 " in text or "b10 " in text

    def test_runtime_toggle_through_shared_library_api(self):
        from repro.bridge import RTLSharedLibrary
        from repro.bridge.structs import Field, StructSpec

        m = RTLModule("m")
        m.add_signal("clk", 1, is_input=True)
        m.add_signal("x", 1, is_input=True)

        class Lib(RTLSharedLibrary):
            input_spec = StructSpec("i", [Field("x", 1)])
            output_spec = StructSpec("o", [Field("x", 1)])

            def drive(self, inputs):
                self.sim.poke("x", inputs["x"])

            def collect(self):
                return {"x": self.sim.peek("x")}

        lib = Lib(m, trace_stream=io.StringIO(), trace_enabled=True)
        lib.reset()
        lib.tick(lib.input_spec.pack(x=1))
        assert lib.tracing
        lib.disable_waveforms()
        size = len(lib.sim.trace.stream.getvalue())
        lib.tick(lib.input_spec.pack(x=0))
        assert len(lib.sim.trace.stream.getvalue()) == size
        lib.enable_waveforms()
        lib.tick(lib.input_spec.pack(x=1))
        assert len(lib.sim.trace.stream.getvalue()) > size
