"""RTLWorkerPool: fork workers, FIFO tickets, fault-plan hygiene."""

import os

import pytest

from repro.bridge.shared_library import SharedLibrary
from repro.bridge.structs import Field, StructSpec
from repro.resilience import FaultPlan, control
from repro.rtl.parallel.pool import (
    LibraryHost,
    PooledLibrary,
    RTLWorkerError,
    RTLWorkerPool,
    pool_available,
)

pytestmark = pytest.mark.skipif(
    not pool_available(), reason="platform lacks the fork start method"
)


class _ProbeHost:
    """Worker-side probe: counters, echoes, errors, fault-plan state."""

    def __init__(self) -> None:
        self.count = 0

    def handle(self, op, *args):
        if op == "echo":
            return args
        if op == "count":
            self.count += 1
            return self.count
        if op == "pid":
            return os.getpid()
        if op == "plan":
            return control.pending_plan() is not None
        if op == "boom":
            raise ValueError("kaboom")
        raise ValueError(f"unknown op {op!r}")


def _make_pool(jobs=1, hosts=1, **kwargs):
    pool = RTLWorkerPool(jobs, **kwargs)
    hids = [pool.register(_ProbeHost()) for _ in range(hosts)]
    pool.start()
    return pool, hids


class TestPoolMechanics:
    def test_echo_roundtrip(self):
        with RTLWorkerPool(1) as pool:
            hid = pool.register(_ProbeHost())
            pool.start()
            assert pool.call(hid, "echo", 1, "two") == (1, "two")

    def test_worker_is_a_separate_process_with_persistent_state(self):
        pool, (hid,) = _make_pool()
        try:
            assert pool.call(hid, "pid") != os.getpid()
            assert [pool.call(hid, "count") for _ in range(3)] == [1, 2, 3]
        finally:
            pool.close()

    def test_tickets_resolve_out_of_submission_order(self):
        # Resolving the later ticket first must drain (and store) the
        # earlier reply, not skip it — per-worker FIFO discipline.
        pool, (hid,) = _make_pool()
        try:
            t1 = pool.submit(hid, "count")
            t2 = pool.submit(hid, "count")
            assert t2.result() == 2
            assert t1.result() == 1
        finally:
            pool.close()

    def test_hosts_spread_round_robin_and_keep_private_state(self):
        pool, hids = _make_pool(jobs=2, hosts=3)
        try:
            assert [pool.worker_of(h) for h in hids] == [0, 1, 0]
            pool.call(hids[0], "count")
            pool.call(hids[0], "count")
            assert pool.call(hids[1], "count") == 1   # own counter
            assert pool.call(hids[2], "count") == 1   # own counter, worker 0
            assert pool.call(hids[0], "count") == 3
        finally:
            pool.close()

    def test_worker_exception_raises_with_remote_traceback(self):
        pool, (hid,) = _make_pool()
        try:
            with pytest.raises(RTLWorkerError, match="kaboom"):
                pool.call(hid, "boom")
            # the worker survives its own exception
            assert pool.call(hid, "count") == 1
        finally:
            pool.close()

    def test_lifecycle_guards(self):
        with pytest.raises(ValueError):
            RTLWorkerPool(0)
        pool = RTLWorkerPool(1)
        with pytest.raises(RuntimeError):
            pool.submit(0, "echo")       # not started
        pool.register(_ProbeHost())
        pool.start()
        with pytest.raises(RuntimeError):
            pool.register(_ProbeHost())  # too late
        with pytest.raises(RuntimeError):
            pool.start()                 # already started
        pool.close()
        pool.close()                     # idempotent


class TestFaultPlanHygiene:
    """Satellite: a parked sweep-worker FaultPlan must not leak into RTL
    pool workers through fork (unless explicitly requested)."""

    @pytest.fixture(autouse=True)
    def _parked_plan(self):
        control.set_pending_plan(FaultPlan.parse(["dram-drop@100"], seed=0))
        try:
            yield
        finally:
            control.clear_pending()

    def test_worker_clears_inherited_plan_by_default(self):
        assert control.pending_plan() is not None  # parked in the parent
        pool, (hid,) = _make_pool()
        try:
            assert pool.call(hid, "plan") is False
        finally:
            pool.close()
        # the parent's parked plan is untouched
        assert control.pending_plan() is not None

    def test_inherit_fault_plan_keeps_it(self):
        pool, (hid,) = _make_pool(inherit_fault_plan=True)
        try:
            assert pool.call(hid, "plan") is True
        finally:
            pool.close()


# -- library hosting -------------------------------------------------------


class _CounterLib(SharedLibrary):
    """Minimal library: output = running sum of the input field."""

    input_spec = StructSpec("in", [Field("x", 32)])
    output_spec = StructSpec("out", [Field("acc", 32)])

    def __init__(self) -> None:
        self.acc = 0

    def tick(self, input_bytes: bytes) -> bytes:
        self.acc += self.input_spec.unpack(input_bytes)["x"]
        return self.output_spec.pack(acc=self.acc)

    def reset(self) -> None:
        self.acc = 0

    def checkpoint_state(self) -> dict:
        return {"acc": self.acc}

    def load_checkpoint_state(self, state: dict) -> None:
        self.acc = state["acc"]


class TestPooledLibrary:
    @pytest.fixture
    def pooled(self):
        pool = RTLWorkerPool(1)
        hid = pool.register(LibraryHost(_CounterLib()))
        pool.start()
        lib = PooledLibrary(pool, hid, _CounterLib())
        try:
            yield lib
        finally:
            pool.close()

    def test_specs_come_from_the_local_twin(self, pooled):
        assert pooled.input_spec.size == _CounterLib.input_spec.size
        assert "acc" in pooled.output_spec

    def test_tick_and_batch_run_remotely(self, pooled):
        out = pooled.tick(pooled.input_spec.pack(x=5))
        assert pooled.output_spec.unpack(out)["acc"] == 5
        out = pooled.tick_batch(pooled.input_spec.pack(x=2), 3)
        assert pooled.output_spec.unpack(out)["acc"] == 11
        # the local twin never saw any of it
        assert pooled.inner.acc == 0
        with pytest.raises(ValueError):
            pooled.tick_batch(b"", 0)

    def test_submit_tick_is_asynchronous(self, pooled):
        t1 = pooled.submit_tick(pooled.input_spec.pack(x=1), 1)
        t2 = pooled.submit_tick(pooled.input_spec.pack(x=10), 1)
        outs = [t.result() for t in (t1, t2)]
        assert [pooled.output_spec.unpack(o)["acc"] for o in outs] == [1, 11]

    def test_reset_and_checkpoint_roundtrip(self, pooled):
        pooled.tick(pooled.input_spec.pack(x=7))
        assert pooled.checkpoint_state() == {"acc": 7}
        pooled.reset()
        assert pooled.checkpoint_state() == {"acc": 0}
        pooled.load_checkpoint_state({"acc": 42})
        out = pooled.tick(pooled.input_spec.pack(x=1))
        assert pooled.output_spec.unpack(out)["acc"] == 43
