"""RTL kernel: signals, memories, levelization, comb-loop detection."""

import pytest

from repro.rtl import CombLoopError, Edge, RTLModule, mask_for


class TestConstruction:
    def test_signal_indices_sequential(self):
        m = RTLModule("m")
        a = m.add_signal("a", 8)
        b = m.add_signal("b", 16)
        assert a.index == 0 and b.index == 1
        assert m.num_signals() == 2

    def test_duplicate_signal_rejected(self):
        m = RTLModule("m")
        m.add_signal("a", 1)
        with pytest.raises(ValueError):
            m.add_signal("a", 2)

    def test_masks(self):
        assert mask_for(1) == 1
        assert mask_for(8) == 0xFF
        assert mask_for(32) == 0xFFFFFFFF
        with pytest.raises(ValueError):
            mask_for(0)

    def test_initial_values_masked(self):
        m = RTLModule("m")
        m.add_signal("a", 4, init=0x1F)
        assert m.fresh_values()[0] == 0xF

    def test_memory_construction(self):
        m = RTLModule("m")
        mem = m.add_memory("ram", 8, 16)
        assert mem.depth == 16 and mem.mask == 0xFF
        assert m.fresh_mems() == [[0] * 16]

    def test_duplicate_memory_rejected(self):
        m = RTLModule("m")
        m.add_memory("ram", 8, 4)
        with pytest.raises(ValueError):
            m.add_memory("ram", 8, 4)

    def test_bad_memory_depth(self):
        m = RTLModule("m")
        with pytest.raises(ValueError):
            m.add_memory("ram", 8, 0)

    def test_io_markers(self):
        m = RTLModule("m")
        m.add_signal("i", 1, is_input=True)
        m.add_signal("o", 1, is_output=True)
        m.add_signal("w", 1)
        assert [s.name for s in m.inputs] == ["i"]
        assert [s.name for s in m.outputs] == ["o"]


class TestLevelization:
    def test_chain_ordered_by_dependency(self):
        m = RTLModule("m")
        a = m.add_signal("a", 8)
        b = m.add_signal("b", 8)
        c = m.add_signal("c", 8)

        # deliberately registered out of order: c<-b then b<-a
        def f_bc(v, mm):
            v[c.index] = v[b.index] + 1 & 0xFF

        def f_ab(v, mm):
            v[b.index] = v[a.index] + 1 & 0xFF

        m.add_comb(f_bc, {b.index}, {c.index}, name="bc")
        m.add_comb(f_ab, {a.index}, {b.index}, name="ab")
        order = m.levelize()
        assert [p.name for p in order] == ["ab", "bc"]

    def test_comb_loop_detected(self):
        m = RTLModule("m")
        a = m.add_signal("a", 1)
        b = m.add_signal("b", 1)
        m.add_comb(lambda v, mm: None, {a.index}, {b.index}, name="p1")
        m.add_comb(lambda v, mm: None, {b.index}, {a.index}, name="p2")
        with pytest.raises(CombLoopError):
            m.levelize()

    def test_self_loop_allowed_if_same_process(self):
        # a process reading and writing the same signal is not treated as
        # a loop with itself (common for read-modify-write assigns)
        m = RTLModule("m")
        a = m.add_signal("a", 8)
        m.add_comb(lambda v, mm: None, {a.index}, {a.index}, name="rmw")
        assert len(m.levelize()) == 1

    def test_independent_processes_any_order(self):
        m = RTLModule("m")
        sigs = [m.add_signal(f"s{i}", 1) for i in range(4)]
        for i in range(0, 4, 2):
            m.add_comb(lambda v, mm: None, {sigs[i].index},
                       {sigs[i + 1].index}, name=f"p{i}")
        assert len(m.levelize()) == 2


class TestSyncProcs:
    def test_edge_registration(self):
        m = RTLModule("m")
        clk = m.add_signal("clk", 1)
        m.add_sync(lambda v, mm, nba, nbm: None, clk, edge=Edge.NEG)
        assert m.sync_procs[0].edge == Edge.NEG
        assert m.sync_procs[0].clock == clk.index
