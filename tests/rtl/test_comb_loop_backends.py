"""Comb-loop behaviour must not depend on the execution backend.

Three regressions:

* a genuine zero-delay loop raises :class:`CombLoopError` with the
  *identical* message (same offending processes) whichever backend was
  requested;
* a word-level-cyclic but convergent design makes codegen fall back to
  the interpreter cleanly — and still simulate correctly;
* ``levelize()`` itself names the offending processes.
"""

from __future__ import annotations

import pytest

from repro.rtl import CombLoopError, RTLModule, RTLSimulator


def make_oscillator():
    """b = not a; a = b — a genuine zero-delay loop that never settles."""
    m = RTLModule("osc")
    m.add_signal("clk", 1, is_input=True)
    a = m.add_signal("a", 1)
    b = m.add_signal("b", 1)

    def inv(v, mm):
        v[b.index] = (~v[a.index]) & 1

    def fwd(v, mm):
        v[a.index] = v[b.index]

    m.add_comb(inv, {a.index}, {b.index}, name="inv")
    m.add_comb(fwd, {b.index}, {a.index}, name="fwd")
    return m


def make_convergent_cycle():
    """Word-level cyclic, bit-level convergent (distinct bits feed back)."""
    m = RTLModule("conv")
    m.add_signal("clk", 1, is_input=True)
    x = m.add_signal("x", 1, is_input=True)
    a = m.add_signal("a", 4)
    b = m.add_signal("b", 4)

    def f1(v, mm):
        v[a.index] = (v[b.index] & 0b10) | v[x.index]

    def f2(v, mm):
        v[b.index] = ((v[a.index] & 1) << 1) | 0b100

    m.add_comb(f1, {b.index, x.index}, {a.index}, name="f1")
    m.add_comb(f2, {a.index}, {b.index}, name="f2")
    return m


class TestGenuineLoop:
    def test_same_error_both_backends(self):
        messages = {}
        for backend in ("codegen", "interp"):
            with pytest.raises(CombLoopError) as exc:
                RTLSimulator(make_oscillator(), backend=backend)
            messages[backend] = str(exc.value)
        assert messages["codegen"] == messages["interp"]
        assert "did not converge" in messages["codegen"]
        assert "'osc'" in messages["codegen"]

    def test_levelize_names_offending_processes(self):
        with pytest.raises(CombLoopError) as exc:
            make_oscillator().levelize()
        assert "inv" in str(exc.value)
        assert "fwd" in str(exc.value)


class TestConvergentFallback:
    def test_codegen_falls_back_to_interp(self):
        sim = RTLSimulator(make_convergent_cycle(), backend="codegen")
        assert sim.requested_backend == "codegen"
        assert sim.backend == "interp"

    def test_fallback_simulates_correctly(self):
        cg = RTLSimulator(make_convergent_cycle(), backend="codegen")
        it = RTLSimulator(make_convergent_cycle(), backend="interp")
        for x in (0, 1, 1, 0, 1):
            for sim in (cg, it):
                sim.poke("x", x)
                sim.settle()
                sim.tick()
            assert cg.values == it.values

    def test_fallback_supports_run_cycles(self):
        sim = RTLSimulator(make_convergent_cycle(), backend="codegen")
        sim.poke("x", 1)
        sim.settle()
        sim.run_cycles(10)
        assert sim.cycle == 10


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RTLSimulator(make_convergent_cycle(), backend="verilator")

    def test_acyclic_design_uses_codegen_by_default(self):
        m = RTLModule("triv")
        m.add_signal("clk", 1, is_input=True)
        i = m.add_signal("i", 8, is_input=True)
        o = m.add_signal("o", 8, is_output=True)
        m.add_comb(lambda v, mm: v.__setitem__(o.index, v[i.index]),
                   {i.index}, {o.index})
        sim = RTLSimulator(m)
        assert sim.backend == "codegen"
