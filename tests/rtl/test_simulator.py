"""RTLSimulator: settle/tick semantics, NBA atomicity, reset, checkpoints."""

import pytest

from repro.rtl import Edge, RTLModule, RTLSimulator


def make_counter_module():
    """Handwritten kernel-level counter (no HDL frontend involved)."""
    m = RTLModule("ctr")
    clk = m.add_signal("clk", 1, is_input=True)
    rst = m.add_signal("rst", 1, is_input=True)
    en = m.add_signal("en", 1, is_input=True)
    cnt = m.add_signal("cnt", 8)
    out = m.add_signal("out", 8, is_output=True)

    def sync(v, mm, nba, nbm):
        if v[rst.index]:
            nba.append((cnt.index, 0))
        elif v[en.index]:
            nba.append((cnt.index, (v[cnt.index] + 1) & 0xFF))

    def comb(v, mm):
        v[out.index] = v[cnt.index]

    m.add_sync(sync, clk, reads={rst.index, en.index, cnt.index},
               writes={cnt.index})
    m.add_comb(comb, {cnt.index}, {out.index})
    return m


class TestBasicOperation:
    def test_counts_when_enabled(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1)
        sim.settle()
        sim.tick(5)
        assert sim.peek("out") == 5

    def test_holds_when_disabled(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1); sim.settle(); sim.tick(3)
        sim.poke("en", 0); sim.settle(); sim.tick(10)
        assert sim.peek("out") == 3

    def test_reset_via_signal(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1); sim.settle(); sim.tick(3)
        sim.reset()
        assert sim.peek("out") == 0

    def test_peek_unknown_signal(self):
        sim = RTLSimulator(make_counter_module())
        with pytest.raises(KeyError):
            sim.peek("nope")

    def test_poke_masks_value(self):
        sim = RTLSimulator(make_counter_module())
        sim.poke("cnt", 0x1FF)
        assert sim.peek("cnt") == 0xFF

    def test_cycle_counter(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        base = sim.cycle
        sim.tick(7)
        assert sim.cycle == base + 7


class TestNBASemantics:
    def test_swap_is_atomic(self):
        """Two registers exchanging values must swap, not duplicate."""
        m = RTLModule("swap")
        clk = m.add_signal("clk", 1, is_input=True)
        a = m.add_signal("a", 8, init=1)
        b = m.add_signal("b", 8, init=2)

        def p1(v, mm, nba, nbm):
            nba.append((a.index, v[b.index]))

        def p2(v, mm, nba, nbm):
            nba.append((b.index, v[a.index]))

        m.add_sync(p1, clk, reads={b.index}, writes={a.index})
        m.add_sync(p2, clk, reads={a.index}, writes={b.index})
        sim = RTLSimulator(m)
        sim.tick()
        assert (sim.peek("a"), sim.peek("b")) == (2, 1)
        sim.tick()
        assert (sim.peek("a"), sim.peek("b")) == (1, 2)

    def test_memory_nba_applied_after_sampling(self):
        m = RTLModule("mem")
        clk = m.add_signal("clk", 1, is_input=True)
        mem = m.add_memory("ram", 8, 4)
        probe = m.add_signal("probe", 8)

        def p(v, mm, nba, nbm):
            # read old value into probe, then write new one
            nba.append((probe.index, mm[mem.index][0]))
            nbm.append((mem.index, 0, (mm[mem.index][0] + 1) & 0xFF))

        m.add_sync(p, clk, writes={probe.index})
        sim = RTLSimulator(m)
        sim.tick()
        assert sim.peek("probe") == 0 and sim.peek_mem("ram", 0) == 1
        sim.tick()
        assert sim.peek("probe") == 1 and sim.peek_mem("ram", 0) == 2

    def test_negedge_process(self):
        m = RTLModule("neg")
        clk = m.add_signal("clk", 1, is_input=True)
        c = m.add_signal("c", 8)

        def p(v, mm, nba, nbm):
            nba.append((c.index, (v[c.index] + 1) & 0xFF))

        m.add_sync(p, clk, edge=Edge.NEG, reads={c.index}, writes={c.index})
        sim = RTLSimulator(m)
        sim.tick(3)
        assert sim.peek("c") == 3


class TestCheckpoint:
    def test_save_restore_roundtrip(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1); sim.settle(); sim.tick(5)
        ckpt = sim.save_checkpoint()
        sim.tick(10)
        assert sim.peek("out") == 15
        sim.restore_checkpoint(ckpt)
        assert sim.peek("out") == 5
        assert sim.cycle == ckpt.cycle
        sim.tick(2)
        assert sim.peek("out") == 7

    def test_checkpoint_deep_copies_memories(self):
        m = RTLModule("m")
        m.add_signal("clk", 1, is_input=True)
        m.add_memory("ram", 8, 4)
        sim = RTLSimulator(m)
        sim.poke_mem("ram", 1, 42)
        ckpt = sim.save_checkpoint()
        sim.poke_mem("ram", 1, 99)
        sim.restore_checkpoint(ckpt)
        assert sim.peek_mem("ram", 1) == 42

    def test_mismatched_checkpoint_rejected(self):
        sim1 = RTLSimulator(make_counter_module())
        m2 = RTLModule("other")
        m2.add_signal("x", 1)
        sim2 = RTLSimulator(m2)
        with pytest.raises(ValueError):
            sim2.restore_checkpoint(sim1.save_checkpoint())


class TestMemoryPokes:
    def test_poke_mem_masks(self):
        m = RTLModule("m")
        m.add_memory("ram", 4, 2)
        sim = RTLSimulator(m)
        sim.poke_mem("ram", 0, 0xFF)
        assert sim.peek_mem("ram", 0) == 0xF
