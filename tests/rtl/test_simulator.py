"""RTLSimulator: settle/tick semantics, NBA atomicity, reset, checkpoints."""

import pytest

from repro.rtl import Edge, RTLModule, RTLSimulator


def make_counter_module():
    """Handwritten kernel-level counter (no HDL frontend involved)."""
    m = RTLModule("ctr")
    clk = m.add_signal("clk", 1, is_input=True)
    rst = m.add_signal("rst", 1, is_input=True)
    en = m.add_signal("en", 1, is_input=True)
    cnt = m.add_signal("cnt", 8)
    out = m.add_signal("out", 8, is_output=True)

    def sync(v, mm, nba, nbm):
        if v[rst.index]:
            nba.append((cnt.index, 0))
        elif v[en.index]:
            nba.append((cnt.index, (v[cnt.index] + 1) & 0xFF))

    def comb(v, mm):
        v[out.index] = v[cnt.index]

    m.add_sync(sync, clk, reads={rst.index, en.index, cnt.index},
               writes={cnt.index})
    m.add_comb(comb, {cnt.index}, {out.index})
    return m


class TestBasicOperation:
    def test_counts_when_enabled(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1)
        sim.settle()
        sim.tick(5)
        assert sim.peek("out") == 5

    def test_holds_when_disabled(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1); sim.settle(); sim.tick(3)
        sim.poke("en", 0); sim.settle(); sim.tick(10)
        assert sim.peek("out") == 3

    def test_reset_via_signal(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1); sim.settle(); sim.tick(3)
        sim.reset()
        assert sim.peek("out") == 0

    def test_peek_unknown_signal(self):
        sim = RTLSimulator(make_counter_module())
        with pytest.raises(KeyError):
            sim.peek("nope")

    def test_poke_masks_value(self):
        sim = RTLSimulator(make_counter_module())
        sim.poke("cnt", 0x1FF)
        assert sim.peek("cnt") == 0xFF

    def test_cycle_counter(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        base = sim.cycle
        sim.tick(7)
        assert sim.cycle == base + 7


class TestNBASemantics:
    def test_swap_is_atomic(self):
        """Two registers exchanging values must swap, not duplicate."""
        m = RTLModule("swap")
        clk = m.add_signal("clk", 1, is_input=True)
        a = m.add_signal("a", 8, init=1)
        b = m.add_signal("b", 8, init=2)

        def p1(v, mm, nba, nbm):
            nba.append((a.index, v[b.index]))

        def p2(v, mm, nba, nbm):
            nba.append((b.index, v[a.index]))

        m.add_sync(p1, clk, reads={b.index}, writes={a.index})
        m.add_sync(p2, clk, reads={a.index}, writes={b.index})
        sim = RTLSimulator(m)
        sim.tick()
        assert (sim.peek("a"), sim.peek("b")) == (2, 1)
        sim.tick()
        assert (sim.peek("a"), sim.peek("b")) == (1, 2)

    def test_memory_nba_applied_after_sampling(self):
        m = RTLModule("mem")
        clk = m.add_signal("clk", 1, is_input=True)
        mem = m.add_memory("ram", 8, 4)
        probe = m.add_signal("probe", 8)

        def p(v, mm, nba, nbm):
            # read old value into probe, then write new one
            nba.append((probe.index, mm[mem.index][0]))
            nbm.append((mem.index, 0, (mm[mem.index][0] + 1) & 0xFF))

        m.add_sync(p, clk, writes={probe.index})
        sim = RTLSimulator(m)
        sim.tick()
        assert sim.peek("probe") == 0 and sim.peek_mem("ram", 0) == 1
        sim.tick()
        assert sim.peek("probe") == 1 and sim.peek_mem("ram", 0) == 2

    def test_negedge_process(self):
        m = RTLModule("neg")
        clk = m.add_signal("clk", 1, is_input=True)
        c = m.add_signal("c", 8)

        def p(v, mm, nba, nbm):
            nba.append((c.index, (v[c.index] + 1) & 0xFF))

        m.add_sync(p, clk, edge=Edge.NEG, reads={c.index}, writes={c.index})
        sim = RTLSimulator(m)
        sim.tick(3)
        assert sim.peek("c") == 3


class TestCheckpoint:
    def test_save_restore_roundtrip(self):
        sim = RTLSimulator(make_counter_module())
        sim.reset()
        sim.poke("en", 1); sim.settle(); sim.tick(5)
        ckpt = sim.save_checkpoint()
        sim.tick(10)
        assert sim.peek("out") == 15
        sim.restore_checkpoint(ckpt)
        assert sim.peek("out") == 5
        assert sim.cycle == ckpt.cycle
        sim.tick(2)
        assert sim.peek("out") == 7

    def test_checkpoint_deep_copies_memories(self):
        m = RTLModule("m")
        m.add_signal("clk", 1, is_input=True)
        m.add_memory("ram", 8, 4)
        sim = RTLSimulator(m)
        sim.poke_mem("ram", 1, 42)
        ckpt = sim.save_checkpoint()
        sim.poke_mem("ram", 1, 99)
        sim.restore_checkpoint(ckpt)
        assert sim.peek_mem("ram", 1) == 42

    def test_mismatched_checkpoint_rejected(self):
        sim1 = RTLSimulator(make_counter_module())
        m2 = RTLModule("other")
        m2.add_signal("x", 1)
        sim2 = RTLSimulator(m2)
        with pytest.raises(ValueError):
            sim2.restore_checkpoint(sim1.save_checkpoint())


class TestMemoryPokes:
    def test_poke_mem_masks(self):
        m = RTLModule("m")
        m.add_memory("ram", 4, 2)
        sim = RTLSimulator(m)
        sim.poke_mem("ram", 0, 0xFF)
        assert sim.peek_mem("ram", 0) == 0xF


class TestResetStateInvalidation:
    """``reset_state`` must be a no-op path when the optimiser emitted
    zero guarded cones — internal pokes on -O0/-O1 builds used to pay
    a useless invalidation call in the hottest driver loop."""

    FAT_CONE = None  # built lazily (long assign chain)

    @classmethod
    def _fat_cone_source(cls):
        if cls.FAT_CONE is None:
            chain = "\n".join(
                f"  wire [7:0] t{i};\n"
                f"  assign t{i} = t{i-1} ^ (t{i-1} + 8'd{i});"
                for i in range(1, 20)
            )
            cls.FAT_CONE = f"""
module fatcone(input clk, input rst, input [7:0] x,
               output reg [7:0] r, output [7:0] y);
  wire [7:0] t0;
  assign t0 = r + 8'd1;
{chain}
  assign y = t19;
  always @(posedge clk) begin
    if (rst) r <= 8'd0; else r <= r + x;
  end
endmodule
"""
        return cls.FAT_CONE

    def _compile(self, opt_level):
        from repro.hdl.common import ElabOptions
        from repro.hdl.verilog import compile_verilog

        return compile_verilog(
            self._fat_cone_source(), top="fatcone",
            options=ElabOptions(opt_level=opt_level),
        )

    def _count_calls(self, sim):
        calls = {"n": 0}
        orig = sim._codegen.reset_state

        def counted():
            calls["n"] += 1
            orig()

        sim._codegen.reset_state = counted
        return calls

    def test_unguarded_build_never_invalidates(self):
        sim = RTLSimulator(self._compile(0), backend="codegen")
        assert sim._codegen.guarded_cones == 0
        assert not sim._invalidates
        calls = self._count_calls(sim)
        sim.reset()
        for _ in range(5):
            sim.poke("r", 3)          # internal register
            sim.poke("x", 1)          # input
            sim.tick()
        sim.restore_checkpoint(sim.save_checkpoint())
        assert calls["n"] == 0

    def test_guarded_build_invalidates_exactly_per_mutation(self):
        sim = RTLSimulator(self._compile(2), backend="codegen")
        assert sim._codegen.guarded_cones > 0
        assert sim._invalidates
        calls = self._count_calls(sim)
        sim.poke("x", 1)              # input poke: key compare handles it
        assert calls["n"] == 0
        sim.poke("r", 3)              # internal poke: must invalidate
        assert calls["n"] == 1
        sim.reset()
        assert calls["n"] == 2
        sim.restore_checkpoint(sim.save_checkpoint())
        assert calls["n"] == 3

    def test_guarded_and_unguarded_builds_agree(self):
        sims = [
            RTLSimulator(self._compile(0), backend="codegen"),
            RTLSimulator(self._compile(2), backend="codegen"),
        ]
        for sim in sims:
            sim.reset()
            sim.poke("x", 5)
            sim.tick(9)
            sim.poke("r", 0x2A)       # bypasses generated code
            sim.tick(3)
        assert sims[0].peek("y") == sims[1].peek("y")
        assert sims[0].peek("r") == sims[1].peek("r")
