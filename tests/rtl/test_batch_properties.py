"""Property-based tests for batched stepping.

Two algebraic laws back the batching fast path:

* **split**: ``run_cycles(a); run_cycles(b)`` must equal
  ``run_cycles(a + b)`` for any split — the generated batch loop may not
  observe where the caller chops up time;
* **checkpoint round-trip**: saving mid-batch and re-running from the
  snapshot must reproduce the exact same state, with or without VCD
  tracing enabled.
"""

from __future__ import annotations

import io
import random

from hypothesis import given, settings, strategies as st

from repro.hdl.verilog import compile_verilog
from repro.rtl import RTLSimulator
from repro.rtl.vcd import VCDWriter

LCG_V = """
module lcg(
    input clk,
    input rst,
    input [15:0] seed,
    input load,
    output reg [15:0] state,
    output [7:0] byte_out
);
    reg [7:0] hist [0:7];
    reg [2:0] wp;

    assign byte_out = state[15:8];

    always @(posedge clk) begin
        if (rst) begin
            state <= 16'h1;
            wp <= 0;
        end else if (load) begin
            state <= seed;
        end else begin
            state <= state * 25173 + 13849;
            hist[wp] <= state[7:0];
            wp <= wp + 1;
        end
    end
endmodule
"""

MODULE = compile_verilog(LCG_V, top="lcg")


def _fresh(seed, backend="codegen", trace_stream=None):
    trace = None
    if trace_stream is not None:
        trace = VCDWriter(MODULE, stream=trace_stream, enabled=True)
    sim = RTLSimulator(MODULE, backend=backend, trace=trace)
    sim.reset("rst")
    rng = random.Random(seed)
    sim.poke("seed", rng.getrandbits(16))
    sim.poke("load", 1)
    sim.settle()
    sim.tick()
    sim.poke("load", 0)
    sim.settle()
    return sim


def _state(sim):
    return (sim.cycle, list(sim.values), [list(m) for m in sim.mems])


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 50), b=st.integers(0, 50),
       seed=st.integers(0, 2**16 - 1))
def test_run_cycles_split_equivalence(a, b, seed):
    split = _fresh(seed)
    whole = _fresh(seed)
    split.run_cycles(a)
    split.run_cycles(b)
    whole.run_cycles(a + b)
    assert _state(split) == _state(whole)


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 50), b=st.integers(0, 50),
       seed=st.integers(0, 2**16 - 1))
def test_split_matches_interp_singles(a, b, seed):
    """The batched codegen run equals a per-cycle interpreter run."""
    batched = _fresh(seed)
    stepped = _fresh(seed, backend="interp")
    batched.run_cycles(a)
    batched.run_cycles(b)
    for _ in range(a + b):
        stepped.tick()
    assert _state(batched)[1:] == _state(stepped)[1:]


@settings(max_examples=25, deadline=None)
@given(pre=st.integers(0, 40), post=st.integers(1, 40),
       seed=st.integers(0, 2**16 - 1))
def test_checkpoint_mid_batch_roundtrip(pre, post, seed):
    sim = _fresh(seed)
    sim.run_cycles(pre)
    ckpt = sim.save_checkpoint()
    sim.run_cycles(post)
    first = _state(sim)
    sim.restore_checkpoint(ckpt)
    assert _state(sim) == (ckpt.cycle, ckpt.values, ckpt.mems)
    sim.run_cycles(post)
    assert _state(sim) == first


@settings(max_examples=15, deadline=None)
@given(pre=st.integers(0, 20), post=st.integers(1, 20),
       seed=st.integers(0, 2**16 - 1))
def test_checkpoint_roundtrip_with_tracing(pre, post, seed):
    """Tracing forces the per-cycle path; checkpoints must still be exact,
    and the traced run must end in the same state as an untraced one."""
    sim = _fresh(seed, trace_stream=io.StringIO())
    plain = _fresh(seed)
    sim.run_cycles(pre)
    ckpt = sim.save_checkpoint()
    sim.run_cycles(post)
    first = _state(sim)
    sim.restore_checkpoint(ckpt)
    sim.run_cycles(post)
    assert _state(sim) == first
    plain.run_cycles(pre + post)
    assert _state(plain) == first


def test_negative_run_cycles_rejected():
    sim = _fresh(0)
    try:
        sim.run_cycles(-1)
    except ValueError:
        pass
    else:
        raise AssertionError("run_cycles(-1) should raise ValueError")


def test_zero_run_cycles_is_noop():
    sim = _fresh(0)
    before = _state(sim)
    sim.run_cycles(0)
    assert _state(sim) == before
