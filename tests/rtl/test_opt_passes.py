"""Per-pass unit tests for the netlist optimiser (repro.rtl.opt).

Each pass gets positive fixtures (minimal designs where it must fire)
and negative fixtures (where firing would change observable behaviour,
so it must not).  Observability here means everything the verify stack
can see: VCD-visible signals, memories, and coverage counters.
"""

from __future__ import annotations

import pytest

from repro.hdl.common import CoverageOptions, ElabOptions, OPT_PASSES
from repro.hdl.verilog import compile_verilog
from repro.hdl.vhdl import compile_vhdl
from repro.rtl import RTLSimulator
from repro.rtl.activity import MAX_CONE_INPUTS, plan_activity
from repro.rtl.opt import optimize


def _compile(src, top, level=2, instrument=None, frontend="verilog", **over):
    fn = compile_vhdl if frontend == "vhdl" else compile_verilog
    return fn(src, top=top, instrument=instrument,
              options=ElabOptions(opt_level=level, **over))


# -- ElabOptions ----------------------------------------------------------

class TestElabOptions:
    def test_level_pass_sets(self):
        assert ElabOptions(opt_level=0).passes() == ()
        assert ElabOptions(opt_level=1).passes() == (
            "const_fold", "dedup", "dce")
        assert ElabOptions(opt_level=2).passes() == OPT_PASSES

    def test_per_pass_overrides(self):
        opts = ElabOptions(opt_level=2, dedup=False)
        assert "dedup" not in opts.passes()
        opts = ElabOptions(opt_level=0, activity=True)
        assert opts.passes() == ("activity",)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="opt_level"):
            ElabOptions(opt_level=3)

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown optimisation pass"):
            ElabOptions().wants("loop_unroll")

    def test_resolve_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OPT_LEVEL", raising=False)
        assert ElabOptions.resolve(None).opt_level == 0
        monkeypatch.setenv("REPRO_OPT_LEVEL", "2")
        assert ElabOptions.resolve(None).opt_level == 2
        # explicit options always win over the environment
        assert ElabOptions.resolve(ElabOptions(opt_level=1)).opt_level == 1


# -- const_fold -----------------------------------------------------------

CONST_V = """
module constant(
    input clk, input [7:0] a,
    output [7:0] x, output [7:0] y, output [7:0] z
);
    wire [7:0] tied;            // undriven: constant 0
    assign x = tied | 8'h0f;    // folds to 15
    assign y = x + 8'h01;       // cascades to 16
    assign z = a + x;           // partially folds: still reads a
endmodule
"""


class TestConstFold:
    def test_tied_wire_folds_and_cascades(self):
        m = _compile(CONST_V, "constant")
        stats = m.opt_stats["const_fold"]
        assert stats["tied"] == 1
        assert stats["folded_procs"] >= 2   # x and y become literals
        sim = RTLSimulator(m)
        sim.poke("a", 5)
        sim.settle()
        assert sim.peek("x") == 0x0F
        assert sim.peek("y") == 0x10
        assert sim.peek("z") == 5 + 0x0F

    def test_folded_values_match_unoptimized(self):
        m0 = _compile(CONST_V, "constant", level=0)
        m2 = _compile(CONST_V, "constant")
        s0, s2 = RTLSimulator(m0, backend="interp"), RTLSimulator(m2)
        for s in (s0, s2):
            s.poke("a", 0xAB)
            s.settle()
        assert s0.values == s2.values

    def test_inputs_are_never_constants(self):
        """An input has no driver but is externally poked — not foldable."""
        m = _compile(CONST_V, "constant")
        sim = RTLSimulator(m)
        for val in (0, 0xFF, 7):
            sim.poke("a", val)
            sim.settle()
            assert sim.peek("z") == (val + 0x0F) & 0xFF

    def test_coverage_counters_not_treated_as_constants(self):
        """Counters have no writes-set entry; they must not fold to 0."""
        src = """
        module covd(input clk, input [3:0] a, output reg [3:0] q);
            always @(*) begin
                q = a + 1;
            end
        endmodule
        """
        m = _compile(src, "covd", instrument=CoverageOptions())
        assert m.coverage_points
        sim = RTLSimulator(m)
        sim.poke("a", 1)
        sim.settle()
        sim.settle()
        idx = m.coverage_points[0].index
        assert sim.values[idx] == 2  # still counting, not folded


# -- dedup ---------------------------------------------------------------

DUP_V = """
module dup(
    input [7:0] a, input [7:0] b,
    output [8:0] s1, output [8:0] s2, output [8:0] diff
);
    assign s1 = a + b;
    assign s2 = a + b;      // structural duplicate of s1
    assign diff = a - b;    // not a duplicate
endmodule
"""


class TestDedup:
    def test_duplicate_assign_merged(self):
        m = _compile(DUP_V, "dup")
        assert m.opt_stats["dedup"]["merged"] == 1
        copies = [p for p in m.comb_procs
                  if p.source and p.source.strip().startswith("v[")
                  and p.source.strip().endswith(f"v[{m.signals['s1'].index}]")]
        assert copies, "s2 should have become a copy of s1"

    def test_merged_values_identical(self):
        m = _compile(DUP_V, "dup")
        ref = RTLSimulator(_compile(DUP_V, "dup", level=0), backend="interp")
        sim = RTLSimulator(m)
        for a, b in ((0, 0), (255, 255), (17, 200)):
            for s in (sim, ref):
                s.poke("a", a)
                s.poke("b", b)
                s.settle()
            assert sim.peek("s1") == sim.peek("s2") == ref.peek("s1")
            assert sim.peek("diff") == ref.peek("diff")

    def test_memory_reads_not_deduped(self):
        """Comb memory read order is unspecified; never merge them."""
        src = """
        module memdup(input clk, input [3:0] i,
                      output [7:0] r1, output [7:0] r2);
            reg [7:0] mem [0:15];
            assign r1 = mem[i];
            assign r2 = mem[i];
        endmodule
        """
        m = _compile(src, "memdup")
        assert m.opt_stats["dedup"]["merged"] == 0


# -- dce -----------------------------------------------------------------

class TestDCE:
    def test_constant_driver_removed(self):
        m0 = _compile(CONST_V, "constant", level=0)
        m2 = _compile(CONST_V, "constant")
        assert m2.opt_stats["dce"]["removed_procs"] >= 2
        assert len(m2.comb_procs) < len(m0.comb_procs)

    def test_removed_signal_keeps_its_value(self):
        """The signal outlives its constant driver (VCD/peek contract)."""
        m = _compile(CONST_V, "constant")
        sim = RTLSimulator(m)
        sim.settle()
        assert sim.peek("x") == 0x0F
        assert sim.peek("y") == 0x10

    def test_dce_never_removes_live_logic(self):
        """Negative fixture: a signal feeding ONLY a coverage counter's
        process (and the VCD writer) is still real logic — only
        *constant* drivers may be eliminated."""
        src = """
        module pinned(input clk, input [3:0] a, output reg [3:0] q);
            wire [3:0] x;
            assign x = a ^ 4'h3;
            always @(*) begin
                q = x;
            end
        endmodule
        """
        m = _compile(src, "pinned", instrument=CoverageOptions())
        assert m.opt_stats["dce"]["removed_procs"] == 0
        sim = RTLSimulator(m)
        for val in (0, 9, 15):
            sim.poke("a", val)
            sim.settle()
            assert sim.peek("x") == val ^ 3

    def test_dce_off_keeps_literal_drivers(self):
        m = _compile(CONST_V, "constant", dce=False)
        assert "dce" not in m.opt_stats
        sim = RTLSimulator(m)
        sim.settle()
        assert sim.peek("y") == 0x10


# -- activity cones -------------------------------------------------------

CONES_V = """
module cones(
    input clk, input rst,
    input [7:0] a, input [7:0] b, input [7:0] c,
    output [7:0] f, output [7:0] g, output reg [7:0] r
);
    wire [7:0] t1;
    wire [7:0] t2;
    wire [7:0] t3;
    wire [7:0] t4;
    wire [7:0] t5;
    wire [7:0] t6;
    wire [7:0] t7;
    wire [7:0] t8;
    // cone 1: {t1..t8, f} <- {a}; body (9 lines) outweighs the
    // 1-entry guard key, so it is guarded at -O2
    assign t1 = a ^ 8'h3c;
    assign t2 = t1 + 8'h11;
    assign t3 = t2 ^ (t1 >> 1);
    assign t4 = t3 + t2;
    assign t5 = t4 ^ 8'h5a;
    assign t6 = t5 + t3;
    assign t7 = t6 ^ t4;
    assign t8 = t7 + t5;
    assign f = t8 ^ t1;
    assign g = c | 8'h80;       // cone 2: {g} <- {c}; too thin to guard
    always @(posedge clk) begin
        if (rst) r <= 0;
        else r <= r + (f ^ b);
    end
endmodule
"""


class TestActivityCones:
    def test_connected_comb_shares_a_cone(self):
        m = _compile(CONES_V, "cones", dce=False, const_fold=False,
                     dedup=False)
        plan = m.activity_plan
        assert plan is not None
        t1 = m.signals["t1"].index
        f = m.signals["f"].index
        joint = [c for c in plan.cones
                 if any(t1 in m.comb_procs[i].writes for i in c.procs)]
        assert len(joint) == 1
        assert any(f in m.comb_procs[i].writes for i in joint[0].procs)

    def test_cone_inputs_are_external_only(self):
        m = _compile(CONES_V, "cones", dce=False, const_fold=False,
                     dedup=False)
        a = m.signals["a"].index
        t1 = m.signals["t1"].index
        cone = next(c_ for c_ in m.activity_plan.cones
                    if t1 in {s for i in c_.procs
                              for s in m.comb_procs[i].writes})
        assert set(cone.inputs) == {a}
        assert cone.guarded

    def test_thin_cone_not_guarded(self):
        """g's 1-line body cannot out-earn even a 1-entry guard key."""
        m = _compile(CONES_V, "cones", dce=False, const_fold=False,
                     dedup=False)
        g = m.signals["g"].index
        cone = next(c_ for c_ in m.activity_plan.cones
                    if g in {s for i in c_.procs
                             for s in m.comb_procs[i].writes})
        assert not cone.guarded
        assert "body smaller" in cone.reason

    def test_wide_cone_not_guarded(self):
        ins = ", ".join(f"input [7:0] i{k}" for k in range(MAX_CONE_INPUTS + 1))
        xors = " ^ ".join(f"i{k}" for k in range(MAX_CONE_INPUTS + 1))
        src = f"""
        module wide({ins}, output [7:0] o, output [7:0] o2);
            wire [7:0] t;
            assign t = {xors};
            assign o = t + 1;
            assign o2 = t - 1;
        endmodule
        """
        m = _compile(src, "wide")
        wide = [c for c in m.activity_plan.cones if len(c.inputs) > 8]
        assert wide and not wide[0].guarded
        assert "key too wide" in wide[0].reason

    def test_memory_cone_not_guarded(self):
        src = """
        module memc(input clk, input [3:0] i,
                    output [7:0] r1, output [7:0] r2);
            reg [7:0] mem [0:15];
            assign r1 = mem[i] + 1;
            assign r2 = r1 ^ 8'h55;
        endmodule
        """
        m = _compile(src, "memc", dedup=False)
        assert all(not c.guarded for c in m.activity_plan.cones)

    def test_coverage_cone_not_guarded(self):
        """A cone containing counter increments must settle every pass."""
        src = """
        module covc(input [7:0] a, input [7:0] b, output reg [7:0] q,
                    output reg [7:0] p);
            always @(*) begin
                q = a + b;
                p = a - b;
            end
        endmodule
        """
        m = _compile(src, "covc", instrument=CoverageOptions())
        assert m.coverage_points
        assert all(not c.guarded for c in m.activity_plan.cones)
        assert any("coverage" in c.reason for c in m.activity_plan.cones)

    def test_handwritten_proc_disables_quiescence(self):
        from repro.rtl import RTLModule

        m = RTLModule("hand")
        a = m.add_signal("a", 8, is_input=True)
        q = m.add_signal("q", 8)
        m.add_comb(lambda v, mm: v.__setitem__(q.index, v[a.index] + 1),
                   reads={a.index}, writes={q.index})
        plan = plan_activity(m)
        assert plan is not None
        assert not plan.quiescence
        assert all(not c.guarded for c in plan.cones)

    def test_comb_loop_returns_no_plan(self):
        from repro.rtl import RTLModule

        m = RTLModule("loop")
        a = m.add_signal("a", 1)
        b = m.add_signal("b", 1)
        m.add_comb(lambda v, mm: None, reads={a.index}, writes={b.index})
        m.add_comb(lambda v, mm: None, reads={b.index}, writes={a.index})
        assert plan_activity(m) is None

    def test_guarded_cone_skip_is_invisible(self):
        """Drive one cone's inputs, freeze the other's: values match the
        interpreter exactly (the activity-cone invariant)."""
        m2 = _compile(CONES_V, "cones")
        m0 = _compile(CONES_V, "cones", level=0)
        s2 = RTLSimulator(m2, backend="codegen")
        s0 = RTLSimulator(m0, backend="interp")
        assert s2._codegen.guarded_cones >= 1
        for s in (s2, s0):
            s.reset("rst")
        for cyc in range(50):
            a = (cyc * 7) & 0xFF  # a/b change every cycle, c frozen
            for s in (s2, s0):
                s.poke("a", a)
                s.poke("b", 0x21)
                s.poke("c", 0x40)
                s.settle()
                s.tick()
            assert s2.values == s0.values, f"cycle {cyc}"


# -- simulator invalidation ----------------------------------------------

class TestInvalidation:
    def test_poke_internal_signal_invalidates_cones(self):
        """Poking a cone-internal signal then settling with unchanged
        inputs must recompute the cone (not trust the stale key)."""
        m = _compile(CONES_V, "cones")
        sim = RTLSimulator(m)
        sim.reset("rst")
        sim.poke("a", 1)
        sim.poke("b", 2)
        sim.poke("c", 3)
        sim.settle()
        want = sim.peek("f")
        sim.poke("t1", 0xFF)  # internal: interp's settle would undo this
        sim.settle()
        assert sim.peek("f") == want

    def test_restore_checkpoint_invalidates_cones(self):
        m = _compile(CONES_V, "cones")
        sim = RTLSimulator(m)
        sim.reset("rst")
        sim.poke("a", 1)
        sim.poke("b", 2)
        sim.poke("c", 3)
        sim.settle()
        ckpt = sim.save_checkpoint()
        f_at_ckpt = sim.peek("f")
        sim.poke("a", 0x99)
        sim.settle()
        sim.tick(3)
        sim.restore_checkpoint(ckpt)
        sim.settle()
        assert sim.peek("f") == f_at_ckpt
        # a poked *checkpoint* (fault injection's route) also recomputes
        ckpt.values[m.signals["t1"].index] ^= 1
        sim.restore_checkpoint(ckpt)
        sim.settle()
        assert sim.peek("f") == f_at_ckpt


# -- quiescence fast path -------------------------------------------------

QUIET_V = """
module quiet(
    input clk, input rst, input en, input [7:0] d,
    output reg [7:0] acc, output [7:0] echo
);
    assign echo = d ^ 8'hff;
    always @(posedge clk) begin
        if (rst) acc <= 0;
        else if (en) acc <= acc + d;
    end
endmodule
"""


class TestQuiescence:
    def _pair(self, instrument=None):
        m2 = _compile(QUIET_V, "quiet", instrument=instrument)
        m0 = _compile(QUIET_V, "quiet", level=0, instrument=instrument)
        s2 = RTLSimulator(m2, backend="codegen")
        s0 = RTLSimulator(m0, backend="interp")
        assert s2._codegen.quiescence
        return s2, s0

    def test_idle_batch_matches_interpreter(self):
        s2, s0 = self._pair()
        for s in (s2, s0):
            s.reset("rst")
            s.poke("en", 0)
            s.poke("d", 0x5A)
            s.settle()
            s.run_cycles(10_000)
        assert s2.values == s0.values
        assert s2.cycle == s0.cycle == 10_002

    def test_batch_equals_single_ticks(self):
        """run_cycles(n) must equal n tick() calls exactly, even when
        the design goes quiet mid-batch."""
        m2 = _compile(QUIET_V, "quiet")
        a = RTLSimulator(m2)
        b = RTLSimulator(m2)
        for s in (a, b):
            s.reset("rst")
            s.poke("en", 1)
            s.poke("d", 3)
            s.settle()
            s.run_cycles(5)
            s.poke("en", 0)
            s.settle()
        a.run_cycles(500)
        for _ in range(500):
            b.tick()
        assert a.values == b.values

    def test_coverage_counts_extrapolated_exactly(self):
        """Quiescence must not shortchange coverage counters: a skipped
        tail still counts every would-have-run statement."""
        s2, s0 = self._pair(instrument=CoverageOptions())
        for s in (s2, s0):
            s.reset("rst")
            s.poke("en", 0)
            s.poke("d", 1)
            s.settle()
            s.run_cycles(2_000)
        cov2 = [s2.values[pt.index] for pt in s2.module.coverage_points]
        cov0 = [s0.values[pt.index] for pt in s0.module.coverage_points]
        assert cov2 == cov0
        assert any(cov2), "expected nonzero statement hits"


# -- optimize() API -------------------------------------------------------

class TestOptimizeAPI:
    def test_o0_is_untouched(self):
        m = _compile(CONST_V, "constant", level=0)
        assert m.opt_stats == {}
        assert m.opt_options is None
        assert m.activity_plan is None

    def test_optimize_records_options_and_stats(self):
        from repro.hdl.verilog.parser import parse
        from repro.hdl.elaborator import elaborate

        opts = ElabOptions(opt_level=2)
        m = optimize(elaborate(parse(CONST_V, "<t>"), "constant"), opts)
        assert m.opt_options is opts
        assert set(m.opt_stats) == {"const_fold", "dedup", "dce", "activity"}

    def test_vhdl_designs_optimize_too(self):
        src = """
        entity vh is
          port (a : in bit_vector(3 downto 0);
                x : out bit_vector(3 downto 0);
                y : out bit_vector(3 downto 0));
        end entity;
        architecture rtl of vh is
        begin
          x <= a and "0111";
          y <= a and "0111";
        end architecture;
        """
        m = _compile(src, "vh", frontend="vhdl")
        assert m.opt_stats["dedup"]["merged"] == 1
        sim = RTLSimulator(m)
        sim.poke("a", 0xF)
        sim.settle()
        assert sim.peek("x") == sim.peek("y") == 0x7
