"""Differential harness: codegen vs interp, bit-exact every cycle.

Every example design is driven with seeded random stimulus through both
execution backends in lock-step; after each cycle the complete
VCD-visible state — every signal value and every memory word — must be
identical.  This is the proof obligation for the codegen fast path: it
may only be an *encoding* of the interpreter's semantics, never an
approximation.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.hdl.verilog import compile_verilog
from repro.hdl.vhdl import compile_vhdl
from repro.models.bitonic.wrapper import load_bitonic_source
from repro.models.pmu.wrapper import load_pmu_source
from repro.models.rtlcache.wrapper import load_rtl_cache_source
from repro.rtl import RTLSimulator
from repro.rtl.vcd import VCDWriter

# Small designs exercising the codegen rewrites individually: part-select
# NBAs, memories, for-loop counters and ternary conditions.
MIXER_V = """
module mixer(
    input clk,
    input rst,
    input [7:0] a,
    input [7:0] b,
    input sel,
    output reg [7:0] acc,
    output [8:0] sum,
    output [7:0] muxed
);
    reg [3:0] shift;
    reg [7:0] mem [0:15];
    integer i;

    assign sum = a + b;
    assign muxed = sel ? a : b;

    always @(posedge clk) begin
        if (rst) begin
            acc <= 0;
            shift <= 0;
            for (i = 0; i < 16; i = i + 1)
                mem[i] <= 0;
        end else begin
            acc <= acc + muxed;
            shift[0] <= sel;
            shift[3:1] <= shift[2:0];
            mem[a[3:0]] <= b;
        end
    end
endmodule
"""

TOGGLER_VHDL = """
entity toggler is
  generic (W : integer := 8);
  port (
    clk : in bit;
    rst : in bit;
    d   : in bit_vector(7 downto 0);
    q   : out bit_vector(7 downto 0);
    tog : out bit
  );
end entity;

architecture rtl of toggler is
  signal state : bit_vector(7 downto 0);
  signal t : bit;
begin
  q <= state xor d;
  tog <= t;
  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state <= (others => '0');
        t <= '0';
      else
        state <= d;
        t <= not t;
      end if;
    end if;
  end process;
end architecture;
"""


def _sim_pair(module):
    """Two simulators over one shared design, one per backend."""
    cg = RTLSimulator(module, backend="codegen")
    it = RTLSimulator(module, backend="interp")
    assert cg.backend == "codegen", "expected the codegen fast path here"
    assert it.backend == "interp"
    return cg, it


def _stimulus_signals(module):
    return [s for s in module.inputs if s.name not in ("clk", "clock")]


def _assert_states_equal(cg, it, cycle):
    __tracebackhide__ = True
    if cg.values != it.values:
        diffs = [
            f"  {s.name}: codegen={cg.values[s.index]:#x} "
            f"interp={it.values[s.index]:#x}"
            for s in cg.module.signals.values()
            if cg.values[s.index] != it.values[s.index]
        ]
        pytest.fail(f"signal divergence at cycle {cycle}:\n" + "\n".join(diffs))
    if cg.mems != it.mems:
        diffs = [
            f"  {m.name}[{a}]: codegen={x:#x} interp={y:#x}"
            for m in cg.module.memories.values()
            for a, (x, y) in enumerate(zip(cg.mems[m.index], it.mems[m.index]))
            if x != y
        ]
        pytest.fail(f"memory divergence at cycle {cycle}:\n" + "\n".join(diffs))


def run_differential(module, cycles, seed, reset="rst"):
    """Lock-step both backends under identical random stimulus."""
    cg, it = _sim_pair(module)
    for sim in (cg, it):
        sim.reset(reset)
    rng = random.Random(seed)
    stim = _stimulus_signals(module)
    _assert_states_equal(cg, it, "reset")
    for cycle in range(cycles):
        for sig in stim:
            val = rng.getrandbits(sig.width)
            cg.values[sig.index] = val
            it.values[sig.index] = val
        cg.settle()
        it.settle()
        _assert_states_equal(cg, it, f"{cycle} (post-settle)")
        cg.tick()
        it.tick()
        _assert_states_equal(cg, it, cycle)


# -- the example designs --------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2])
def test_pmu_differential(seed):
    module = compile_verilog(load_pmu_source(), top="pmu")
    run_differential(module, cycles=2000, seed=seed)


def test_rtlcache_differential():
    module = compile_verilog(load_rtl_cache_source(), top="rtl_cache",
                             params={"IDXW": 4})
    run_differential(module, cycles=3000, seed=3)


def test_bitonic_differential():
    module = compile_vhdl(load_bitonic_source(), top="bitonic8",
                          params={"W": 16})
    run_differential(module, cycles=1500, seed=4)


def test_generated_verilog_differential():
    module = compile_verilog(MIXER_V, top="mixer")
    run_differential(module, cycles=1500, seed=5)


def test_generated_vhdl_differential():
    module = compile_vhdl(TOGGLER_VHDL, top="toggler")
    run_differential(module, cycles=1500, seed=6)


# -- VCD equivalence ------------------------------------------------------

def test_vcd_output_identical_across_backends():
    """With tracing on, both backends must dump the very same waveform."""
    module = compile_verilog(MIXER_V, top="mixer")
    dumps = []
    for backend in ("codegen", "interp"):
        stream = io.StringIO()
        sim = RTLSimulator(
            module,
            trace=VCDWriter(module, stream=stream, enabled=True),
            backend=backend,
        )
        sim.reset("rst")
        rng = random.Random(7)
        for _ in range(200):
            for sig in _stimulus_signals(module):
                sim.values[sig.index] = rng.getrandbits(sig.width)
            sim.settle()
            sim.tick()
        dumps.append(stream.getvalue())
    assert dumps[0] == dumps[1]
