"""Tier-(b) kernel partitioning: plan shape, equivalence, fast paths."""

import random

import pytest

from repro.hdl.common import CoverageOptions
from repro.hdl.verilog import compile_verilog
from repro.rtl.parallel.partition import (
    PartitionError,
    PartitionedSimulator,
    partition_module,
)
from repro.rtl.parallel.pool import pool_available
from repro.rtl.simulator import RTLSimulator
from repro.verify import get_design

TWO_COUNTERS = """
module twocnt(input clk, input rst, input en_a, input en_b,
              output reg [7:0] a, output reg [7:0] b);
  always @(posedge clk) begin
    if (rst) a <= 8'd0; else if (en_a) a <= a + 8'd1;
  end
  always @(posedge clk) begin
    if (rst) b <= 8'd0; else if (en_b) b <= b + 8'd3;
  end
endmodule
"""

CROSS_COUPLED = """
module xcpl(input clk, input rst, input [7:0] x,
            output reg [7:0] a, output reg [7:0] b,
            output [8:0] s);
  wire [7:0] na;
  wire [7:0] nb;
  assign na = b + x;
  assign nb = a ^ x;
  always @(posedge clk) begin
    if (rst) a <= 8'd0; else a <= na;
  end
  always @(posedge clk) begin
    if (rst) b <= 8'd0; else b <= nb;
  end
  assign s = a + b;
endmodule
"""

SINGLE_PROC = """
module single(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0; else q <= q + 4'd1;
  end
endmodule
"""


def _drive_random(sims, module, seed, cycles):
    """Poke identical random inputs into every sim, tick, compare."""
    rng = random.Random(seed)
    inputs = [s for s in module.inputs if s.name not in ("clk", "rst")]
    for sim in sims:
        sim.reset()
    _compare(sims, module)
    for cyc in range(cycles):
        vals = {s.name: rng.getrandbits(64) & s.mask for s in inputs}
        for sim in sims:
            for name, val in vals.items():
                sim.poke(name, val)
            sim.tick()
        _compare(sims, module, cyc)


def _compare(sims, module, cyc=-1):
    ref = sims[0]
    for other in sims[1:]:
        for sig in module.visible_signals():
            assert (ref.values[sig.index] & sig.mask
                    == other.values[sig.index] & sig.mask), \
                f"cycle {cyc}: {sig.name} diverged"


class TestPlanShape:
    def test_bitonic_plan_covers_every_proc_exactly_once(self):
        module = get_design("bitonic").compile()
        plan = partition_module(module, 2)
        assert len(plan.parts) == 2
        comb, sync = [], []
        for p in plan.parts:
            comb += p.comb_procs
            sync += p.sync_procs
        assert sorted(comb) == list(range(len(module.comb_procs)))
        assert sorted(sync) == list(range(len(module.sync_procs)))
        assert plan.balance >= 1.0

    def test_owned_sets_are_disjoint_and_cover_owner_of(self):
        module = get_design("bitonic").compile()
        plan = partition_module(module, 2)
        seen = set()
        for pi, p in enumerate(plan.parts):
            assert not (seen & set(p.owned)), "two parts own one signal"
            seen |= set(p.owned)
            for sig in p.owned:
                assert plan.owner_of[sig] == pi

    def test_boundary_excludes_module_inputs(self):
        module = compile_verilog(CROSS_COUPLED, top="xcpl")
        plan = partition_module(module, 2)
        assert plan.boundary, "cross-coupled design must have a cut"
        input_idx = {s.index for s in module.inputs}
        assert not (set(plan.boundary) & input_idx)

    def test_plan_is_deterministic(self):
        module = get_design("bitonic").compile()
        assert partition_module(module, 2) == partition_module(module, 2)


class TestEligibility:
    def test_memories_rejected(self):
        module = get_design("pmu").compile()
        with pytest.raises(PartitionError, match="memories"):
            partition_module(module, 2)

    def test_k_below_two_rejected(self):
        module = compile_verilog(TWO_COUNTERS, top="twocnt")
        with pytest.raises(PartitionError, match="at least 2"):
            partition_module(module, 1)

    def test_single_unit_design_rejected(self):
        module = compile_verilog(SINGLE_PROC, top="single")
        with pytest.raises(PartitionError, match="single schedulable"):
            partition_module(module, 2)

    def test_make_sim_surfaces_partition_error(self):
        with pytest.raises(PartitionError):
            get_design("pmu").make_sim(backend="partitioned")


class TestEquivalence:
    def test_cross_coupled_in_process_matches_interp(self):
        module = compile_verilog(CROSS_COUPLED, top="xcpl")
        ref = RTLSimulator(module, backend="interp")
        cut = PartitionedSimulator(module, parts=2, use_pool=False)
        _drive_random([ref, cut], module, seed=1, cycles=40)

    def test_bitonic_in_process_matches_interp(self):
        module = get_design("bitonic").compile()
        ref = RTLSimulator(module, backend="interp")
        cut = PartitionedSimulator(module, parts=2, use_pool=False)
        _drive_random([ref, cut], module, seed=2, cycles=15)

    @pytest.mark.skipif(not pool_available(), reason="no fork")
    def test_pooled_matches_in_process(self):
        module = compile_verilog(CROSS_COUPLED, top="xcpl")
        local = PartitionedSimulator(module, parts=2, use_pool=False)
        with PartitionedSimulator(module, parts=2, use_pool=True) as pooled:
            assert pooled._pool is not None
            _drive_random([local, pooled], module, seed=3, cycles=20)

    def test_coverage_counters_merge_bit_identically(self):
        design = get_design("bitonic")
        module_a = design.compile(instrument=CoverageOptions())
        module_b = design.compile(instrument=CoverageOptions())
        ref = RTLSimulator(module_a, backend="interp")
        cut = PartitionedSimulator(module_b, parts=2, use_pool=False)
        _drive_random([ref, cut], module_a, seed=4, cycles=10)
        cov = [pt.index for pt in module_a.coverage_points]
        assert cov, "instrumented build must have coverage counters"
        assert ([ref.values[i] for i in cov]
                == [cut.values[i] for i in cov])


class TestFastPathsAndState:
    def test_boundary_free_design_batches_autonomously(self):
        module = compile_verilog(TWO_COUNTERS, top="twocnt")
        plan = partition_module(module, 2)
        assert plan.boundary == ()
        ref = RTLSimulator(module, backend="interp")
        cut = PartitionedSimulator(module, parts=2, use_pool=False,
                                   plan=plan)
        for sim in (ref, cut):
            sim.reset()
            sim.poke("en_a", 1)
            sim.poke("en_b", 1)
            sim.run_cycles(37)
        assert cut.peek("a") == ref.peek("a") == 37 & 0xFF
        assert cut.peek("b") == ref.peek("b") == (37 * 3) & 0xFF
        assert cut.cycle == ref.cycle

    def test_run_cycles_guards(self):
        module = compile_verilog(TWO_COUNTERS, top="twocnt")
        cut = PartitionedSimulator(module, parts=2, use_pool=False)
        with pytest.raises(ValueError):
            cut.run_cycles(-1)
        cut.run_cycles(0)
        assert cut.cycle == 0

    def test_internal_poke_reaches_workers(self):
        # Poking an *owned* register pushes the master's state to the
        # workers; with a settle the poked value propagates through the
        # cut exactly as it would through the serial backends.
        module = compile_verilog(CROSS_COUPLED, top="xcpl")
        ref = RTLSimulator(module, backend="interp")
        cut = PartitionedSimulator(module, parts=2, use_pool=False)
        for sim in (ref, cut):
            sim.reset()
            sim.poke("a", 0x55)     # owned register, not an input
            sim.poke("x", 0)
            sim.settle()            # nb = a ^ x recomputed across the cut
            sim.tick()              # b <= nb samples the settled value
        assert cut.peek("b") == ref.peek("b") == 0x55

    def test_checkpoint_roundtrip_resumes_identically(self):
        module = compile_verilog(CROSS_COUPLED, top="xcpl")
        cut = PartitionedSimulator(module, parts=2, use_pool=False)
        cut.reset()
        cut.poke("x", 0x21)
        cut.tick(5)
        ckpt = cut.save_checkpoint()
        cut.tick(7)
        final = list(cut.values)
        cut.restore_checkpoint(ckpt)
        assert cut.cycle == ckpt.cycle
        cut.tick(7)
        assert list(cut.values) == final
