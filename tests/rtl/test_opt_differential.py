"""Differential test battery gating the netlist optimiser.

Every bundled design × every opt level runs identical stimulus through
the unoptimized interpreter (the semantic reference), ``-O0`` codegen
and optimized codegen, demanding cycle-exact equality of every visible
signal and memory word.  The optimiser is only allowed to ship while
this battery stays green — same contract the lockstep equivalence
checker (PR 5) enforces between backends, extended across opt levels.
"""

from __future__ import annotations

import pytest

from repro.hdl.common import CoverageOptions, ElabOptions
from repro.verify import CoverageCollector, Stimulus, check_equivalence
from repro.verify.designs import DESIGNS

LEVELS = (0, 1, 2)
ALL = sorted(DESIGNS)


def _design_level_params():
    return [pytest.param(d, lv, id=f"{d}-O{lv}") for d in ALL for lv in LEVELS]


class TestLockstepEquivalence:
    """Interpreter (-O0) vs codegen at each level, cycle by cycle."""

    @pytest.mark.parametrize("name,level", _design_level_params())
    def test_design_matches_reference(self, name, level):
        design = DESIGNS[name]
        res = check_equivalence(
            lambda backend: design.make_sim(backend=backend,
                                            opt_level=level),
            design=name,
            seed=0xD1FF + level,
            random_runs=2,
            cycles=48,
            make_ref=lambda: design.make_sim(backend="interp"),
        )
        assert res.ok, res.format()

    def test_pmu_actually_compares(self):
        """Guard against the whole battery silently degrading to skips."""
        design = DESIGNS["pmu"]
        res = check_equivalence(
            lambda backend: design.make_sim(backend=backend, opt_level=2),
            design="pmu", random_runs=1, cycles=16,
            make_ref=lambda: design.make_sim(backend="interp"),
        )
        assert not res.skipped
        assert res.cycles_checked > 0


class TestBatchQuiescence:
    """Long frozen-input batches exercise the quiescence fast path and
    cone guards; state must still match the reference word for word."""

    @pytest.mark.parametrize("name", ALL)
    def test_frozen_input_batch(self, name):
        design = DESIGNS[name]
        opt = design.make_sim(backend="codegen", opt_level=2)
        ref = design.make_sim(backend="interp")
        drivable = sorted(
            (s for s in opt.module.inputs
             if s.name not in ("clk", "rst", "reset", "rst_n", "reset_n")),
            key=lambda s: s.name,
        )
        import random
        rng = random.Random(0xBA7C)
        stimulus = [
            {s.name: rng.getrandbits(s.width) for s in drivable}
            for _ in range(8)
        ]
        for sim in (opt, ref):
            sim.reset()
            for pokes in stimulus:          # warm up with moving inputs
                for sig, val in pokes.items():
                    sim.poke(sig, val)
                sim.tick()
            sim.run_cycles(600)             # then a long frozen batch
        assert opt.cycle == ref.cycle
        assert opt.values == ref.values
        assert opt.mems == ref.mems


class TestCoverageIdentity:
    """Coverage counts are part of the contract: every level, every
    design, both backends must report bit-identical coverage."""

    @pytest.mark.parametrize("name,level", _design_level_params())
    def test_reports_identical(self, name, level):
        design = DESIGNS[name]
        docs = []
        for backend, lv in (("interp", 0), ("codegen", level)):
            sim = design.make_sim(backend=backend,
                                  instrument=CoverageOptions(), opt_level=lv)
            collector = CoverageCollector(sim)
            Stimulus("uniform", 0xC0F, 96).apply(sim, collector)
            doc = collector.report().to_dict()
            doc.pop("backend")
            docs.append(doc)
        assert docs[0] == docs[1]


class TestStructuralInvariants:
    @pytest.mark.parametrize("name", ALL)
    def test_signal_table_unchanged_by_optimisation(self, name):
        """Cross-level comparison (and VCD replay) relies on the
        optimiser never renaming, renumbering or dropping signals."""
        design = DESIGNS[name]
        base = design.compile()
        opt = design.compile(opt_level=2)
        assert {n: (s.index, s.width) for n, s in base.signals.items()} == \
               {n: (s.index, s.width) for n, s in opt.signals.items()}
        assert [(m.name, m.depth, m.width) for m in base.memories.values()] \
            == [(m.name, m.depth, m.width) for m in opt.memories.values()]

    @pytest.mark.parametrize("name", ALL)
    def test_opt_stats_present(self, name):
        m = DESIGNS[name].compile(opt_level=2)
        assert set(m.opt_stats) == {"const_fold", "dedup", "dce", "activity"}


class TestCheckpointAtO2:
    def test_restore_rejoins_reference_trace(self):
        """Checkpoint/restore mid-batch at -O2 must rejoin the exact
        trace — stale activity keys after restore would diverge here."""
        design = DESIGNS["pmu"]
        opt = design.make_sim(backend="codegen", opt_level=2)
        ref = design.make_sim(backend="interp")
        for sim in (opt, ref):
            sim.reset("rst")
            sim.poke("events", 0x3)
            sim.settle()
            sim.run_cycles(40)
        ckpt = opt.save_checkpoint()
        opt.poke("events", 0x1F)
        opt.run_cycles(25)                  # wander off the trace...
        opt.restore_checkpoint(ckpt)        # ...and come back
        opt.poke("events", 0x3)
        opt.settle()
        for sim in (opt, ref):
            sim.run_cycles(100)
        assert opt.values == ref.values
        assert opt.mems == ref.mems
