"""The example applications must run end-to-end (they assert internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "quickstart OK" in out

    def test_bitonic_sorting(self):
        out = run_example("bitonic_sorting.py")
        assert "sorted 64/64 vectors" in out

    def test_rtl_cache_in_soc(self):
        out = run_example("rtl_cache_in_soc.py")
        assert "write-through data verified" in out

    def test_pmu_monitoring_small(self):
        out = run_example("pmu_monitoring.py", "40")
        assert "windows agree within" in out

    @pytest.mark.slow
    def test_nvdla_dse_small(self):
        out = run_example("nvdla_dse.py", "sanity3", "1", timeout=600)
        assert "normalized to ideal" in out
