"""run_points: ordering, retry semantics, crash recovery, bounds."""

import os

import pytest

from repro.parallel import (
    PointFailure,
    ProgressReporter,
    RunStats,
    WorkerCrashError,
    run_points,
)

# Workers are module-level so they pickle into pool processes.


def _square(point):
    return point * point


def _flaky(point):
    """Raise until a sentinel file exists (state survives across
    attempts because it lives on disk, not in the worker)."""
    sentinel, value = point
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("seen")
        raise ValueError("transient failure")
    return value


def _always_raises(point):
    raise RuntimeError(f"cannot process {point}")


def _hard_crash_once(point):
    """Die like a segfault on first sight of the point; succeed after."""
    sentinel, value = point
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("seen")
        os._exit(13)
    return value


def _always_crashes(point):
    os._exit(13)


class TestSerial:
    def test_results_in_submission_order(self):
        assert run_points([3, 1, 2], _square, jobs=1) == [9, 1, 4]

    def test_empty(self):
        assert run_points([], _square, jobs=4) == []

    def test_soft_failure_retried(self, tmp_path):
        point = (str(tmp_path / "s"), 7)
        stats = RunStats()
        assert run_points([point], _flaky, jobs=1, stats=stats) == [7]
        assert stats.soft_retries == 1

    def test_soft_failure_bounded(self):
        with pytest.raises(PointFailure) as err:
            run_points([5], _always_raises, jobs=1, max_attempts=2)
        assert err.value.attempts == 2
        assert "cannot process 5" in err.value.last_error

    def test_progress_updates(self):
        class Spy:
            calls = 0

            def update(self, note=""):
                Spy.calls += 1

        run_points([1, 2, 3], _square, jobs=1, progress=Spy())
        assert Spy.calls == 3

    def test_bad_max_attempts_rejected(self):
        with pytest.raises(ValueError):
            run_points([1], _square, max_attempts=0)


class TestParallel:
    def test_matches_serial(self):
        points = list(range(17))
        assert run_points(points, _square, jobs=4) == \
            run_points(points, _square, jobs=1)

    def test_soft_failure_retried(self, tmp_path):
        points = [(str(tmp_path / f"s{i}"), i) for i in range(5)]
        stats = RunStats()
        assert run_points(points, _flaky, jobs=3, stats=stats) == list(range(5))
        assert stats.soft_retries == 5

    def test_soft_failure_bounded(self):
        with pytest.raises(PointFailure):
            run_points([1, 2], _always_raises, jobs=2, max_attempts=3)

    def test_worker_crash_retried(self, tmp_path):
        # Worst case one crash-marked point per pool restart, so give
        # the restart budget headroom over the point count.
        points = [(str(tmp_path / f"c{i}"), i * 10) for i in range(3)]
        stats = RunStats()
        result = run_points(points, _hard_crash_once, jobs=2,
                            max_attempts=5, stats=stats)
        assert result == [0, 10, 20]
        assert stats.pool_restarts >= 1

    def test_worker_crash_bounded(self):
        with pytest.raises(WorkerCrashError):
            run_points([1, 2, 3], _always_crashes, jobs=2, max_attempts=2)

    def test_progress_counts_every_point(self, capsys):
        progress = ProgressReporter(6, label="t")
        run_points(list(range(6)), _square, jobs=3, progress=progress)
        assert progress.done == 6
        assert "[t 6/6] 100%" in capsys.readouterr().err
