"""Regression tests for three sweep-runner bugs.

1. **Timeout starvation** — expiry was only scanned when ``wait()``
   returned empty, so one hung worker evaded ``point_timeout`` for as
   long as fast neighbours kept completing (every completion made
   ``wait()`` return early).  Detection must land within
   ``point_timeout`` + scheduling slack even with a busy queue.
2. **Env clobbering** — ``_guarded`` popped the env keys it exported
   instead of restoring the prior values, so a serial sweep erased an
   operator's pre-set ``REPRO_POINT_CKPT_DIR``.
3. **Discarded completions** — a future that finished between
   ``wait()`` returning and the expiry scan was treated as hung (or
   requeued as an innocent) and its finished work thrown away; the
   scan must harvest done futures before killing the pool.

All scenarios are marker-file driven and use sub-second timeouts.
"""

import os
import time

from repro.parallel import RunStats, run_points
from repro.parallel import runner as runner_mod
from repro.parallel.runner import POINT_CKPT_ENV, _guarded


def _sweep_worker(point):
    """(log_dir, value, hang_me, sleep_s): log one start-timestamp line
    per execution, hang 60s on the flagged point's first run only."""
    log_dir, value, hang_me, sleep_s = point
    with open(os.path.join(log_dir, f"start-{value}"), "a",
              encoding="utf-8") as fh:
        fh.write(f"{time.monotonic()}\n")
    flag = os.path.join(log_dir, f"hang-flag-{value}")
    if hang_me and not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8") as fh:
            fh.write("hung\n")
        time.sleep(60)
    if sleep_s:
        time.sleep(sleep_s)
    return value * 10


def _starts(tmp_path, value):
    path = tmp_path / f"start-{value}"
    if not path.exists():
        return []
    return [float(line) for line in path.read_text().splitlines()]


class TestTimeoutStarvation:
    def test_hang_detected_despite_fast_neighbours(
            self, tmp_path, monkeypatch):
        """A hung point with a deep queue of fast points behind it must
        be killed ~point_timeout after it started — not after the fast
        queue drains.  The kill time is observed directly by wrapping
        the pool-kill hook."""
        kill_times: list[float] = []
        real_kill = runner_mod._kill_pool

        def logged_kill(pool):
            kill_times.append(time.monotonic())
            real_kill(pool)

        monkeypatch.setattr(runner_mod, "_kill_pool", logged_kill)
        timeout = 0.5
        points = [(str(tmp_path), 0, True, 0.0)] + [
            (str(tmp_path), i, False, 0.3) for i in range(1, 13)
        ]
        stats = RunStats()
        t0 = time.monotonic()
        results = run_points(points, _sweep_worker, jobs=2,
                             point_timeout=timeout, max_attempts=3,
                             stats=stats)
        assert results == [v * 10 for v in range(13)]
        assert stats.timeout_kills == 1
        assert len(_starts(tmp_path, 0)) == 2   # hang killed, then retried
        # Detection must land ~point_timeout after the hung point
        # started.  With the starvation bug the deadline is only
        # consulted once the 12 fast points stop making wait() return
        # early — i.e. after they drain through the one surviving
        # worker (>= 12 * 0.3s = 3.6s).
        assert kill_times, "pool was never killed"
        assert kill_times[0] - t0 < timeout + 1.0

    def test_fast_points_requeued_at_kill_keep_no_attempt_charge(
            self, tmp_path):
        points = [(str(tmp_path), 0, True, 0.0)] + [
            (str(tmp_path), i, False, 0.3) for i in range(1, 7)
        ]
        stats = RunStats()
        results = run_points(points, _sweep_worker, jobs=3,
                             point_timeout=0.5, max_attempts=2,
                             stats=stats)
        assert results == [v * 10 for v in range(7)]
        for i, n in stats.requeues.items():
            if n:
                assert stats.attempts.get(i, 1) <= 1


class TestEnvRestore:
    def test_serial_sweep_restores_preexisting_ckpt_env(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(POINT_CKPT_ENV, "operator-preset")
        run_points([0, 1], lambda p: p, jobs=1,
                   checkpoint_dir=str(tmp_path))
        # the sweep exports per-point dirs while running, but must put
        # the operator's value back — not pop the key
        assert os.environ[POINT_CKPT_ENV] == "operator-preset"

    def test_guarded_restores_value_and_absence(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_A", "before")
        monkeypatch.delenv("REPRO_TEST_B", raising=False)
        status, payload = _guarded(
            lambda p: (os.environ["REPRO_TEST_A"], os.environ["REPRO_TEST_B"]),
            None, env={"REPRO_TEST_A": "during", "REPRO_TEST_B": "during"},
        )
        assert (status, payload) == ("ok", ("during", "during"))
        assert os.environ["REPRO_TEST_A"] == "before"
        assert "REPRO_TEST_B" not in os.environ

    def test_guarded_restores_on_worker_exception(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_A", "before")

        def boom(point):
            raise ValueError("no")

        status, _tb = _guarded(boom, None, env={"REPRO_TEST_A": "during"})
        assert status == "err"
        assert os.environ["REPRO_TEST_A"] == "before"


class TestExpiryHarvest:
    def test_completed_future_is_harvested_not_discarded(
            self, tmp_path, monkeypatch):
        """p1 finishes *after* its deadline but *before* the expiry
        scan (the wait->scan gap is widened deterministically).  Its
        result must be harvested — not discarded and re-run."""
        real_wait = runner_mod.wait

        def laggy_wait(fs, timeout=None, return_when=None):
            done, not_done = real_wait(fs, timeout=timeout,
                                       return_when=return_when)
            time.sleep(0.45)   # widen the race window
            return done, not_done

        monkeypatch.setattr(runner_mod, "wait", laggy_wait)
        points = [
            (str(tmp_path), 0, True, 0.0),    # hangs on first attempt
            (str(tmp_path), 1, False, 0.7),   # done at 0.7s, scan ~0.95s
        ]
        stats = RunStats()
        results = run_points(points, _sweep_worker, jobs=2,
                             point_timeout=0.5, max_attempts=2,
                             stats=stats)
        assert results == [0, 10]
        # p1 ran exactly once: its completed result was picked up at
        # the expiry scan instead of being requeued with the kill
        assert len(_starts(tmp_path, 1)) == 1
        # and only the genuinely hung point was charged a kill
        assert stats.timeout_kills == 1
        assert stats.attempts.get(1, 0) == 0
        assert stats.requeues.get(1, 0) == 0

    def test_overdeadline_but_done_is_a_result_not_a_hang(
            self, tmp_path, monkeypatch):
        """With max_attempts=1 the old behaviour failed the sweep: the
        done-but-overdue future was charged a timeout kill with no
        attempts left.  It must succeed."""
        real_wait = runner_mod.wait

        def laggy_wait(fs, timeout=None, return_when=None):
            done, not_done = real_wait(fs, timeout=timeout,
                                       return_when=return_when)
            time.sleep(0.45)
            return done, not_done

        monkeypatch.setattr(runner_mod, "wait", laggy_wait)
        points = [
            (str(tmp_path), 0, True, 0.0),
            (str(tmp_path), 1, False, 0.7),
        ]
        results = run_points(points, _sweep_worker, jobs=2,
                             point_timeout=0.5, max_attempts=2,
                             keep_going=True, stats=RunStats())
        assert results[1] == 10
