"""Progress line: ETA rendering and stale-character padding."""

import io

from repro.parallel import ProgressReporter


def _last_paint(stream: io.StringIO) -> str:
    """The most recent self-overwriting line (after the final ``\\r``)."""
    return stream.getvalue().split("\r")[-1]


class TestEta:
    def test_eta_none_before_first_update(self):
        rep = ProgressReporter(5, stream=io.StringIO())
        assert rep.eta() is None

    def test_zero_eta_still_rendered(self, monkeypatch):
        out = io.StringIO()
        rep = ProgressReporter(5, stream=out)
        # instant points produce a legitimate 0.0 ETA — it must be shown
        monkeypatch.setattr(rep, "eta", lambda: 0.0)
        rep.update()
        assert "eta 0.0s" in _last_paint(out)

    def test_no_eta_on_final_update(self):
        out = io.StringIO()
        rep = ProgressReporter(1, stream=out)
        rep.update()
        assert "eta" not in out.getvalue()

    def test_final_update_appends_newline(self):
        out = io.StringIO()
        rep = ProgressReporter(2, stream=out)
        rep.update()
        assert not out.getvalue().endswith("\n")
        rep.update()
        assert out.getvalue().endswith("\n")


class TestPadding:
    def test_long_note_fully_overwritten_by_next_paint(self):
        out = io.StringIO()
        rep = ProgressReporter(3, stream=out)
        rep.update(note="point DDR4-4ch inflight=240 " + "x" * 60)
        long_len = len(_last_paint(out))
        assert long_len > 60  # the note exceeded the fixed field
        rep.update()
        # the next paint must blank every column the long line used
        assert len(_last_paint(out)) >= long_len

    def test_minimum_width_preserved(self):
        out = io.StringIO()
        rep = ProgressReporter(3, stream=out)
        rep.update()
        assert len(_last_paint(out)) >= 60

    def test_progress_text_content(self):
        out = io.StringIO()
        rep = ProgressReporter(4, label="dse", stream=out)
        rep.update(note="pt1")
        line = _last_paint(out)
        assert "[dse 1/4]" in line
        assert "25%" in line
        assert "pt1" in line
