"""ResultCache: keying, hits/misses, invalidation, corruption handling."""

import json
import pytest
import os
import time

import repro.parallel.cache as cache_mod
from repro.parallel import ResultCache, code_version
from repro.parallel.cache import default_cache_dir


class TestCodeVersion:
    def test_stable_within_process(self):
        assert code_version() == code_version()

    def test_shape(self):
        v = code_version()
        assert len(v) == 16
        int(v, 16)  # hex digest


class TestKeying:
    def test_same_fields_same_key(self, tmp_path):
        c = ResultCache(tmp_path)
        assert c.key(a=1, b="x") == c.key(b="x", a=1)

    def test_different_fields_different_key(self, tmp_path):
        c = ResultCache(tmp_path)
        assert c.key(a=1) != c.key(a=2)
        assert c.key(a=1) != c.key(a=1, b=0)

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        c = ResultCache(tmp_path)
        before = c.key(a=1)
        monkeypatch.setattr(cache_mod, "code_version", lambda: "f" * 16)
        assert c.key(a=1) != before


class TestStore:
    def test_roundtrip(self, tmp_path):
        c = ResultCache(tmp_path)
        key = c.key(point="p1")
        assert c.get(key) is None
        c.put(key, {"ticks": 123, "seconds": 0.5}, meta={"point": "p1"})
        assert c.get(key) == {"ticks": 123, "seconds": 0.5}
        assert c.stats.misses == 1
        assert c.stats.hits == 1
        assert c.stats.stores == 1

    def test_entries_survive_new_instance(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put(first.key(x=1), 42)
        second = ResultCache(tmp_path)
        assert second.get(second.key(x=1)) == 42

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        c = ResultCache(tmp_path)
        key = c.key(x=1)
        c.put(key, 1)
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
            assert c.get(key) is None
        assert c.stats.errors == 1

    def test_truncated_entry_is_a_miss_with_warning(self, tmp_path):
        """A worker killed mid-`os.replace` window (or a torn disk
        write) leaves a prefix of valid JSON; must warn, miss, and be
        healable by a fresh put."""
        c = ResultCache(tmp_path)
        key = c.key(x=2)
        c.put(key, {"ticks": 12345})
        path = tmp_path / f"{key}.json"
        blob = path.read_text(encoding="utf-8")
        path.write_text(blob[: len(blob) // 2], encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="treated as a miss"):
            assert c.get(key) is None
        assert c.stats.errors == 1 and c.stats.misses == 1
        c.put(key, {"ticks": 12345})          # overwrite heals the entry
        assert c.get(key) == {"ticks": 12345}

    def test_wrong_shape_json_is_a_miss_with_warning(self, tmp_path):
        """Valid JSON that is not our {meta, payload} dict (e.g. a bare
        list) must be a warned miss, not a TypeError crash."""
        c = ResultCache(tmp_path)
        key = c.key(x=3)
        for wrong in ("[1, 2, 3]", '"a string"', '{"meta": {}}'):
            (tmp_path / f"{key}.json").write_text(wrong, encoding="utf-8")
            with pytest.warns(RuntimeWarning):
                assert c.get(key) is None

    def test_entry_file_is_inspectable_json(self, tmp_path):
        c = ResultCache(tmp_path)
        key = c.key(workload="sanity3")
        c.put(key, {"ticks": 9}, meta={"workload": "sanity3"})
        entry = json.loads((tmp_path / f"{key}.json").read_text())
        assert entry["meta"]["workload"] == "sanity3"
        assert entry["payload"]["ticks"] == 9

    def test_clear(self, tmp_path):
        c = ResultCache(tmp_path)
        for i in range(3):
            c.put(c.key(i=i), i)
        assert c.clear() == 3
        assert c.get(c.key(i=0)) is None

    def test_put_leaves_no_temp_file(self, tmp_path):
        c = ResultCache(tmp_path)
        c.put(c.key(x=1), {"v": 1})
        assert not list(tmp_path.glob("*.tmp"))


class TestTmpReap:
    @staticmethod
    def _age(path, seconds):
        past = time.time() - seconds
        os.utime(path, (past, past))

    def test_stale_tmp_reaped_on_construction(self, tmp_path):
        orphan = tmp_path / "tmpdead123.tmp"
        orphan.write_text("{torn", encoding="utf-8")
        self._age(orphan, 7200)  # older than the 1h default grace
        ResultCache(tmp_path)
        assert not orphan.exists()

    def test_fresh_tmp_survives_construction(self, tmp_path):
        # a young .tmp may be another live worker's in-flight write
        inflight = tmp_path / "tmplive456.tmp"
        inflight.write_text("{partial", encoding="utf-8")
        ResultCache(tmp_path)
        assert inflight.exists()

    def test_reap_honours_custom_age(self, tmp_path):
        orphan = tmp_path / "tmpx.tmp"
        orphan.write_text("", encoding="utf-8")
        self._age(orphan, 10)
        ResultCache(tmp_path, tmp_max_age_s=5.0)
        assert not orphan.exists()

    def test_clear_removes_tmp_files_unconditionally(self, tmp_path):
        c = ResultCache(tmp_path)
        c.put(c.key(x=1), 1)
        fresh = tmp_path / "tmpfresh.tmp"
        fresh.write_text("", encoding="utf-8")
        assert c.clear() == 2  # one entry + one temp file
        assert not fresh.exists()
        assert not list(tmp_path.glob("*"))

    def test_reap_missing_root_is_noop(self, tmp_path):
        c = ResultCache(tmp_path / "never_created")
        assert c.reap_stale_tmp() == 0

    def test_periodic_reap_after_n_puts(self, tmp_path):
        """A long-lived writer (the serve layer) must keep reaping:
        every ``reap_every_puts`` stores triggers a sweep, so orphans
        left by workers killed mid-write don't accumulate forever."""
        c = ResultCache(tmp_path, reap_every_puts=3)
        orphan = tmp_path / "tmporphan.tmp"
        orphan.write_text("{torn", encoding="utf-8")
        self._age(orphan, 7200)
        c.put(c.key(i=0), 0)
        c.put(c.key(i=1), 1)
        assert orphan.exists()          # interval not reached yet
        c.put(c.key(i=2), 2)
        assert not orphan.exists()

    def test_periodic_reap_spares_fresh_tmp(self, tmp_path):
        c = ResultCache(tmp_path, reap_every_puts=1)
        inflight = tmp_path / "tmplive.tmp"
        inflight.write_text("{partial", encoding="utf-8")
        c.put(c.key(i=0), 0)
        assert inflight.exists()

    def test_periodic_reap_disabled_with_zero(self, tmp_path):
        c = ResultCache(tmp_path, reap_every_puts=0)
        orphan = tmp_path / "tmporphan.tmp"
        orphan.write_text("", encoding="utf-8")
        self._age(orphan, 7200)
        for i in range(5):
            c.put(c.key(i=i), i)
        assert orphan.exists()

    def test_manual_reap_resets_put_counter(self, tmp_path):
        c = ResultCache(tmp_path, reap_every_puts=2)
        c.put(c.key(i=0), 0)
        c.reap_stale_tmp()              # external sweep resets the clock
        orphan = tmp_path / "tmporphan.tmp"
        orphan.write_text("", encoding="utf-8")
        self._age(orphan, 7200)
        c.put(c.key(i=1), 1)
        assert orphan.exists()          # counter restarted at the sweep
        c.put(c.key(i=2), 2)
        assert not orphan.exists()


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"

    def test_repo_layout_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = default_cache_dir()
        assert path.parts[-3:] == ("benchmarks", "out", "cache")
