"""run_points resilience: keep_going, per-point timeouts, checkpoint env.

All hang/kill scenarios are driven by marker files (deterministic,
once-only across retries) and sub-second timeouts — no long sleeps.
"""

import os
import time

import pytest

from repro.parallel import (
    PointFailure,
    RunStats,
    WorkerCrashError,
    run_points,
)
from repro.parallel.runner import POINT_CKPT_ENV

# Workers are module-level so they pickle into pool processes.


def _square(point):
    return point * point


def _fails_on_three(point):
    if point == 3:
        raise ValueError("three is right out")
    return point


def _hang_once(point):
    """Hang (forever, from the timeout's point of view) the first time
    the marked point runs; succeed on the retry.  Clean points take a
    beat so neighbours of a hang are reliably still in flight when the
    timeout expires."""
    marker, value, hang_me = point
    if hang_me and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("hung")
        time.sleep(60)
    time.sleep(0.25)
    return value * 10


def _always_crashes(point):
    os._exit(13)


def _report_ckpt_env(point):
    return os.environ.get(POINT_CKPT_ENV)


class TestKeepGoing:
    def test_serial_records_sentinel_and_keeps_results(self):
        stats = RunStats()
        results = run_points([1, 2, 3, 4], _fails_on_three, jobs=1,
                             max_attempts=2, keep_going=True, stats=stats)
        assert results[0:2] == [1, 2] and results[3] == 4
        assert isinstance(results[2], PointFailure)
        assert results[2].point == 3
        assert results[2].attempts == 2
        assert stats.completed == 3
        assert stats.failed == 1
        assert stats.soft_retries == 1

    def test_pool_records_sentinel_and_keeps_results(self):
        stats = RunStats()
        results = run_points([1, 2, 3, 4], _fails_on_three, jobs=2,
                             max_attempts=2, keep_going=True, stats=stats)
        assert results[0:2] == [1, 2] and results[3] == 4
        assert isinstance(results[2], PointFailure)
        assert stats.failed == 1

    def test_without_keep_going_serial_raises(self):
        with pytest.raises(PointFailure):
            run_points([1, 2, 3], _fails_on_three, jobs=1, max_attempts=1)

    def test_keep_going_does_not_soften_pool_crashes(self):
        """A dying pool is an environment problem: keep_going must NOT
        turn WorkerCrashError into sentinels."""
        with pytest.raises(WorkerCrashError):
            run_points([1, 2], _always_crashes, jobs=2, max_attempts=2,
                       keep_going=True)


class TestPointTimeout:
    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        points = [(str(tmp_path / f"m{i}"), i, i == 1) for i in range(4)]
        stats = RunStats()
        t0 = time.monotonic()
        results = run_points(points, _hang_once, jobs=2, point_timeout=0.5,
                             max_attempts=3, stats=stats)
        elapsed = time.monotonic() - t0
        assert results == [0, 10, 20, 30]          # ordered, all completed
        assert stats.timeout_kills >= 1
        assert stats.attempts.get(1, 0) == 1       # the hang cost an attempt
        assert elapsed < 30                        # killed, not waited out

    def test_innocent_bystanders_not_charged(self, tmp_path):
        """Points killed alongside a hung neighbour are requeued without
        an attempt charge; the requeue is visible in RunStats."""
        points = [(str(tmp_path / f"m{i}"), i, i == 0) for i in range(6)]
        stats = RunStats()
        results = run_points(points, _hang_once, jobs=3, point_timeout=0.5,
                             max_attempts=2, stats=stats)
        assert results == [i * 10 for i in range(6)]
        innocent = [i for i, n in stats.requeues.items() if n > 0]
        for i in innocent:
            assert stats.attempts.get(i, 1) <= 1
        assert stats.timeout_kills == 1

    def test_timeout_exhaustion_is_a_point_failure(self, tmp_path):
        stats = RunStats()
        results = run_points(
            [(str(tmp_path / "m0"), 0, True), (str(tmp_path / "m1"), 1, False)],
            _hang_once, jobs=2, point_timeout=0.5, max_attempts=1,
            keep_going=True, stats=stats,
        )
        # no attempts left after the kill -> sentinel, sweep continues
        assert isinstance(results[0], PointFailure)
        assert "point_timeout" in results[0].last_error
        assert results[1] == 10
        assert stats.timeout_kills == 1 and stats.failed == 1

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            run_points([1], _square, jobs=2, point_timeout=0)


class TestInjectedWorkerFaults:
    """A parked FaultPlan's worker-side faults fire inside pool workers
    (fork-inherited), exercising the crash/timeout machinery end to end
    — the same path ``--inject worker-kill@I`` takes from the CLI."""

    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        from repro.resilience import control

        control.clear_pending()
        yield
        control.clear_pending()

    def test_worker_kill_restarts_pool_and_converges(self):
        from repro.resilience import FaultPlan, control

        control.set_pending_plan(FaultPlan.parse(["worker-kill@1"]))
        stats = RunStats()
        results = run_points([0, 1, 2, 3], _square, jobs=2,
                             max_attempts=3, stats=stats)
        assert results == [0, 1, 4, 9]
        assert stats.pool_restarts == 1     # the kill fired exactly once

    def test_worker_hang_is_killed_by_point_timeout(self):
        from repro.resilience import FaultPlan, control

        control.set_pending_plan(FaultPlan.parse(["worker-hang@1:30"]))
        stats = RunStats()
        results = run_points([0, 1, 2], _square, jobs=2,
                             point_timeout=0.5, max_attempts=3, stats=stats)
        assert results == [0, 1, 4]
        assert stats.timeout_kills == 1

    def test_serial_ignores_worker_faults(self):
        # in-process there is no worker to kill; the sweep must survive
        from repro.resilience import FaultPlan, control

        control.set_pending_plan(FaultPlan.parse(["worker-kill@0"]))
        assert run_points([0, 1], _square, jobs=1) == [0, 1]


class TestCheckpointDirContract:
    def test_serial_exports_per_point_dir(self, tmp_path):
        results = run_points([0, 1], _report_ckpt_env, jobs=1,
                             checkpoint_dir=str(tmp_path))
        assert results == [
            os.path.join(str(tmp_path), "point-0000"),
            os.path.join(str(tmp_path), "point-0001"),
        ]
        assert POINT_CKPT_ENV not in os.environ   # cleaned up after

    def test_pool_exports_per_point_dir(self, tmp_path):
        results = run_points(list(range(3)), _report_ckpt_env, jobs=2,
                             checkpoint_dir=str(tmp_path))
        assert results == [
            os.path.join(str(tmp_path), f"point-{i:04d}") for i in range(3)
        ]

    def test_no_dir_no_env(self):
        assert run_points([0], _report_ckpt_env, jobs=1) == [None]
