"""Full-config checkpoint round trips: PMU and NVDLA systems.

The restore half runs in a **fresh subprocess** — the strongest form of
the contract: nothing survives but the checkpoint file and the recipe
for rebuilding an identical system.  The resumed run's final statistics
must be bit-identical to an uninterrupted run's.
"""

import json
import os
import subprocess
import sys

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

# Each config: (builder source, save tick, settle tick).  The builder
# code must define run_to_end(END) -> stats dict and save_at(tick, path);
# both processes exec the same source so the systems are twins.
PMU_SETUP = """
from repro.dse.pmu_experiment import build_pmu_system

soc, pmu, drv = build_pmu_system(n_sort=60, memory="DDR4-1ch")

def save_at(tick, path):
    soc.sim.startup()
    soc.sim.run(until=tick)
    return soc.save_checkpoint(path)

def restore(path):
    soc.restore(path)

def run_to_end(end):
    soc.run_until_done(max_ticks=10**9)
    soc.sim.run(until=end)
    pmu.stop()
    return soc.sim.stats_dump()
"""

NVDLA_SETUP = """
from repro.dse.nvdla_system import build_nvdla_system

system = build_nvdla_system(workload="sanity3", n_nvdla=1,
                            memory="DDR4-1ch", timed_load=False)
soc = system.soc

def save_at(tick, path):
    for h in system.hosts:
        h.start()
    soc.sim.startup()
    soc.sim.run(until=tick)
    return soc.save_checkpoint(path)

def restore(path):
    # restore protocol: rebuild identically, re-attach the workload
    # (start() is idempotent across the checkpoint), then load state
    for h in system.hosts:
        h.start()
    soc.sim.startup()
    soc.restore(path)

def run_to_end(end):
    system.run_to_completion()
    soc.sim.run(until=end)
    return soc.sim.stats_dump()
"""

CHILD_TEMPLATE = """
import json, sys
{setup}
restore({ckpt_path!r})
stats = run_to_end({end})
with open({out_path!r}, "w") as fh:
    json.dump({{"now": soc.sim.now, "stats": stats}}, fh)
"""


def _exec_setup(setup: str) -> dict:
    ns: dict = {}
    exec(setup, ns)
    return ns


def _restore_in_fresh_process(setup, ckpt_path, end, out_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    code = CHILD_TEMPLATE.format(setup=setup, ckpt_path=str(ckpt_path),
                                 end=end, out_path=str(out_path))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    with open(out_path, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize(
    "setup,save_tick,end",
    [
        pytest.param(PMU_SETUP, 300_000, 80_000_000, id="pmu"),
        pytest.param(NVDLA_SETUP, 200_000, 12_000_000, id="nvdla"),
    ],
)
def test_fresh_process_restore_is_bit_identical(tmp_path, setup,
                                                save_tick, end):
    # uninterrupted reference run
    ref = _exec_setup(setup)
    expected = ref["run_to_end"](end)
    expected_now = ref["soc"].sim.now

    # a second identical system checkpoints mid-run ...
    saver = _exec_setup(setup)
    ckpt = tmp_path / "mid.ckpt"
    saved_tick = saver["save_at"](save_tick, ckpt)
    assert saved_tick < end

    # ... and a fresh python process restores and finishes the run
    out = _restore_in_fresh_process(setup, ckpt, end, tmp_path / "out.json")
    assert out["now"] == expected_now
    mismatch = {k: (v, out["stats"].get(k))
                for k, v in expected.items() if out["stats"].get(k) != v}
    assert not mismatch, f"stats diverged after restore: {mismatch}"
    assert len(out["stats"]) == len(expected)
