"""Deterministic fault injection: plans, schedules, and chaos replay."""

import os
import subprocess
import sys

import pytest

from repro.resilience import Fault, FaultInjector, FaultPlan
from repro.soc.cpu.uop import alu, load, store
from repro.soc.system import SoC, SoCConfig

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestPlan:
    def test_parse_specs(self):
        plan = FaultPlan.parse(
            ["dram-drop@7", "dram-delay@3:200", "retry-storm@50:100"],
            seed=42,
        )
        assert [f.spec() for f in plan] == \
            ["dram-drop@7", "dram-delay@3:200", "retry-storm@50:100"]
        assert plan.seed == 42

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            FaultPlan.parse(["dram-drop"])
        with pytest.raises(ValueError):
            FaultPlan.parse(["no-such-kind@5"])
        with pytest.raises(ValueError):
            Fault("dram-drop", -1)

    def test_generate_is_seed_deterministic(self):
        a = FaultPlan.generate(seed=7)
        b = FaultPlan.generate(seed=7)
        c = FaultPlan.generate(seed=8)
        assert a.schedule_digest() == b.schedule_digest()
        assert a.schedule_digest() != c.schedule_digest()

    def test_json_roundtrip(self):
        plan = FaultPlan.parse(["worker-kill@2", "rtl-flip@10:3"], seed=1)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.schedule_digest() == plan.schedule_digest()
        assert clone.seed == 1

    def test_fault_kind_split(self):
        plan = FaultPlan.parse(["dram-drop@1", "worker-hang@0:1"])
        assert [f.kind for f in plan.sim_faults()] == ["dram-drop"]
        assert [f.kind for f in plan.worker_faults()] == ["worker-hang"]


def _workload(n=1200):
    uops = []
    for i in range(n):
        uops.append(load(0x1000 + (i * 64) % (128 * 1024)))
        uops.append(alu(1))
        uops.append(store(0x100000 + (i * 64) % (32 * 1024)))
    return uops


def _run_with_plan(plan):
    soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
    soc.cores[0].run_stream(iter(_workload()))
    injector = FaultInjector(soc.sim, plan)
    soc.run_until_done(max_ticks=10**9)
    return soc, injector


class TestInjection:
    def test_same_plan_same_stats(self):
        """Chaos replay: the same seeded plan yields an identical
        simulation — schedule, end tick and every statistic."""
        plan = FaultPlan.parse(["dram-delay@10:300"], seed=3)
        soc_a, _ = _run_with_plan(plan)
        soc_b, _ = _run_with_plan(FaultPlan.from_json(plan.to_json()))
        assert soc_a.sim.now == soc_b.sim.now
        assert soc_a.sim.stats_dump() == soc_b.sim.stats_dump()

    def test_dram_delay_perturbs_but_completes(self):
        clean, _ = _run_with_plan(FaultPlan([]))
        delayed, injector = _run_with_plan(
            FaultPlan.parse(["dram-delay@10:2000"])
        )
        assert injector.st_delayed.value() == 1
        assert delayed.cores[0].done
        # the held response really moved the timing (end ticks are
        # quantized to run-loop boundaries, so compare statistics)
        assert delayed.sim.stats_dump() != clean.sim.stats_dump()

    def test_finite_retry_storm_counts_cycles(self):
        _soc, injector = _run_with_plan(
            FaultPlan.parse(["retry-storm@2000:500"])
        )
        assert injector.st_storm_cycles.value() == 500

    def test_injected_run_checkpoints_mid_chaos(self, tmp_path):
        """A checkpoint taken while a delayed response is in flight
        restores and completes identically (tagged-event coverage)."""
        plan = FaultPlan.parse(["dram-delay@10:30000"])

        def build():
            soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
            soc.cores[0].run_stream(iter(_workload()))
            FaultInjector(soc.sim, plan)
            return soc

        ref = build()
        ref.run_until_done(max_ticks=10**9)
        ref.sim.run(until=ref.sim.now + 1)  # leave the final instant
        end = ref.sim.now

        saver = build()
        saver.sim.startup()
        saver.sim.run(until=120_000)   # inside the 30k-cycle hold window
        path = tmp_path / "chaos.ckpt"
        saver.save_checkpoint(path)

        resumed = build()
        resumed.restore(path)
        resumed.run_until_done(max_ticks=10**9)
        resumed.sim.run(until=end)
        ref.sim.run(until=end)
        assert resumed.sim.stats_dump() == ref.sim.stats_dump()

    def test_checkpoint_refuses_other_plan(self, tmp_path):
        plan = FaultPlan.parse(["dram-delay@10:300"])

        def build(p):
            soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
            soc.cores[0].run_stream(iter(_workload()))
            FaultInjector(soc.sim, p)
            return soc

        saver = build(plan)
        saver.sim.startup()
        saver.sim.run(until=50_000)
        path = tmp_path / "p.ckpt"
        saver.save_checkpoint(path)
        other = build(FaultPlan.parse(["dram-delay@11:300"]))
        with pytest.raises(ValueError, match="different\\s+fault plan"):
            other.restore(path)


class TestRtlFlip:
    def test_flip_corrupts_rtl_state(self):
        from repro.dse.pmu_experiment import build_pmu_system

        soc, pmu, drv = build_pmu_system(n_sort=60, memory="DDR4-1ch")
        injector = FaultInjector(soc.sim, FaultPlan.parse(["rtl-flip@200:5"]))
        soc.sim.startup()
        soc.sim.run(until=soc.sim.default_clock.cycles_to_ticks(2_000))
        assert injector.st_flips.value() >= 1
        pmu.stop()


class TestNamedFlipSpecs:
    """Named ``rtl-flip`` targets: parse, validate, round-trip, digest."""

    def _module(self):
        from repro.resilience.targets import get_target, normalize_params

        target = get_target("rtlcache")
        return target.module(normalize_params(target))

    def test_named_spec_round_trips_through_json(self):
        plan = FaultPlan.parse(
            ["rtl-flip@100:busy.0", "rtl-flip@200:data[3].17"], seed=9
        )
        assert [f.spec() for f in plan] == \
            ["rtl-flip@100:busy.0", "rtl-flip@200:data[3].17"]
        clone = FaultPlan.from_json(plan.to_json())
        assert [f.signal for f in clone] == ["busy", "data[3]"]
        assert [f.arg for f in clone] == [0, 17]
        assert clone.schedule_digest() == plan.schedule_digest()

    def test_digest_distinguishes_signals(self):
        a = FaultPlan.parse(["rtl-flip@100:busy.0"])
        b = FaultPlan.parse(["rtl-flip@100:hits.0"])
        c = FaultPlan.parse(["rtl-flip@100:busy.0"])
        assert a.schedule_digest() == c.schedule_digest()
        assert a.schedule_digest() != b.schedule_digest()

    def test_parse_time_validation_against_design(self):
        module = self._module()
        # valid named targets parse cleanly
        FaultPlan.parse(["rtl-flip@5:busy.0", "rtl-flip@5:data[0].63"],
                        design=module)
        with pytest.raises(ValueError, match="unknown signal"):
            FaultPlan.parse(["rtl-flip@5:nosuch.0"], design=module)
        with pytest.raises(ValueError, match="out of range"):
            FaultPlan.parse(["rtl-flip@5:busy.1"], design=module)
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse(["rtl-flip@5:data[9999].0"], design=module)

    def test_malformed_named_target_rejected_without_design(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse(["rtl-flip@5:busy["])
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse(["rtl-flip@5:busy.x"])

    def test_only_rtl_flip_takes_a_signal(self):
        with pytest.raises(ValueError, match="only rtl-flip"):
            Fault("dram-drop", 5, 0, signal="busy")


class TestWorkerFaults:
    """Worker faults run in a subprocess: ``worker-kill`` hard-exits."""

    CHILD = """
import sys
from repro.resilience import FaultPlan, apply_worker_faults
plan = FaultPlan.parse(["worker-kill@1"])
apply_worker_faults(plan, int(sys.argv[1]), sys.argv[2])
sys.exit(0)
"""

    def _run_child(self, point, marker_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-c", self.CHILD, str(point), str(marker_dir)],
            env=env, timeout=60,
        ).returncode

    def test_kill_fires_once_then_runs_clean(self, tmp_path):
        assert self._run_child(0, tmp_path) == 0     # untargeted point
        assert self._run_child(1, tmp_path) == 13    # first attempt dies
        assert self._run_child(1, tmp_path) == 0     # retry sees marker
        assert (tmp_path / "worker-kill-1").exists()

    def test_no_plan_is_a_noop(self, tmp_path):
        from repro.resilience import apply_worker_faults

        apply_worker_faults(None, 0, str(tmp_path))
        assert not list(tmp_path.iterdir())
