"""Checkpoint engine unit tests: format, validation, bit-identity."""

import gzip
import json

import pytest

from repro.resilience.serialize import (
    CHECKPOINT_VERSION,
    CheckpointError,
    NotCheckpointable,
    checkpoint_blockers,
    structure_digest,
)
from repro.soc.cpu.uop import alu, load, store
from repro.soc.event import Event
from repro.soc.system import SoC, SoCConfig


def _workload(n=600):
    uops = []
    for i in range(n):
        uops.append(load(0x1000 + (i * 64) % 8192))
        uops.append(alu(1))
        uops.append(store(0x40000 + (i * 64) % 8192))
    return uops


def _build(num_cores=1):
    soc = SoC(SoCConfig(num_cores=num_cores, memory="DDR4-1ch"))
    for core in soc.cores:
        core.run_stream(iter(_workload()))
    return soc


END = 6_000_000  # ticks; past the workload for a 1-core DDR4-1ch system


class TestRoundTrip:
    def test_mid_run_roundtrip_is_bit_identical(self, tmp_path):
        """save at an arbitrary mid-run tick -> restore on a freshly
        built twin -> continue: identical final tick and statistics."""
        ref = _build()
        ref.run_until_done(max_ticks=10**9)
        ref.sim.run(until=END)
        expected = ref.sim.stats_dump()

        saver = _build()
        saver.sim.startup()
        saver.sim.run(until=150_000)
        path = tmp_path / "mid.ckpt"
        saver.save_checkpoint(path)

        resumed = _build()
        resumed.restore(path)
        assert resumed.sim.now == saver.sim.now
        resumed.run_until_done(max_ticks=10**9)
        resumed.sim.run(until=END)

        assert resumed.sim.now == ref.sim.now
        assert resumed.sim.stats_dump() == expected

    def test_checkpoint_includes_save_tick(self, tmp_path):
        soc = _build()
        soc.sim.startup()
        soc.sim.run(until=100_000)
        tick = soc.save_checkpoint(tmp_path / "a.ckpt")
        assert tick >= 100_000  # may step past blockers, never back

    def test_same_state_same_bytes(self, tmp_path):
        """Two saves of the same instant are byte-identical (gzip mtime
        pinned, keys sorted) — checkpoints are diffable artifacts."""
        soc = _build()
        soc.sim.startup()
        soc.sim.run(until=100_000)
        soc.save_checkpoint(tmp_path / "a.ckpt")
        soc.save_checkpoint(tmp_path / "b.ckpt")
        assert (tmp_path / "a.ckpt").read_bytes() == \
            (tmp_path / "b.ckpt").read_bytes()


class TestValidation:
    def test_structure_digest_depends_on_topology(self):
        assert structure_digest(_build(1).sim) != \
            structure_digest(_build(2).sim)

    def test_restore_rejects_different_system(self, tmp_path):
        saver = _build(num_cores=1)
        saver.sim.startup()
        path = tmp_path / "one.ckpt"
        saver.save_checkpoint(path)
        other = _build(num_cores=2)
        with pytest.raises(CheckpointError, match="differently built"):
            other.restore(path)

    def test_restore_rejects_unknown_version(self, tmp_path):
        soc = _build()
        soc.sim.startup()
        path = tmp_path / "v.ckpt"
        soc.save_checkpoint(path)
        doc = json.loads(gzip.open(path).read())
        doc["version"] = CHECKPOINT_VERSION + 1
        with gzip.open(path, "wb") as fh:
            fh.write(json.dumps(doc).encode())
        with pytest.raises(CheckpointError, match="version"):
            _build().restore(path)

    def test_restore_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"\x00\x01 this is not a checkpoint")
        with pytest.raises(CheckpointError, match="cannot read"):
            _build().restore(path)

    def test_restore_rejects_non_checkpoint_json(self, tmp_path):
        path = tmp_path / "list.ckpt"
        with gzip.open(path, "wb") as fh:
            fh.write(json.dumps([1, 2, 3]).encode())
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            _build().restore(path)

    def test_truncated_checkpoint_is_an_error(self, tmp_path):
        soc = _build()
        soc.sim.startup()
        path = tmp_path / "t.ckpt"
        soc.save_checkpoint(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            _build().restore(path)


class TestBlockers:
    def test_bare_closure_blocks_checkpoint(self, sim):
        """An event the engine cannot attribute to a checkpoint hook
        makes the instant non-checkpointable."""
        ev = Event(lambda: None, "anonymous")
        sim.startup()
        sim.eventq.schedule(ev, sim.now + 100)
        assert any("anonymous" in b for b in checkpoint_blockers(sim))

    def test_perpetual_bare_event_raises(self, sim, tmp_path):
        ev = Event(lambda: sim.eventq.schedule(ev, sim.now + 10),
                   "self_rearming")
        sim.startup()
        sim.eventq.schedule(ev, sim.now + 10)
        with pytest.raises(NotCheckpointable, match="self_rearming"):
            sim.save_checkpoint(tmp_path / "never.ckpt", max_wait=1000)

    def test_save_steps_past_transient_blocker(self, sim, tmp_path):
        """A one-shot bare event only delays the save: the engine
        services it, then checkpoints the next clean instant."""
        fired = []
        ev = Event(lambda: fired.append(True), "oneshot")
        sim.startup()
        sim.eventq.schedule(ev, sim.now + 500)
        tick = sim.save_checkpoint(tmp_path / "later.ckpt")
        assert fired and tick >= 500
