"""Control glue: pending CLI hooks, periodic checkpoints, point resume."""

import pytest

from repro.resilience import FaultPlan, PeriodicCheckpointer
from repro.resilience import control
from repro.soc.cpu.uop import alu, load, store
from repro.soc.system import SoC, SoCConfig


@pytest.fixture(autouse=True)
def _clean_pending():
    control.clear_pending()
    yield
    control.clear_pending()


def _workload(n=800):
    uops = []
    for i in range(n):
        uops.append(load(0x1000 + (i * 64) % 8192))
        uops.append(alu(1))
        uops.append(store(0x40000 + (i * 64) % 8192))
    return uops


def _build():
    soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
    soc.cores[0].run_stream(iter(_workload()))
    return soc


class TestPeriodicCheckpointer:
    def test_writes_numbered_snapshots(self, tmp_path):
        soc = _build()
        ckpt = PeriodicCheckpointer(soc.sim, every_cycles=5_000,
                                    directory=tmp_path)
        soc.sim.startup()
        step = soc.sim.default_clock.cycles_to_ticks(5_000)
        soc.sim.run(until=3 * step + 1)
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.ckpt"))
        assert names == ["ckpt-0000.ckpt", "ckpt-0001.ckpt",
                         "ckpt-0002.ckpt"]
        assert ckpt.st_saved.value() == 3
        assert ckpt.last_checkpoint_path.endswith("ckpt-0002.ckpt")

    def test_snapshot_resumes_with_checkpointing_armed(self, tmp_path):
        """The snapshot contains the checkpointer's own next event, so a
        restored run keeps producing checkpoints (index continues)."""
        soc = _build()
        PeriodicCheckpointer(soc.sim, every_cycles=5_000,
                             directory=tmp_path / "a")
        soc.sim.startup()
        step = soc.sim.default_clock.cycles_to_ticks(5_000)
        soc.sim.run(until=2 * step + 1)

        resumed = _build()
        ckpt_b = PeriodicCheckpointer(resumed.sim, every_cycles=5_000,
                                      directory=tmp_path / "a")
        resumed.restore(control.latest_checkpoint(tmp_path / "a"))
        resumed.sim.run(until=4 * step + 1)
        assert ckpt_b._index > 2
        assert (tmp_path / "a" / "ckpt-0003.ckpt").exists()

    def test_rejects_bad_interval(self, sim, tmp_path):
        with pytest.raises(ValueError):
            PeriodicCheckpointer(sim, every_cycles=0, directory=tmp_path)


class TestLatestCheckpoint:
    def test_orders_by_index(self, tmp_path):
        for i in (0, 2, 1):
            (tmp_path / f"ckpt-{i:04d}.ckpt").write_bytes(b"x")
        latest = control.latest_checkpoint(tmp_path)
        assert latest.endswith("ckpt-0002.ckpt")

    def test_empty_and_missing_dirs(self, tmp_path):
        assert control.latest_checkpoint(tmp_path) is None
        assert control.latest_checkpoint(tmp_path / "absent") is None


class TestPendingHooks:
    def test_first_started_sim_arms_and_clears(self):
        from repro.resilience.faults import FaultInjector
        from repro.resilience.watchdog import Watchdog

        control.set_pending_plan(FaultPlan.parse(["dram-delay@5:100"]))
        control.set_pending_watchdog(check_cycles=10_000)
        soc = _build()
        soc.sim.startup()
        kinds = {type(o).__name__ for o in soc.sim.objects}
        assert {"FaultInjector", "Watchdog"} <= kinds
        # armed exactly once: a second system comes up bare
        other = _build()
        other.sim.startup()
        assert not any(
            isinstance(o, (FaultInjector, Watchdog))
            for o in other.sim.objects
        )

    def test_pending_checkpoints(self, tmp_path):
        control.set_pending_checkpoints(5_000, str(tmp_path))
        soc = _build()
        soc.run_until_done(max_ticks=10**9)
        assert list(tmp_path.glob("ckpt-*.ckpt"))

    def test_pending_restore_round_trip(self, tmp_path):
        saver = _build()
        saver.sim.startup()
        saver.sim.run(until=100_000)
        path = tmp_path / "r.ckpt"
        saver.save_checkpoint(path)

        control.set_pending_restore(str(path))
        resumed = _build()
        resumed.sim.startup()
        assert resumed.sim.now == saver.sim.now


class TestPointResumeContract:
    def test_noop_without_env(self, monkeypatch):
        from repro.parallel.runner import POINT_CKPT_ENV

        monkeypatch.delenv(POINT_CKPT_ENV, raising=False)
        soc = _build()
        assert control.enable_point_checkpoints(soc.sim) is None

    def test_attaches_and_resumes_from_latest(self, tmp_path, monkeypatch):
        """Simulates a killed worker's retry: first attempt checkpoints,
        second attempt resumes from the newest snapshot."""
        from repro.parallel.runner import POINT_CKPT_ENV

        monkeypatch.setenv(POINT_CKPT_ENV, str(tmp_path))
        first = _build()
        control.enable_point_checkpoints(first.sim, every_cycles=5_000)
        first.sim.startup()
        step = first.sim.default_clock.cycles_to_ticks(5_000)
        first.sim.run(until=2 * step + 1)     # "killed" mid-run here
        assert control.latest_checkpoint(tmp_path) is not None

        retry = _build()
        control.enable_point_checkpoints(retry.sim, every_cycles=5_000)
        assert retry.sim.now >= 2 * step      # resumed, not restarted
        retry.run_until_done(max_ticks=10**9)
        assert retry.cores[0].done
