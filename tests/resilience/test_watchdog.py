"""Watchdog: hang detection, classification, and structured reports."""

import pytest

from repro.resilience import FaultPlan, FaultInjector, SimulationHang, Watchdog
from repro.soc.cpu.uop import alu, load, store
from repro.soc.system import SoC, SoCConfig


def _mem_heavy_workload(n=2000):
    """Loads over many distinct lines so DRAM sees a steady read stream."""
    uops = []
    for i in range(n):
        uops.append(load(0x1000 + (i * 64) % (256 * 1024)))
        uops.append(alu(1))
        uops.append(store(0x100000 + (i * 64) % (64 * 1024)))
    return uops


def _build(plan=None, check_cycles=2_000, stall_checks=3):
    soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
    soc.cores[0].run_stream(iter(_mem_heavy_workload()))
    if plan is not None:
        FaultInjector(soc.sim, plan)  # registers itself on soc.sim
    soc.attach_watchdog(check_cycles=check_cycles, stall_checks=stall_checks)
    return soc


class TestDetection:
    def test_healthy_run_never_trips(self):
        soc = _build()
        soc.run_until_done(max_ticks=10**9)
        assert soc.watchdog.st_checks.value() > 0

    def test_dropped_dram_response_is_a_deadlock(self):
        """Swallowing one DRAM read completion wedges an MSHR forever;
        the watchdog must call it a deadlock and name the packet."""
        soc = _build(FaultPlan.parse(["dram-drop@20"]))
        with pytest.raises(SimulationHang) as err:
            soc.run_until_done(max_ticks=10**9)
        report = err.value.report
        assert report.kind == "deadlock"
        assert report.rejects_in_window == 0
        # the report names the stalled core and at least one wedged packet
        assert any(c.name == "cpu0" and not c.done for c in report.cores)
        assert report.stalled_packets, report.format()
        held_by = {p.where for p in report.stalled_packets}
        assert held_by & {"l1d0", "l2_0", "llc"}, report.format()
        assert report.mshr_counts

    def test_detection_latency_is_bounded(self):
        """The hang is reported within stall_checks+1 check intervals of
        the stall beginning (the drop lands within the first interval)."""
        check_cycles, stall_checks = 2_000, 3
        soc = _build(FaultPlan.parse(["dram-drop@20"]),
                     check_cycles=check_cycles, stall_checks=stall_checks)
        with pytest.raises(SimulationHang) as err:
            soc.run_until_done(max_ticks=10**9)
        period = soc.sim.default_clock.period
        budget = (stall_checks + 1) * check_cycles * period
        assert err.value.report.tick <= budget, err.value.report.format()

    def test_retry_storm_is_a_livelock(self):
        soc = _build(FaultPlan.parse(["retry-storm@5000:0"]))
        with pytest.raises(SimulationHang) as err:
            soc.run_until_done(max_ticks=10**9)
        report = err.value.report
        assert report.kind == "livelock"
        assert report.rejects_in_window > 0
        assert report.events_fired_in_window > 0

    def test_finite_storm_recovers(self):
        """A bounded retry storm shorter than the trip threshold must
        not trip — the system resumes when the storm lifts."""
        soc = _build(FaultPlan.parse(["retry-storm@5000:2000"]),
                     check_cycles=2_000, stall_checks=4)
        soc.run_until_done(max_ticks=10**9)
        assert soc.cores[0].done

    def test_report_formats_to_text(self):
        soc = _build(FaultPlan.parse(["dram-drop@20"]))
        with pytest.raises(SimulationHang) as err:
            soc.run_until_done(max_ticks=10**9)
        text = err.value.report.format()
        assert "deadlock detected at tick" in text
        assert "stalled packets" in text
        assert "cpu0" in text
        # the exception message carries the full report for bare logs
        assert str(err.value) == text


class TestConfig:
    def test_invalid_thresholds_rejected(self, sim):
        with pytest.raises(ValueError):
            Watchdog(sim, check_cycles=0)
        with pytest.raises(ValueError):
            Watchdog(sim, stall_checks=0)

    def test_attach_watchdog_is_idempotent(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        first = soc.attach_watchdog(check_cycles=5_000)
        assert soc.attach_watchdog() is first

    def test_timeout_error_subclass(self):
        """run_until_done callers catching TimeoutError also see hangs."""
        assert issubclass(SimulationHang, TimeoutError)


class TestHangReportJson:
    """Machine-readable round-trip (campaign results, serve event logs)."""

    def _report(self):
        from repro.resilience.watchdog import (
            CoreProgress, HangReport, StalledPacket,
        )

        return HangReport(
            tick=123_456,
            kind="deadlock",
            reason="no events fired in window",
            strikes=3,
            check_interval_ticks=50_000,
            cores=[CoreProgress(name="cpu0", done=False, committed=42,
                                committed_delta=0)],
            stalled_packets=[StalledPacket(
                pkt_id=7, cmd="read", addr=0x1040, where="l2",
                age_ticks=200_000, requestor="cpu0",
                hops=[("bridge", 100), ("l2", 150)],
            )],
            mshr_counts={"l2": 2},
            rtl=[{"name": "rtlc", "inflight": 1, "mem_resps": 0,
                  "ticks": 9}],
            dram=[{"name": "dram0", "reads_queued": 1,
                   "writes_queued": 0, "retries_pending": 0}],
            event_head=(123_400, "watchdog"),
            events_fired_in_window=0,
            rejects_in_window=5,
        )

    def test_round_trip_format_is_byte_identical(self):
        from repro.resilience.watchdog import HangReport

        report = self._report()
        clone = HangReport.from_json(report.to_json())
        assert clone == report
        assert clone.format() == report.format()
        assert clone.to_json() == report.to_json()

    def test_round_trip_minimal_report(self):
        from repro.resilience.watchdog import HangReport

        report = HangReport(tick=1, kind="livelock", reason="spin",
                            strikes=2, check_interval_ticks=10)
        clone = HangReport.from_json(report.to_json())
        assert clone == report
        assert clone.format() == report.format()
