"""Fault-injection campaigns: sampling, triage, determinism, reports.

The heavyweight claims (byte-identical reports across worker counts,
cached resume executing zero points, ECC strictly lowering the SDC
rate) all run on the ``rtlcache`` target — its golden run is a few
thousand cycles, so a whole campaign costs well under a second.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.parallel import ResultCache, RunStats
from repro.resilience import HangReport
from repro.resilience.campaign import (
    OUTCOMES,
    campaign_config,
    campaign_point_fields,
    campaign_points,
    render_report,
    run_campaign,
    run_experiment,
    sample_faults,
    wilson_interval,
)
from repro.resilience.targets import get_target, normalize_params

BUDGET = 24
SEED = 3


@pytest.fixture
def camp_env(tmp_path, monkeypatch):
    """Isolate the campaign root (golden + checkpoints) per test."""
    monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "camp"))
    return tmp_path


def _campaign(tmp_path, target="rtlcache", budget=BUDGET, seed=SEED,
              jobs=1, cache_dir="cache", **kw):
    cache = ResultCache(root=tmp_path / cache_dir)
    return run_campaign(target, budget=budget, seed=seed, jobs=jobs,
                        cache=cache, **kw)


class TestSampling:
    def _module(self, name="rtlcache"):
        target = get_target(name)
        return target, target.module(normalize_params(target))

    def test_seed_deterministic(self):
        _, module = self._module()
        a = sample_faults(module, 16, seed=5, max_cycle=1000)
        b = sample_faults(module, 16, seed=5, max_cycle=1000)
        c = sample_faults(module, 16, seed=6, max_cycle=1000)
        assert a == b
        assert a != c

    def test_stratified_round_robin_and_in_range(self):
        from repro.resilience import flip_targets

        _, module = self._module()
        targets = flip_targets(module, include_memories=True)
        names = [name for name, _w in targets]
        widths = dict(targets)
        faults = sample_faults(module, len(names) + 3, seed=0,
                               max_cycle=500)
        # one pass over every target before any repeats, in table order
        assert [f[0] for f in faults[:len(names)]] == names
        assert [f[0] for f in faults[len(names):]] == names[:3]
        for signal, bit, cycle in faults:
            assert 0 <= bit < widths[signal]
            assert 1 <= cycle < 500

    def test_params_validation(self):
        target = get_target("rtlcache")
        with pytest.raises(ValueError, match="unknown parameter"):
            normalize_params(target, {"bogus": 1})
        params = normalize_params(target, {"idxw": "5", "ecc": "true"})
        assert params["idxw"] == 5 and params["ecc"] is True
        with pytest.raises(ValueError, match="unknown campaign target"):
            get_target("nope")


class TestWilson:
    def test_bounds_and_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0 and 0.0 < high < 0.2
        low, high = wilson_interval(20, 20)
        assert 0.8 < low < 1.0 and high == 1.0
        low, high = wilson_interval(5, 10)
        assert low < 0.5 < high
        # symmetric case: CI centred on p = 0.5
        assert abs((low + high) / 2 - 0.5) < 1e-9

    def test_empty_sample(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_n(self):
        narrow = wilson_interval(50, 100)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]


class TestTriage:
    def test_outcome_taxonomy_is_fixed(self):
        assert OUTCOMES == ("masked", "sdc", "detected_corrected",
                            "detected_hang", "crash", "infra")

    def test_unknown_signal_flip_is_skipped_hence_masked(self, camp_env):
        # _flip_on skips models without the named signal (multi-object
        # sims), so a dangling name degrades to a no-flip masked run,
        # never a crash or a miscounted infra failure
        cfg = campaign_config("rtlcache", budget=1, seed=0)
        point = list(campaign_points(cfg)[0])
        point[2], point[3] = "no_such_signal", 0
        result = run_experiment(tuple(point))
        assert result["outcome"] == "masked"

    def test_infra_failures_retried_then_reported_not_cached(
            self, camp_env, monkeypatch):
        import repro.resilience.campaign as campaign_mod

        real = campaign_mod.run_experiment
        attempts = []

        def flaky(point):
            if point[2] == "busy":        # first target in table order
                attempts.append(point[2])
                raise RuntimeError("synthetic worker loss")
            return real(point)

        monkeypatch.setattr(campaign_mod, "run_experiment", flaky)
        cache = ResultCache(root=camp_env / "cache")
        report = run_campaign("rtlcache", budget=6, seed=1, jobs=1,
                              cache=cache, infra_attempts=2,
                              infra_backoff=0.01)
        assert len(attempts) == 2         # bounded backoff, then give up
        assert report["histogram"]["infra"] == 1
        infra = [e for e in report["experiments"]
                 if e["outcome"] == "infra"]
        assert len(infra) == 1 and infra[0]["signal"] == "busy"
        assert "synthetic worker loss" in infra[0]["error"]
        # infra results were never cached and AVF excludes them
        assert report["valid_samples"] == 5
        monkeypatch.setattr(campaign_mod, "run_experiment", real)
        stats = RunStats()
        healed = run_campaign("rtlcache", budget=6, seed=1, jobs=1,
                              cache=cache, stats=stats)
        assert stats.completed == 1       # only the infra point re-ran
        assert healed["histogram"]["infra"] == 0


class TestCampaign:
    def test_report_is_deterministic_across_jobs(self, camp_env):
        serial = _campaign(camp_env, jobs=1, cache_dir="cache-a")
        fanned = _campaign(camp_env, jobs=2, cache_dir="cache-b")
        assert render_report(serial) == render_report(fanned)

    def test_rtlcache_triage_mix(self, camp_env):
        report = _campaign(camp_env)
        hist = report["histogram"]
        assert sum(hist.values()) == BUDGET
        assert hist["infra"] == 0
        assert hist["masked"] > 0
        assert hist["sdc"] >= 1          # a data-store flip escapes
        assert hist["detected_hang"] >= 1  # a busy flip wedges the FSM
        assert report["avf"] is not None
        lo, hi = report["avf_ci95"]
        assert 0.0 <= lo <= report["avf"] <= hi <= 1.0
        # per-signal entries exclude nothing and aggregate memory words
        assert sum(e["samples"] for e in report["signals"].values()) \
            == BUDGET
        assert "data" in report["signals"]  # counters[3]-style grouping

    def test_hang_report_round_trips(self, camp_env):
        report = _campaign(camp_env)
        hangs = [e for e in report["experiments"]
                 if e["outcome"] == "detected_hang" and "hang" in e]
        assert hangs, "expected at least one watchdog-detected hang"
        clone = HangReport.from_json(json.dumps(hangs[0]["hang"]))
        assert clone.kind == hangs[0]["hang_kind"]
        assert clone.format()  # renders without error

    def test_resume_executes_nothing(self, camp_env):
        first_stats = RunStats()
        first = _campaign(camp_env, stats=first_stats)
        assert first_stats.completed == BUDGET
        second_stats = RunStats()
        second = _campaign(camp_env, stats=second_stats)
        # every point resolved from the cache: run_points never ran
        assert second_stats.completed == 0
        assert render_report(first) == render_report(second)

    def test_cache_key_excludes_host_local_fields(self, camp_env):
        cfg = campaign_config("rtlcache", budget=2, seed=0)
        point = campaign_points(cfg)[0]
        fields = campaign_point_fields(cfg, point)
        text = json.dumps(fields)
        assert point[5] not in text          # campaign root path
        assert "wall_timeout" not in text
        assert fields["experiment"] == "campaign_point"

    def test_ecc_strictly_lowers_sdc_rate(self, camp_env):
        plain = _campaign(camp_env, target="rtlcache",
                          cache_dir="cache-plain")
        ecc = _campaign(camp_env, target="rtlcache_ecc",
                        cache_dir="cache-ecc")
        assert ecc["histogram"]["sdc"] < plain["histogram"]["sdc"]
        assert ecc["histogram"]["detected_corrected"] >= 1
        golden_det = ecc["golden"]["detection"]
        assert "corrections" in golden_det


class TestGolden:
    def test_golden_reused_across_campaigns(self, camp_env):
        cfg = campaign_config("rtlcache", budget=4, seed=0)
        points_a = campaign_points(cfg)
        root = points_a[0][5]
        golden_path = os.path.join(root, "golden.json")
        before = os.stat(golden_path).st_mtime_ns
        points_b = campaign_points(cfg)
        assert os.stat(golden_path).st_mtime_ns == before
        assert points_a == points_b

    def test_golden_records_checkpoint_ladder(self, camp_env):
        cfg = campaign_config("rtlcache", budget=1, seed=0)
        root = campaign_points(cfg)[0][5]
        with open(os.path.join(root, "golden.json"),
                  encoding="utf-8") as fh:
            golden = json.load(fh)
        assert golden["checkpoints"], "golden run saved no checkpoints"
        for path, tick in golden["checkpoints"]:
            assert os.path.exists(path)
            assert tick > 0
