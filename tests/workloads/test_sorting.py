"""Sorting µop generators: they must actually sort, and their streams
must have the structural properties the PMU experiment depends on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.cpu import uop as U
from repro.workloads.sorting import (
    BranchPredictor,
    bubblesort_uops,
    make_array,
    quicksort_uops,
    selectionsort_uops,
    sort_benchmark,
)


class TestBranchPredictor:
    def test_learns_biased_branch(self):
        bp = BranchPredictor()
        outcomes = [bp.mispredicted("site", True) for _ in range(20)]
        assert sum(outcomes[2:]) == 0  # learned after warm-up

    def test_alternating_branch_mispredicts(self):
        bp = BranchPredictor()
        misses = sum(
            bp.mispredicted("flip", bool(i % 2)) for i in range(40)
        )
        assert misses >= 10

    def test_sites_independent(self):
        bp = BranchPredictor()
        for _ in range(10):
            bp.mispredicted("a", True)
        assert not bp.mispredicted("a", True)
        # a fresh site starts cold
        bp.mispredicted("b", True)


@pytest.mark.parametrize("gen", [quicksort_uops, selectionsort_uops,
                                 bubblesort_uops])
class TestSortGenerators:
    def test_actually_sorts(self, gen):
        data = make_array(100, seed=1)
        expected = sorted(data)
        list(gen(data))
        assert data == expected

    def test_stream_contains_memory_and_branches(self, gen):
        data = make_array(50, seed=2)
        kinds = {u[0] for u in gen(data)}
        assert U.LOAD in kinds and U.BRANCH in kinds

    def test_addresses_within_array_bounds(self, gen):
        n = 64
        data = make_array(n, seed=3)
        base = 0x10_0000
        for kind, arg in gen(data, base=base):
            if kind in (U.LOAD, U.STORE):
                assert base <= arg < base + 8 * n

    def test_deterministic(self, gen):
        a = list(gen(make_array(40, seed=7)))
        b = list(gen(make_array(40, seed=7)))
        assert a == b


class TestAlgorithmCharacter:
    def test_quicksort_cheaper_than_quadratic_sorts(self):
        n = 128
        nq = sum(1 for _ in quicksort_uops(make_array(n)))
        ns = sum(1 for _ in selectionsort_uops(make_array(n)))
        nb = sum(1 for _ in bubblesort_uops(make_array(n)))
        assert nq < ns / 3
        assert nq < nb / 3

    def test_quicksort_on_10x_elements_still_smaller(self):
        """The paper's Fig. 5 observation: quicksort sorts 10x the
        elements in a fraction of the work."""
        nq = sum(1 for _ in quicksort_uops(make_array(1000)))
        nb = sum(1 for _ in bubblesort_uops(make_array(100)))
        ns = sum(1 for _ in selectionsort_uops(make_array(100)))
        assert nq < 3 * (nb + ns)

    def test_bubble_on_sorted_input_is_linear(self):
        data = list(range(200))
        count = sum(1 for _ in bubblesort_uops(data))
        assert count < 200 * 10


class TestBenchmark:
    def test_three_phases_with_sleeps(self):
        stream = list(sort_benchmark(n=30, sleep_cycles=123))
        sleeps = [u for u in stream if u[0] == U.SLEEP]
        assert len(sleeps) == 2
        assert all(u[1] == 123 for u in sleeps)

    def test_benchmark_is_reproducible(self):
        a = list(sort_benchmark(n=20, seed=9))
        b = list(sort_benchmark(n=20, seed=9))
        assert a == b


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10**6),
                min_size=2, max_size=60))
def test_property_all_generators_sort_any_input(values):
    for gen in (quicksort_uops, selectionsort_uops, bubblesort_uops):
        data = list(values)
        list(gen(data))
        assert data == sorted(values)
