"""Debug-flag registry: hierarchy, stickiness, tracepoint output."""

import io

import pytest

from repro.trace.flags import (
    all_flags,
    debug_flag,
    disable,
    enable,
    enabled_flags,
    parse_flags,
    reset_flags,
    set_chrome_tracer,
    set_flags,
    set_sink,
    tracepoint,
)


class TestRegistry:
    def test_registration_idempotent(self):
        a = debug_flag("T.Reg", "first")
        b = debug_flag("T.Reg", "second")
        assert a is b
        assert a.desc == "first"

    def test_desc_backfilled(self):
        flag = debug_flag("T.NoDesc")
        debug_flag("T.NoDesc", "later description")
        assert flag.desc == "later description"

    @pytest.mark.parametrize("bad", ["", " ", "has space", " lead"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            debug_flag(bad)

    def test_all_flags_snapshot(self):
        debug_flag("T.Snap")
        assert "T.Snap" in all_flags()


class TestHierarchy:
    def test_enable_lights_descendants(self):
        parent = debug_flag("T.H")
        child = debug_flag("T.H.Child")
        enable("T.H")
        assert parent.enabled and child.enabled
        disable("T.H")
        assert not parent.enabled and not child.enabled

    def test_child_enable_does_not_light_parent(self):
        parent = debug_flag("T.P")
        child = debug_flag("T.P.Only")
        enable("T.P.Only")
        assert child.enabled
        assert not parent.enabled

    def test_sticky_enable_is_registration_order_independent(self):
        enable("T.Late")
        flag = debug_flag("T.Late")          # registered after enable
        child = debug_flag("T.Late.Sub")     # descendant too
        assert flag.enabled and child.enabled

    def test_disable_respects_surviving_ancestor(self):
        child = debug_flag("T.A.B")
        enable("T.A")
        enable("T.A.B")
        disable("T.A.B")   # ancestor enable still covers it
        assert child.enabled
        disable("T.A")
        assert not child.enabled

    def test_strict_enable_unknown_raises_with_known_list(self):
        debug_flag("T.Known")
        with pytest.raises(ValueError, match="T.Known"):
            enable("T.DoesNotExist", strict=True)

    def test_strict_enable_accepts_pure_parent_name(self):
        flag = debug_flag("T.Parent.Leaf")
        enable("T.Parent", strict=True)  # matches only via descendants
        assert flag.enabled


class TestSetFlags:
    def test_replaces_enabled_set(self):
        a, b = debug_flag("T.SetA"), debug_flag("T.SetB")
        set_flags(["T.SetA"])
        assert a.enabled and not b.enabled
        set_flags(["T.SetB"])
        assert not a.enabled and b.enabled

    def test_reset_flags_clears_everything(self):
        flag = debug_flag("T.Reset")
        enable("T.Reset")
        reset_flags()
        assert not flag.enabled
        assert enabled_flags() == []

    def test_parse_flags(self):
        assert parse_flags("Cache, DRAM ,RTL,,") == ["Cache", "DRAM", "RTL"]


class TestTracepoint:
    def test_formats_who_flag_and_tick(self):
        flag = debug_flag("T.Fmt")
        enable("T.Fmt")
        sink = io.StringIO()
        set_sink(sink)
        tracepoint(flag, "l1d0", "miss addr=%#x", 0x40, tick=1500)
        line = sink.getvalue()
        assert "1500" in line
        assert "l1d0" in line
        assert "[T.Fmt]" in line
        assert "miss addr=0x40" in line

    def test_no_tick_renders_dash(self):
        flag = debug_flag("T.NoTick")
        enable("T.NoTick")
        sink = io.StringIO()
        set_sink(sink)
        tracepoint(flag, "port", "rejected")
        assert sink.getvalue().lstrip().startswith("-")

    def test_disabled_flag_emits_nothing(self):
        flag = debug_flag("T.Off")
        sink = io.StringIO()
        set_sink(sink)
        tracepoint(flag, "x", "should not appear", tick=1)
        assert sink.getvalue() == ""

    def test_mirrors_into_chrome_tracer(self):
        from repro.trace import ChromeTracer

        flag = debug_flag("T.Mirror")
        enable("T.Mirror")
        set_sink(io.StringIO())
        tracer = ChromeTracer()
        set_chrome_tracer(tracer)
        tracepoint(flag, "dram0", "enqueue", tick=2000)
        instants = [e for e in tracer.events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "enqueue"
        assert instants[0]["args"]["who"] == "dram0"

    def test_tickless_tracepoint_not_mirrored(self):
        from repro.trace import ChromeTracer

        flag = debug_flag("T.NoMirror")
        enable("T.NoMirror")
        set_sink(io.StringIO())
        tracer = ChromeTracer()
        set_chrome_tracer(tracer)
        tracepoint(flag, "port", "no timestamp")
        assert not [e for e in tracer.events if e["ph"] == "i"]
