"""Lint the debug-flag registrations across the source tree.

Two invariants keep ``--debug-flags`` trustworthy:

* every registered flag name is unique — two components silently
  sharing ``"Cache"`` would make the flag's output misleading;
* every registration is actually used as a guard (``FLAG.enabled``)
  in the file that registers it — a flag with no call site is dead
  weight in ``--debug-flags`` help and in the registry.

Registrations are found by walking the AST (not regex), so docstring
examples don't count.
"""

import ast
import pathlib

import repro

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent


def _registrations():
    """Yield (file, assigned_name, flag_name) for every literal
    ``X = debug_flag("Name", ...)`` assignment under src/repro."""
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            call = node.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "debug_flag"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield path, target.id, call.args[0].value


class TestFlagLint:
    def test_some_registrations_exist(self):
        assert len(list(_registrations())) >= 8

    def test_flag_names_unique(self):
        seen = {}
        for path, _var, name in _registrations():
            rel = path.relative_to(SRC_ROOT)
            assert name not in seen, (
                f"debug flag {name!r} registered in both {seen[name]} "
                f"and {rel}"
            )
            seen[name] = rel

    def test_every_flag_guards_a_call_site(self):
        for path, var, name in _registrations():
            text = path.read_text(encoding="utf-8")
            assert f"{var}.enabled" in text, (
                f"{path.relative_to(SRC_ROOT)} registers debug flag "
                f"{name!r} as {var} but never checks {var}.enabled"
            )

    def test_registered_names_are_valid(self):
        for _path, _var, name in _registrations():
            assert name == name.strip() and " " not in name and name
