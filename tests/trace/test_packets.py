"""Packet-lifetime tracking: hops, histograms, Perfetto spans."""

from repro.soc.packet import MemCmd, Packet
from repro.soc.simobject import Simulation
from repro.trace import ChromeTracer, packets as pkttrace
from repro.trace.flags import enable, set_chrome_tracer


class TestRecordHop:
    def test_untracked_packet_allocates_nothing(self):
        pkt = Packet(MemCmd.ReadReq, 0x100, 8)
        assert pkt.hops is None
        assert pkt.birth_tick is None

    def test_first_hop_fixes_birth_tick(self):
        pkt = Packet(MemCmd.ReadReq, 0x100, 8)
        pkt.record_hop("cpu0", 1000)
        pkt.record_hop("l1d0", 1500)
        assert pkt.birth_tick == 1000
        assert pkt.hops == [("cpu0", 1000), ("l1d0", 1500)]


class TestFinish:
    def test_samples_per_hop_latency_histograms(self):
        sim = Simulation()
        pkt = Packet(MemCmd.ReadReq, 0x40, 8, requestor="cpu0")
        pkt.record_hop("cpu0", 0)
        pkt.record_hop("xbar", 100_000)     # cpu0 -> xbar: 100 ns
        pkt.record_hop("dram", 300_000)     # xbar -> dram: 200 ns
        pkttrace.finish(pkt, sim, 500_000, "cpu0")  # dram -> back: 200 ns
        flat = sim.root_stats.dump()
        assert flat["system.pkttrace.hop_cpu0::count"] == 1
        assert flat["system.pkttrace.hop_cpu0::mean"] == 100.0
        assert flat["system.pkttrace.hop_xbar::mean"] == 200.0
        assert flat["system.pkttrace.hop_dram::mean"] == 200.0
        assert pkt.hops is None  # journey consumed

    def test_finish_without_hops_is_noop(self):
        sim = Simulation()
        pkt = Packet(MemCmd.ReadReq, 0x40, 8)
        pkttrace.finish(pkt, sim, 100, "cpu0")
        assert "pkttrace" not in str(sorted(sim.root_stats.dump()))

    def test_emits_journey_and_segment_spans(self):
        sim = Simulation()
        tracer = ChromeTracer()
        set_chrome_tracer(tracer)
        pkt = Packet(MemCmd.ReadReq, 0x80, 64, requestor="rtl0")
        pkt.record_hop("rtl0", 0)
        pkt.record_hop("dram", 1_000_000)
        pkttrace.finish(pkt, sim, 2_000_000, "rtl0")
        spans = [e for e in tracer.events if e["ph"] == "X"]
        journey = [s for s in spans if "ReadReq" in s["name"]]
        assert len(journey) == 1
        assert journey[0]["ts"] == 0.0
        assert journey[0]["dur"] == 2.0
        assert journey[0]["args"]["hops"] == 3
        assert {s["name"] for s in spans if s is not journey[0]} == {
            "rtl0", "dram"
        }

    def test_stat_group_reused_across_packets(self):
        sim = Simulation()
        for tick in (100_000, 200_000):
            pkt = Packet(MemCmd.ReadReq, 0x40, 8)
            pkt.record_hop("cpu0", 0)
            pkttrace.finish(pkt, sim, tick, "cpu0")
        flat = sim.root_stats.dump()
        assert flat["system.pkttrace.hop_cpu0::count"] == 2


class TestEndToEnd:
    def test_soc_run_produces_hop_histograms(self):
        from repro.soc.cpu import load
        from repro.soc.system import SoC, SoCConfig

        enable("Packet")
        import io

        from repro.trace.flags import set_sink

        set_sink(io.StringIO())
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        soc.cores[0].run_stream([load(i * 64) for i in range(200)])
        soc.run_until_done()
        flat = soc.sim.root_stats.dump()
        hop_keys = [k for k in flat if ".pkttrace.hop_" in k]
        assert hop_keys, "instrumented components recorded no hops"
        # the core is a terminal consumer, so its hop stat must exist
        assert any("hop_cpu0" in k for k in hop_keys)
        counts = [flat[k] for k in hop_keys if k.endswith("::count")]
        assert sum(counts) > 0
