"""Trace windows: one switch for flags, Chrome tracer and VCD writers."""

import pytest

from repro.soc.simobject import Simulation
from repro.trace import ChromeTracer, TraceWindow, register_vcd
from repro.trace.control import (
    attach_pending,
    clear_pending,
    registered_vcds,
    set_pending_window,
)
from repro.trace.flags import debug_flag, set_chrome_tracer


class FakeVCD:
    def __init__(self):
        self.calls = []

    def enable(self):
        self.calls.append("enable")

    def disable(self):
        self.calls.append("disable")


class TestTraceWindow:
    def test_immediate_open_when_no_start(self):
        sim = Simulation()
        flag = debug_flag("T.Win")
        TraceWindow(sim, ["T.Win"])
        assert flag.enabled

    def test_opens_and_closes_at_cycles(self):
        sim = Simulation()
        flag = debug_flag("T.WinSched")
        period = sim.default_clock.period
        TraceWindow(sim, ["T.WinSched"], start_cycle=100, end_cycle=200)
        sim.run(until=50 * period)
        assert not flag.enabled
        sim.run(until=150 * period)
        assert flag.enabled
        sim.run(until=250 * period)
        assert not flag.enabled

    def test_end_before_start_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            TraceWindow(sim, ["T.Bad"], start_cycle=100, end_cycle=100)

    def test_registers_unknown_flag_names_up_front(self):
        from repro.trace.flags import all_flags

        sim = Simulation()
        TraceWindow(sim, ["T.Fresh"], start_cycle=10)
        assert "T.Fresh" in all_flags()

    def test_flips_chrome_tracer(self):
        sim = Simulation()
        tracer = ChromeTracer()
        tracer.enabled = False
        set_chrome_tracer(tracer)
        period = sim.default_clock.period
        window = TraceWindow(sim, [], start_cycle=10, end_cycle=20)
        sim.run(until=15 * period)
        assert tracer.enabled and window.active
        markers = [e["name"] for e in tracer.events if e["ph"] == "i"]
        assert "trace window open" in markers
        sim.run(until=25 * period)
        assert not tracer.enabled and not window.active

    def test_flips_registered_vcd_writers(self):
        sim = Simulation()
        vcd = FakeVCD()
        register_vcd(vcd)
        assert vcd in registered_vcds()
        period = sim.default_clock.period
        TraceWindow(sim, [], start_cycle=10, end_cycle=20)
        sim.run(until=30 * period)
        assert vcd.calls == ["enable", "disable"]


class TestPendingWindow:
    def test_attached_on_simulation_startup(self):
        flag = debug_flag("T.Pending")
        set_pending_window(["T.Pending"], None, None)
        sim = Simulation()
        sim.startup()
        assert flag.enabled

    def test_one_shot(self):
        set_pending_window(["T.Once"], 5, None)
        sim = Simulation()
        assert attach_pending(sim) is not None
        assert attach_pending(sim) is None

    def test_clear_pending(self):
        set_pending_window(["T.Cleared"], None, None)
        clear_pending()
        assert attach_pending(Simulation()) is None

    def test_shared_library_registers_its_vcd(self):
        import io

        from repro.bridge import RTLSharedLibrary
        from repro.bridge.structs import Field, StructSpec
        from repro.rtl import RTLModule

        m = RTLModule("m")
        m.add_signal("clk", 1, is_input=True)
        m.add_signal("x", 1, is_input=True)

        class Lib(RTLSharedLibrary):
            input_spec = StructSpec("i", [Field("x", 1)])
            output_spec = StructSpec("o", [Field("x", 1)])

            def drive(self, inputs):
                self.sim.poke("x", inputs["x"])

            def collect(self):
                return {"x": self.sim.peek("x")}

        lib = Lib(m, trace_stream=io.StringIO(), trace_enabled=False)
        assert lib.sim.trace in registered_vcds()
