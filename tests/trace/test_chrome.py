"""Chrome trace-event exporter: event shapes, caps, serialisation."""

import json

from repro.trace.chrome import PID_HOST, PID_SIM, ChromeTracer


class TestEvents:
    def test_process_metadata_present(self):
        t = ChromeTracer()
        meta = [e for e in t.events if e["ph"] == "M"
                and e["name"] == "process_name"]
        assert {e["pid"] for e in meta} == {PID_SIM, PID_HOST}

    def test_instant_timestamp_conversion(self):
        t = ChromeTracer()
        t.instant("hit", "Cache", tick=2_000_000)  # 2 µs of sim time
        ev = [e for e in t.events if e["ph"] == "i"][0]
        assert ev["ts"] == 2.0
        assert ev["pid"] == PID_SIM

    def test_span_duration(self):
        t = ChromeTracer()
        t.span("pkt", "pkt:cpu0", 1_000_000, 4_000_000, args={"hops": 2})
        ev = [e for e in t.events if e["ph"] == "X"][0]
        assert ev["ts"] == 1.0
        assert ev["dur"] == 3.0
        assert ev["args"]["hops"] == 2

    def test_span_negative_duration_clamped(self):
        t = ChromeTracer()
        t.span("odd", "x", 5_000_000, 1_000_000)
        assert [e for e in t.events if e["ph"] == "X"][0]["dur"] == 0

    def test_counter(self):
        t = ChromeTracer()
        t.counter("inflight", 1_000_000, {"reads": 3})
        ev = [e for e in t.events if e["ph"] == "C"][0]
        assert ev["args"] == {"reads": 3}

    def test_string_tracks_get_stable_tids_and_names(self):
        t = ChromeTracer()
        t.instant("a", "trackA", 0)
        t.instant("b", "trackA", 1)
        t.instant("c", "trackB", 2)
        instants = [e for e in t.events if e["ph"] == "i"]
        assert instants[0]["tid"] == instants[1]["tid"]
        assert instants[0]["tid"] != instants[2]["tid"]
        names = [e for e in t.events if e.get("name") == "thread_name"]
        assert {e["args"]["name"] for e in names} == {"trackA", "trackB"}

    def test_disabled_suppresses_sim_events(self):
        t = ChromeTracer()
        t.enabled = False
        before = len(t.events)
        t.instant("x", "t", 0)
        t.span("x", "t", 0, 1)
        t.counter("x", 0, {})
        assert len(t.events) == before


class TestHostProfile:
    def test_aggregates_and_slices(self):
        t = ChromeTracer()
        t.host_event("cpu.cycle", tick=500, t0=t._host_t0, dur=0.001)
        t.host_event("cpu.cycle", tick=1000, t0=t._host_t0, dur=0.002)
        count, seconds = t.host_totals["cpu.cycle"]
        assert count == 2
        assert abs(seconds - 0.003) < 1e-9
        slices = [e for e in t.events if e["pid"] == PID_HOST
                  and e["ph"] == "X"]
        assert len(slices) == 2
        assert slices[0]["args"]["sim_tick"] == 500

    def test_cap_keeps_totals_complete(self, monkeypatch):
        t = ChromeTracer()
        monkeypatch.setattr(ChromeTracer, "HOST_EVENT_CAP", 3)
        for i in range(10):
            t.host_event("ev", tick=i, t0=t._host_t0, dur=0.001)
        slices = [e for e in t.events if e["pid"] == PID_HOST
                  and e["ph"] == "X"]
        assert len(slices) == 3          # capped
        assert t.host_totals["ev"][0] == 10  # aggregate complete


class TestOutput:
    def test_to_json_is_loadable(self):
        t = ChromeTracer()
        t.instant("x", "t", 0)
        doc = json.loads(t.to_json())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ns"
        assert doc["otherData"]["generator"] == "repro.trace"

    def test_finish_writes_path_and_is_idempotent(self, tmp_path):
        out = tmp_path / "trace.json"
        t = ChromeTracer(path=str(out))
        t.span("s", "t", 0, 1_000_000)
        assert t.finish() == str(out)
        first = out.read_text()
        assert t.finish() == str(out)  # second call: no rewrite
        assert out.read_text() == first
        doc = json.loads(first)
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_finish_prefers_stream(self, tmp_path):
        import io

        buf = io.StringIO()
        t = ChromeTracer(path=str(tmp_path / "never.json"), stream=buf)
        t.finish()
        assert not (tmp_path / "never.json").exists()
        json.loads(buf.getvalue())

    def test_host_totals_serialised(self):
        t = ChromeTracer()
        t.host_event("cb", tick=0, t0=t._host_t0, dur=0.5)
        doc = json.loads(t.to_json())
        totals = doc["otherData"]["host_callback_totals"]
        assert totals["cb"]["count"] == 1
        assert totals["cb"]["seconds"] == 0.5
