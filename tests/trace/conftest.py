"""Isolation for the process-wide tracing state.

Flags, the Chrome-tracer hook and the default profiler are module-level
by design (that is what makes the disabled-path check one attribute
load); every test in this directory gets them reset afterwards.
"""

import pytest

from repro.trace import control
from repro.trace.flags import (
    reset_flags,
    set_chrome_tracer,
    set_default_profiler,
    set_sink,
)


@pytest.fixture(autouse=True)
def _trace_isolation():
    yield
    reset_flags()
    set_chrome_tracer(None)
    set_default_profiler(None)
    set_sink(None)
    control.clear_pending()
    control._vcd_writers.clear()
