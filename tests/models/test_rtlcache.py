"""RTL cache use case (paper Fig. 2a): standalone RTL behaviour and
in-system integration with real data flowing through the hardware model."""

import pytest

from repro.models.rtlcache import (
    RTLCacheObject,
    RTLCacheSharedLibrary,
    load_rtl_cache_source,
)
from repro.soc.iomaster import IOMaster
from repro.soc.mem import DRAMController, IdealMemory, ddr4_2400
from repro.soc.simobject import Simulation


@pytest.fixture
def lib():
    lib = RTLCacheSharedLibrary(idxw=4)
    lib.reset()
    return lib


def tick(lib, **fields):
    return lib.output_spec.unpack(lib.tick(lib.input_spec.pack(**fields)))


WORDS = [0xA5A5_0000_0000_0000 + i for i in range(8)]


def fill_line(lib, addr, words=WORDS):
    out = tick(lib, req_valid=1, req_addr=addr)
    assert out["miss_valid"] == 1
    return tick(lib, req_valid=1, req_addr=addr, fill_valid=1,
                fill_data=words)


class TestStandaloneRTL:
    def test_source_is_real_verilog(self):
        src = load_rtl_cache_source()
        assert "module rtl_cache" in src and "always @(posedge clk)" in src

    def test_read_miss_then_fill_then_hits(self, lib):
        out = fill_line(lib, 0x1040)
        assert out["resp_valid"] == 1 and out["resp_was_hit"] == 0
        assert out["resp_rdata"] == WORDS[0]
        for w in range(8):
            out = tick(lib, req_valid=1, req_addr=0x1040 + 8 * w)
            assert out["resp_was_hit"] == 1
            assert out["resp_rdata"] == WORDS[w]

    def test_write_through_always_emitted(self, lib):
        out = tick(lib, req_valid=1, req_write=1, req_addr=0x2000,
                   req_wdata=0x1234)
        assert out["wt_valid"] == 1
        assert out["wt_addr"] == 0x2000 and out["wt_data"] == 0x1234
        assert out["resp_valid"] == 1  # write completes without allocation

    def test_write_hit_updates_stored_line(self, lib):
        fill_line(lib, 0x3000)
        tick(lib, req_valid=1, req_write=1, req_addr=0x3010,
             req_wdata=0xFEED)
        out = tick(lib, req_valid=1, req_addr=0x3010)
        assert out["resp_rdata"] == 0xFEED

    def test_conflict_eviction_by_index(self, lib):
        """Two addresses with the same index but different tags conflict."""
        fill_line(lib, 0x0000)
        other = [0xBEEF_0000_0000_0000 + i for i in range(8)]
        out = tick(lib, req_valid=1, req_addr=0x10000)  # same index 0
        assert out["miss_valid"] == 1
        tick(lib, req_valid=1, req_addr=0x10000, fill_valid=1,
             fill_data=other)
        # original line was displaced
        out = tick(lib, req_valid=1, req_addr=0x0000)
        assert out["resp_was_hit"] == 0

    def test_hit_miss_counters(self, lib):
        fill_line(lib, 0x4000)
        tick(lib, req_valid=1, req_addr=0x4000)
        tick(lib, req_valid=1, req_addr=0x4008)
        out = tick(lib, req_valid=1, req_addr=0x4010)
        assert out["hits"] == 3 and out["misses"] == 1

    def test_reset_invalidates(self, lib):
        fill_line(lib, 0x5000)
        lib.reset()
        out = tick(lib, req_valid=1, req_addr=0x5000)
        assert out["miss_valid"] == 1


class TestInSystem:
    def _rig(self, mem_latency=3):
        sim = Simulation()
        rtlc = RTLCacheObject(sim, "rtlc")
        mem = IdealMemory(sim, "mem", latency_cycles=mem_latency)
        io = IOMaster(sim, "io")
        io.port.connect(rtlc.cpu_side[0])
        rtlc.mem_side[0].connect(mem.port)
        return sim, rtlc, mem, io

    def test_read_data_travels_through_rtl(self):
        sim, rtlc, mem, io = self._rig()
        mem.physmem.write(0x2000, bytes(range(64)))
        got = []
        io.read(0x2008, size=8, callback=lambda p: got.append(p.data))
        sim.run(until=10**7)
        rtlc.stop()
        assert got == [bytes(range(8, 16))]

    def test_write_through_reaches_memory(self):
        sim, rtlc, mem, io = self._rig()
        io.write(0x3000, (0xCAFE).to_bytes(8, "little"))
        sim.run(until=10**7)
        rtlc.stop()
        assert mem.physmem.read(0x3000, 8) == (0xCAFE).to_bytes(8, "little")

    def test_second_read_hits_in_rtl(self):
        sim, rtlc, mem, io = self._rig()
        done = []
        io.read(0x4000, size=8, callback=lambda p: done.append(1))
        io.read(0x4008, size=8, callback=lambda p: done.append(1))
        sim.run(until=10**7)
        rtlc.stop()
        assert len(done) == 2
        assert rtlc.library.sim.peek("hit_count") == 1
        assert rtlc.library.sim.peek("miss_count") == 1

    def test_works_against_dram(self):
        sim = Simulation()
        rtlc = RTLCacheObject(sim, "rtlc")
        dram = DRAMController(sim, "mem", ddr4_2400(1))
        io = IOMaster(sim, "io")
        io.port.connect(rtlc.cpu_side[0])
        rtlc.mem_side[0].connect(dram.port)
        dram.physmem.write(0x8000, b"\x42" * 64)
        got = []
        for i in range(8):
            io.read(0x8000 + 8 * i, size=8,
                    callback=lambda p: got.append(p.data))
        sim.run(until=10**8)
        rtlc.stop()
        assert got == [b"\x42" * 8] * 8
        assert rtlc.library.sim.peek("miss_count") == 1

    def test_stats_formulas_track_rtl_state(self):
        sim, rtlc, mem, io = self._rig()
        io.read(0x100, size=8)
        sim.run(until=10**7)
        rtlc.stop()
        assert rtlc.st_rtl_misses.value() == 1
