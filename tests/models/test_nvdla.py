"""NVDLA engine + wrapper: CSB, streaming, credits, completion."""

import pytest

from repro.models.nvdla import NVDLACore, NVDLASharedLibrary
from repro.models.nvdla.core import (
    LayerConfig,
    NVDLA_ID_VALUE,
    REG_COMPUTE_X16,
    REG_ID,
    REG_IN_BLOCKS,
    REG_IN_ADDR_LO,
    REG_IRQ_CLEAR,
    REG_OP_ENABLE,
    REG_OUT_ADDR_LO,
    REG_PERF_CYCLES,
    REG_PERF_STALLS,
    REG_STATUS,
    REG_W_BLOCKS,
)


def configured_core(in_blocks=32, w_blocks=4, compute_x16=16,
                    blocks_per_out=4, sram=0) -> NVDLACore:
    core = NVDLACore()
    core.cfg = LayerConfig(
        in_addr=0x1000_0000, w_addr=0x2000_0000, out_addr=0x3000_0000,
        in_blocks=in_blocks, w_blocks=w_blocks, compute_x16=compute_x16,
        blocks_per_out=blocks_per_out, sram_mode=sram,
    )
    core.csb_write(REG_OP_ENABLE, 1)
    return core


def run_zero_latency(core: NVDLACore, credit=255, max_cycles=100_000) -> int:
    """Drive the engine with an ideal testbench; returns busy cycles."""
    pending: list[int] = []
    cycles = 0
    while core.busy and cycles < max_cycles:
        out = core.step(credit, pending, wr_acks=0)
        pending = [r[0] for r in out["reads"]]
        core._writes_acked = core._writes_issued
        cycles += 1
    assert not core.busy, "engine did not finish"
    return cycles


class TestCSB:
    def test_id_register(self):
        assert NVDLACore().csb_read(REG_ID) == NVDLA_ID_VALUE

    def test_status_busy_and_irq_bits(self):
        core = configured_core()
        assert core.csb_read(REG_STATUS) & 1 == 1
        run_zero_latency(core)
        status = core.csb_read(REG_STATUS)
        assert status & 1 == 0 and status & 2 == 2
        core.csb_write(REG_IRQ_CLEAR, 1)
        assert core.csb_read(REG_STATUS) == 0

    def test_register_writes_readable(self):
        core = NVDLACore()
        core.csb_write(REG_IN_ADDR_LO, 0x1234_0000)
        core.csb_write(REG_IN_BLOCKS, 77)
        assert core.csb_read(REG_IN_ADDR_LO) == 0x1234_0000
        assert core.csb_read(REG_IN_BLOCKS) == 77

    def test_doorbell_with_no_work_rejected(self):
        core = NVDLACore()
        with pytest.raises(ValueError):
            core.csb_write(REG_OP_ENABLE, 1)


class TestStreaming:
    def test_reads_cover_all_blocks_in_order(self):
        core = configured_core(in_blocks=10, w_blocks=3)
        seqs = []
        pending = []
        while core.busy:
            out = core.step(255, pending, wr_acks=0)
            seqs.extend(r[0] for r in out["reads"])
            pending = [r[0] for r in out["reads"]]
            core._writes_acked = core._writes_issued
        assert seqs == list(range(13))

    def test_weights_then_activations_addressing(self):
        core = configured_core(in_blocks=2, w_blocks=2)
        out = core.step(255, [], 0)
        (s0, a0, p0), (s1, a1, p1) = out["reads"]
        assert a0 == 0x2000_0000 and a1 == 0x2000_0040  # weights first
        out = core.step(255, [0, 1], 0)
        (s2, a2, _), (s3, a3, _) = out["reads"]
        assert a2 == 0x1000_0000 and a3 == 0x1000_0040

    def test_sram_mode_routes_activations_to_port1(self):
        core = configured_core(in_blocks=2, w_blocks=1, sram=1)
        out = core.step(255, [], 0)
        ports = [r[2] for r in out["reads"]]
        assert ports[0] == 0      # weight via DBBIF
        assert ports[1] == 1      # activation via SRAMIF

    def test_output_write_count(self):
        core = configured_core(in_blocks=16, w_blocks=0, blocks_per_out=4)
        writes = []
        pending = []
        while core.busy:
            out = core.step(255, pending, wr_acks=0)
            writes.extend(out["writes"])
            pending = [r[0] for r in out["reads"]]
            core._writes_acked = core._writes_issued
        assert len(writes) == 4
        assert writes[0] == 0x3000_0000 and writes[1] == 0x3000_0040

    def test_completion_requires_write_acks(self):
        core = configured_core(in_blocks=4, w_blocks=0)
        pending = []
        for _ in range(1000):
            out = core.step(255, pending, wr_acks=0)
            pending = [r[0] for r in out["reads"]]
            if not core.busy:
                break
        assert core.busy  # writes never acked -> still busy
        core.step(255, [], wr_acks=core._writes_issued)
        assert not core.busy


class TestComputeRate:
    def test_cycles_scale_with_compute_intensity(self):
        fast = configured_core(in_blocks=256, compute_x16=16)
        slow = configured_core(in_blocks=256, compute_x16=64)
        t_fast = run_zero_latency(fast)
        t_slow = run_zero_latency(slow)
        assert 3.0 < t_slow / t_fast < 5.0

    def test_sub_cycle_consumption(self):
        """compute_x16 < 16 consumes more than one block per cycle."""
        core = configured_core(in_blocks=256, compute_x16=8)
        cycles = run_zero_latency(core)
        assert cycles < 256

    def test_perf_counters_published(self):
        core = configured_core(in_blocks=32)
        run_zero_latency(core)
        assert core.csb_read(REG_PERF_CYCLES) > 0
        assert core.csb_read(REG_PERF_STALLS) <= core.csb_read(REG_PERF_CYCLES)


class TestCredits:
    def test_zero_credit_issues_nothing(self):
        core = configured_core()
        out = core.step(0, [], 0)
        assert out["reads"] == [] and out["writes"] == []

    def test_credit_one_serializes(self):
        core = configured_core(in_blocks=8, w_blocks=0, blocks_per_out=100)
        total = 0
        pending = []
        for _ in range(200):
            out = core.step(1, pending, 0)
            assert len(out["reads"]) + len(out["writes"]) <= 1
            total += len(out["reads"])
            pending = [r[0] for r in out["reads"]]
            core._writes_acked = core._writes_issued
            if not core.busy:
                break
        assert total == 8

    def test_low_credit_slower_than_high(self):
        # compute faster than 1 block/cycle so a 1-credit stream starves
        t_low = run_zero_latency(
            configured_core(in_blocks=128, compute_x16=8), credit=1)
        t_high = run_zero_latency(
            configured_core(in_blocks=128, compute_x16=8), credit=255)
        assert t_low > 1.5 * t_high


class TestWrapper:
    def test_struct_roundtrip_through_wrapper(self):
        lib = NVDLASharedLibrary()
        lib.reset()
        # configure via CSB struct traffic
        for addr, value in (
            (REG_IN_ADDR_LO, 0x1000), (REG_OUT_ADDR_LO, 0x2000),
            (REG_IN_BLOCKS, 4), (REG_W_BLOCKS, 0),
            (REG_COMPUTE_X16, 16), (REG_OP_ENABLE, 1),
        ):
            lib.tick(lib.input_spec.pack(
                csb_valid=1, csb_write=1, csb_addr=addr, csb_wdata=value
            ))
        assert lib.core.busy
        # run with generous credit, acking everything
        irq_seen = False
        pending: list[int] = []
        for _ in range(200):
            out = lib.output_spec.unpack(lib.tick(lib.input_spec.pack(
                credit=255,
                rd_resp_count=min(len(pending), 4),
                rd_resp_seqs=(pending + [0] * 4)[:4],
                wr_acks=min(lib.core._writes_issued - lib.core._writes_acked, 7),
            )))
            pending = [out["rd_seqs"][i] for i in range(out["rd_count"])]
            if out["irq"]:
                irq_seen = True
                break
        assert irq_seen

    def test_csb_read_through_wrapper(self):
        lib = NVDLASharedLibrary()
        lib.reset()
        out = lib.output_spec.unpack(lib.tick(lib.input_spec.pack(
            csb_valid=1, csb_write=0, csb_addr=REG_ID
        )))
        assert out["csb_rvalid"] == 1
        assert out["csb_rdata"] == NVDLA_ID_VALUE
