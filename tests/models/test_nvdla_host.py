"""NVDLA host application unit behaviour (trace load, CSB playback)."""

import pytest

from repro.dse.nvdla_system import build_nvdla_system
from repro.models.nvdla.host import TRACE_CMD_BASE, NVDLAHostApp
from repro.models.nvdla.trace import MAGIC


class TestLoadPhase:
    def test_command_stream_lands_in_memory(self):
        system = build_nvdla_system("sanity3", 1, "ideal", scale=0.1)
        system.run_to_completion()
        word = system.soc.physmem.read_word(TRACE_CMD_BASE, 4)
        assert word == MAGIC

    def test_image_lands_in_memory(self):
        system = build_nvdla_system("sanity3", 1, "ideal", scale=0.1)
        system.run_to_completion()
        trace = system.hosts[0].trace
        addr, data = trace.mem_image[0]
        assert system.soc.physmem.read(addr, 32) == data[:32]

    def test_instances_use_distinct_command_regions(self):
        system = build_nvdla_system("sanity3", 2, "ideal", scale=0.1)
        system.run_to_completion()
        for i in range(2):
            base = TRACE_CMD_BASE + i * 0x10_0000
            assert system.soc.physmem.read_word(base, 4) == MAGIC


class TestLifecycle:
    def test_results_unavailable_before_completion(self):
        system = build_nvdla_system("sanity3", 1, "ideal", scale=0.1)
        host = system.hosts[0]
        with pytest.raises(RuntimeError):
            host.exec_ticks()
        with pytest.raises(RuntimeError):
            host.total_ticks()

    def test_doorbell_after_load(self):
        system = build_nvdla_system("sanity3", 1, "ideal", scale=0.1,
                                    timed_load=True)
        system.run_to_completion()
        host = system.hosts[0]
        assert host.loaded
        assert host.start_tick is not None
        assert host.start_tick >= host.load_start_tick

    def test_accelerator_idle_after_completion(self):
        system = build_nvdla_system("sanity3", 1, "ideal", scale=0.1)
        system.run_to_completion()
        core = system.rtls[0].core
        assert not core.busy
        assert not core.irq_pending  # cleared by the trace's final command
