"""NVDLA in the SoC: host app, traces, IRQ flow, in-flight caps, SRAM
ablation, output payloads."""

import pytest

from repro.dse.nvdla_system import build_nvdla_system
from repro.models.nvdla import output_pattern, sanity3
from repro.models.nvdla.trace import RegWrite, Trace, WaitIrq


class TestTrace:
    def test_serialize_roundtrip(self):
        trace = sanity3(scale=0.1)
        cmds = Trace.deserialize_commands(trace.serialize())
        assert cmds == trace.commands()

    def test_command_stream_shape(self):
        trace = sanity3(scale=0.1)
        cmds = trace.commands()
        assert isinstance(cmds[-1], RegWrite)  # IRQ clear
        assert any(isinstance(c, WaitIrq) for c in cmds)

    def test_relocation_shifts_everything(self):
        trace = sanity3(scale=0.1)
        moved = trace.relocate(0x100_0000)
        assert moved.layers[0].in_addr == trace.layers[0].in_addr + 0x100_0000
        assert moved.mem_image[0][0] == trace.mem_image[0][0] + 0x100_0000
        assert moved.mem_image[0][1] == trace.mem_image[0][1]

    def test_block_accounting(self):
        trace = sanity3(scale=0.25)
        layer = trace.layers[0]
        assert trace.total_read_blocks() == layer.in_blocks + layer.w_blocks
        assert trace.total_write_blocks() >= 1

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            Trace.deserialize_commands(b"\0" * 16)


class TestEndToEnd:
    def test_single_instance_completes(self):
        system = build_nvdla_system("sanity3", n_nvdla=1, memory="HBM",
                                    max_inflight=64, scale=0.2)
        system.run_to_completion()
        host = system.hosts[0]
        assert host.done
        assert host.exec_ticks() > 0
        assert host.total_ticks() >= host.exec_ticks()
        rtl = system.rtls[0]
        trace = host.trace
        assert rtl.st_mem_reads.value() == trace.total_read_blocks()
        assert rtl.st_mem_writes.value() == trace.total_write_blocks()
        assert rtl.st_irqs.value() == 1

    def test_outputs_written_with_pattern(self):
        system = build_nvdla_system("sanity3", n_nvdla=1, memory="ideal",
                                    max_inflight=64, scale=0.1)
        system.run_to_completion()
        layer = system.hosts[0].trace.layers[0]
        got = system.soc.physmem.read(layer.out_addr, 64)
        assert got == output_pattern(layer.out_addr)
        assert got != b"\0" * 64

    def test_multiple_instances_isolated(self):
        system = build_nvdla_system("sanity3", n_nvdla=2, memory="HBM",
                                    max_inflight=64, scale=0.15)
        system.run_to_completion()
        assert all(h.done for h in system.hosts)
        l0 = system.hosts[0].trace.layers[0]
        l1 = system.hosts[1].trace.layers[0]
        assert l0.in_addr != l1.in_addr
        # each instance wrote its own output region
        for layer in (l0, l1):
            assert (
                system.soc.physmem.read(layer.out_addr, 64)
                == output_pattern(layer.out_addr)
            )

    def test_max_inflight_respected_under_timing(self):
        system = build_nvdla_system("sanity3", n_nvdla=1, memory="DDR4-1ch",
                                    max_inflight=8, scale=0.15)
        system.run_to_completion()
        assert system.rtls[0].st_inflight_peak.value() <= 8

    def test_low_inflight_slower(self):
        def t(mif):
            s = build_nvdla_system("sanity3", 1, "HBM", max_inflight=mif,
                                   scale=0.2)
            s.run_to_completion()
            return s.hosts[0].exec_ticks()

        assert t(2) > 2 * t(64)

    def test_timed_load_consumes_time(self):
        quick = build_nvdla_system("sanity3", 1, "HBM", max_inflight=64,
                                   scale=0.1, timed_load=False)
        quick.run_to_completion()
        slow = build_nvdla_system("sanity3", 1, "HBM", max_inflight=64,
                                  scale=0.1, timed_load=True)
        slow.run_to_completion()
        assert slow.hosts[0].total_ticks() > 2 * quick.hosts[0].total_ticks()
        # the host core actually executed the loader stores
        assert slow.soc.cores[0].st_stores.value() > 1000

    def test_sram_scratchpad_ablation_builds_and_runs(self):
        system = build_nvdla_system("sanity3", 1, "DDR4-1ch", max_inflight=64,
                                    scale=0.15, use_sram_scratchpad=True)
        system.run_to_completion()
        rtl = system.rtls[0]
        # activations rode the SRAMIF port
        assert rtl.st_mem_reads.value() > 0
        assert system.hosts[0].done

    def test_invalid_instance_count(self):
        with pytest.raises(ValueError):
            build_nvdla_system("sanity3", n_nvdla=0)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_nvdla_system("resnet", n_nvdla=1)


class TestMultiLayerPipeline:
    def test_three_layers_three_interrupts(self):
        from repro.models.nvdla.workloads import googlenet_pipeline

        trace = googlenet_pipeline(scale=0.05)
        assert len(trace.layers) == 3
        system = build_nvdla_system("googlenet_pipeline", 1, "HBM",
                                    max_inflight=64, scale=0.05)
        system.run_to_completion()
        assert system.rtls[0].st_irqs.value() == 3
        assert system.hosts[0].done

    def test_layers_reconfigure_between_doorbells(self):
        from repro.models.nvdla.trace import RegWrite, WaitIrq
        from repro.models.nvdla.workloads import googlenet_pipeline

        cmds = googlenet_pipeline(scale=0.05).commands()
        doorbells = [i for i, c in enumerate(cmds)
                     if isinstance(c, RegWrite) and c.addr == 0x3C]
        waits = [i for i, c in enumerate(cmds) if isinstance(c, WaitIrq)]
        assert len(doorbells) == 3 and len(waits) == 3
        # each wait follows its doorbell; reconfig happens in between
        for db, w in zip(doorbells, waits):
            assert w == db + 1

    def test_total_blocks_sum_layers(self):
        from repro.models.nvdla.workloads import googlenet_pipeline

        trace = googlenet_pipeline(scale=0.05)
        assert trace.total_read_blocks() == sum(
            l.in_blocks + l.w_blocks for l in trace.layers
        )
