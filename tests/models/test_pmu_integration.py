"""PMU inside the SoC: RTLObject wiring, MMIO driver, interrupt sampling."""

import pytest

from repro.models.pmu import PMUDriver, PMURTLObject, PMUSharedLibrary
from repro.soc.cpu import alu, branch, load
from repro.soc.cpu.core import EventWire
from repro.soc.system import SoC, SoCConfig


@pytest.fixture
def rig():
    soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
    pmu = PMURTLObject(soc.sim, "pmu", PMUSharedLibrary(),
                       clock=soc.sim.default_clock)
    soc.attach_rtl_cpu_side(pmu)
    drv = PMUDriver(soc.iomaster)
    return soc, pmu, drv


def small_workload(n=400):
    import random

    rng = random.Random(5)
    for _ in range(n):
        yield load(rng.randrange(0, 1 << 16) & ~7)
        yield alu(1)
        yield branch(rng.random() < 0.1)


class TestWiring:
    def test_commit_counts_match_simulator_stats(self, rig):
        soc, pmu, drv = rig
        core = soc.cores[0]
        pmu.connect_event(0, core.commit_wire, lanes=4)
        drv.enable(0b1111)
        soc.sim.startup()
        soc.sim.run(until=soc.sim.now + 30 * 500)
        core.run_stream(small_workload())
        soc.run_until_done()
        soc.sim.run(until=soc.sim.now + 100 * 500)
        values = {}
        drv.read_counters([0, 1, 2, 3], lambda r: values.update(r))
        soc.sim.run(until=soc.sim.now + 10**6)
        pmu.stop()
        assert sum(values.values()) == core.st_committed.value()

    def test_miss_counts_match(self, rig):
        soc, pmu, drv = rig
        core = soc.cores[0]
        wire = EventWire("miss")
        soc.l1ds[0].miss_listeners.append(lambda pkt: wire.pulse())
        pmu.connect_event(4, wire)
        drv.enable(1 << 4)
        # let the enable MMIO write land before events start flowing
        soc.sim.startup()
        soc.sim.run(until=soc.sim.now + 30 * 500)
        core.run_stream(small_workload())
        soc.run_until_done()
        # let deferred pulses (multiple misses in one cycle share a lane)
        # drain before sampling
        soc.sim.run(until=soc.sim.now + 100 * 500)
        values = {}
        drv.read_counter(4, lambda v: values.update({4: v}))
        soc.sim.run(until=soc.sim.now + 10**6)
        pmu.stop()
        assert values[4] == soc.l1ds[0].st_misses.value()

    def test_clock_event_counts_pmu_cycles(self, rig):
        soc, pmu, drv = rig
        pmu.connect_clock_event(5)
        drv.enable(1 << 5)
        soc.sim.startup()
        soc.sim.run(until=soc.sim.now + 500 * 500)  # 500 cycles at 2GHz
        values = {}
        drv.read_counter(5, lambda v: values.update({5: v}))
        soc.sim.run(until=soc.sim.now + 10**6)
        pmu.stop()
        # counter tracks cycles since enable (minus MMIO latency)
        assert 400 <= values[5] <= 3000

    def test_periodic_interrupts(self, rig):
        soc, pmu, drv = rig
        pmu.connect_clock_event(5)
        drv.enable(1 << 5)
        drv.set_threshold(5, 100)
        irqs = []
        pmu.on_interrupt(lambda t: irqs.append(t))
        soc.sim.startup()
        soc.sim.run(until=soc.sim.now + 1000 * 500)  # 1000 cycles
        pmu.stop()
        assert 8 <= len(irqs) <= 11
        gaps = [b - a for a, b in zip(irqs, irqs[1:])]
        assert all(abs(g - 100 * 500) <= 2 * 500 for g in gaps)

    def test_lane_overlap_rejected(self, rig):
        soc, pmu, _ = rig
        wire = EventWire("w")
        pmu.connect_event(0, wire, lanes=4)
        with pytest.raises(ValueError):
            pmu.connect_event(3, EventWire("x"))

    def test_lane_range_validated(self, rig):
        soc, pmu, _ = rig
        with pytest.raises(ValueError):
            pmu.connect_event(18, EventWire("w"), lanes=4)

    def test_event_deferral_when_lanes_exceeded(self, rig):
        """More pulses than lanes in one tick are deferred, not lost."""
        soc, pmu, drv = rig
        wire = EventWire("burst")
        pmu.connect_event(0, wire, lanes=1)
        drv.enable(0b1)
        soc.sim.startup()
        soc.sim.run(until=soc.sim.now + 30 * 500)  # enable lands first
        wire.pulse(10)  # burst of 10 events into one lane
        soc.sim.run(until=soc.sim.now + 60 * 500)
        values = {}
        drv.read_counter(0, lambda v: values.update({0: v}))
        soc.sim.run(until=soc.sim.now + 10**6)
        pmu.stop()
        assert values[0] == 10
        assert pmu.st_events_dropped.value() > 0


class TestCoreHandler:
    def test_isr_on_core_consumes_cycles(self, rig):
        """The paper's counter-dump handler runs on the core; attaching
        it perturbs the measured program (visible as extra cycles)."""
        soc, pmu, drv = rig
        core = soc.cores[0]
        pmu.connect_clock_event(5)
        pmu.attach_core_handler(core)
        drv.enable(1 << 5)
        drv.set_threshold(5, 1000)   # frequent interrupts
        soc.sim.startup()
        soc.sim.run(until=soc.sim.now + 30 * 500)
        core.run_stream(small_workload(3000))
        soc.run_until_done()
        pmu.stop()
        assert core.st_interrupts.value() >= 3
        # handler instructions were committed on top of the program's
        assert core.st_committed.value() > 3000 * 3
