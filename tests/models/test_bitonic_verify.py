"""End-to-end verification of the VHDL bitonic sorter (repro verify).

The bitonic design is the repo's GHDL-flow exemplar; this file proves
the whole verify stack — lint, coverage (both backends, identical),
fuzz and equivalence — works on a VHDL design, not just Verilog.
"""

from __future__ import annotations

from repro.cli import main
from repro.hdl.common import CoverageOptions
from repro.verify import (
    CoverageCollector,
    Stimulus,
    check_equivalence,
    fuzz,
    get_design,
    lint_source,
)

DESIGN = get_design("bitonic")


class TestLint:
    def test_bitonic_lints_clean(self):
        report = lint_source(DESIGN.source(), DESIGN.filename,
                             DESIGN.frontend)
        assert report.clean, report.format_text()


class TestCoverage:
    def test_full_statement_coverage_under_uniform_stimulus(self):
        sim = DESIGN.make_sim(instrument=CoverageOptions())
        collector = CoverageCollector(sim)
        Stimulus("uniform", 4, 48).apply(sim, collector)
        report = collector.report()
        # every stage register assignment executes each cycle
        assert report.statement_covered == report.statement_total > 0

    def test_coverage_identical_across_backends(self):
        docs = []
        for backend in ("interp", "codegen"):
            sim = DESIGN.make_sim(backend=backend,
                                  instrument=CoverageOptions())
            collector = CoverageCollector(sim)
            Stimulus("uniform", 4, 48).apply(sim, collector)
            doc = collector.report().to_dict()
            doc.pop("backend")
            docs.append(doc)
        assert docs[0] == docs[1]


class TestFuzzAndEquiv:
    def test_fuzz_is_deterministic_on_vhdl(self):
        make = lambda: DESIGN.make_sim(instrument=CoverageOptions())
        a = fuzz(make, seed=6, runs=4, cycles=16)
        b = fuzz(make, seed=6, runs=4, cycles=16)
        assert [s.to_dict() for s in a.corpus] == \
               [s.to_dict() for s in b.corpus]
        assert a.summary == b.summary

    def test_backends_equivalent(self):
        result = check_equivalence(
            lambda backend: DESIGN.make_sim(backend=backend),
            design="bitonic", seed=2, random_runs=1, cycles=24,
        )
        assert result.ok, result.format()


class TestCLI:
    def test_verify_pipeline_over_bitonic(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["verify", "lint", "bitonic"]) == 0
        assert main(["verify", "cover", "bitonic", "--cycles", "24"]) == 0
        assert main(["verify", "fuzz", "bitonic", "--runs", "3",
                     "--cycles", "16", "--corpus-dir", str(corpus)]) == 0
        assert main(["verify", "equiv", "bitonic", "--runs", "0",
                     "--cycles", "16", "--corpus-dir", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
