"""PMU: RTL-level behaviour of pmu.v and the wrapper contract."""

import io

import pytest

from repro.models.pmu import (
    N_COUNTERS,
    PMUSharedLibrary,
    counter_addr,
    load_pmu_source,
    threshold_addr,
    REG_ENABLE,
)


@pytest.fixture
def pmu() -> PMUSharedLibrary:
    lib = PMUSharedLibrary()
    lib.reset()
    return lib


def tick(lib, **fields):
    return lib.output_spec.unpack(lib.tick(lib.input_spec.pack(**fields)))


def axi_write(lib, addr, value):
    tick(lib, awvalid=1, awaddr=addr, wdata=value)


def axi_read(lib, addr) -> int:
    # the registered read data is valid after the clock edge of the
    # same wrapper tick that presented arvalid
    out = tick(lib, arvalid=1, araddr=addr)
    assert out["rvalid"] == 1
    return out["rdata"]


class TestSource:
    def test_source_is_real_verilog(self):
        src = load_pmu_source()
        assert "module pmu" in src
        assert "endmodule" in src
        assert "always @(posedge clk)" in src

    def test_parametrised_counter_count(self):
        lib = PMUSharedLibrary(n_counters=4)
        lib.reset()
        assert lib.n_counters == 4


class TestCounting:
    def test_disabled_counters_ignore_events(self, pmu):
        tick(pmu, events=0b1)
        assert pmu.peek_counter(0) == 0

    def test_enabled_counter_counts(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b1)
        for _ in range(5):
            tick(pmu, events=0b1)
        assert pmu.peek_counter(0) == 5

    def test_only_selected_events_counted(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b10)
        tick(pmu, events=0b11)
        tick(pmu, events=0b11)
        assert pmu.peek_counter(0) == 0
        assert pmu.peek_counter(1) == 2

    def test_multiple_events_same_cycle(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b1111)
        tick(pmu, events=0b1011)
        assert [pmu.peek_counter(i) for i in range(4)] == [1, 1, 0, 1]

    def test_one_cycle_recording_delay(self, pmu):
        """Events are visible one cycle after they occur (paper §6.1)."""
        axi_write(pmu, REG_ENABLE, 0b1)
        # read during the same tick the event arrives: old value
        out = tick(pmu, events=0b1, arvalid=1, araddr=counter_addr(0))
        assert out["rvalid"] == 1 and out["rdata"] == 0
        assert pmu.peek_counter(0) == 1

    def test_events_lost_during_reset(self, pmu):
        """Events arriving while rst is asserted are not counted."""
        axi_write(pmu, REG_ENABLE, 0b1)
        tick(pmu, events=0b1)
        pmu.reset()
        tick(pmu, events=0b1)  # enable was cleared by reset too
        assert pmu.peek_counter(0) == 0


class TestAXI:
    def test_counter_read_over_axi(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b1)
        for _ in range(3):
            tick(pmu, events=0b1)
        assert axi_read(pmu, counter_addr(0)) == 3

    def test_counter_write_sets_value(self, pmu):
        axi_write(pmu, counter_addr(2), 1000)
        assert axi_read(pmu, counter_addr(2)) == 1000

    def test_threshold_register_roundtrip(self, pmu):
        axi_write(pmu, threshold_addr(3), 77)
        assert axi_read(pmu, threshold_addr(3)) == 77

    def test_enable_register_roundtrip(self, pmu):
        axi_write(pmu, REG_ENABLE, 0xABCDE & ((1 << N_COUNTERS) - 1))
        assert axi_read(pmu, REG_ENABLE) == 0xABCDE & ((1 << N_COUNTERS) - 1)

    def test_unknown_address_reads_poison(self, pmu):
        assert axi_read(pmu, 0x300) == 0xDEADBEEF

    def test_addr_helpers_validate(self):
        with pytest.raises(ValueError):
            counter_addr(N_COUNTERS)
        with pytest.raises(ValueError):
            threshold_addr(-1)


class TestThresholds:
    def test_irq_on_threshold_and_auto_reset(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b1)
        axi_write(pmu, threshold_addr(0), 3)
        irqs = []
        for _ in range(9):
            out = tick(pmu, events=0b1)
            irqs.append(out["irq"])
        assert sum(irqs) == 3           # every 3 events
        assert pmu.peek_counter(0) == 0  # reset after the last crossing

    def test_irq_is_one_cycle_pulse(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b1)
        axi_write(pmu, threshold_addr(0), 1)
        out = tick(pmu, events=0b1)
        assert out["irq"] == 1
        out = tick(pmu)
        assert out["irq"] == 0

    def test_zero_threshold_disables_irq(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b1)
        for _ in range(20):
            out = tick(pmu, events=0b1)
            assert out["irq"] == 0
        assert pmu.peek_counter(0) == 20

    def test_independent_thresholds(self, pmu):
        axi_write(pmu, REG_ENABLE, 0b11)
        axi_write(pmu, threshold_addr(0), 2)
        axi_write(pmu, threshold_addr(1), 5)
        irqs = 0
        for _ in range(10):
            irqs += tick(pmu, events=0b11)["irq"]
        # counter0 fires at 2,4,6,8,10; counter1 at 5,10 (same-cycle
        # crossings produce a single pulse)
        assert irqs >= 5


class TestWaveforms:
    def test_waveform_stream_produced(self):
        stream = io.StringIO()
        lib = PMUSharedLibrary(trace_stream=stream, trace_enabled=True)
        lib.reset()
        tick(lib, events=0)
        assert "$enddefinitions" in stream.getvalue()

    def test_waveform_toggle(self):
        stream = io.StringIO()
        lib = PMUSharedLibrary(trace_stream=stream, trace_enabled=True)
        lib.reset()
        tick(lib, events=0b1)
        lib.disable_waveforms()
        size = len(stream.getvalue())
        axi_write(lib, REG_ENABLE, 1)
        tick(lib, events=0b1)
        assert len(stream.getvalue()) == size
