"""Bitonic sorter: the VHDL/GHDL-flow use case."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.bitonic import (
    BitonicSharedLibrary,
    LANES,
    PIPELINE_DEPTH,
    load_bitonic_source,
)


@pytest.fixture(scope="module")
def lib() -> BitonicSharedLibrary:
    lib = BitonicSharedLibrary(width=16)
    lib.reset()
    return lib


class TestSource:
    def test_source_is_real_vhdl(self):
        src = load_bitonic_source()
        assert "entity bitonic8" in src
        assert "rising_edge(clk)" in src
        assert "entity work.ce" in src

    def test_width_limit(self):
        with pytest.raises(ValueError):
            BitonicSharedLibrary(width=48)


class TestSorting:
    def test_sorted_ascending(self, lib):
        out = lib.sort8([8, 7, 6, 5, 4, 3, 2, 1])
        assert out == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_already_sorted(self, lib):
        vals = list(range(8))
        assert lib.sort8(vals) == vals

    def test_duplicates(self, lib):
        assert lib.sort8([5, 5, 1, 1, 9, 9, 0, 0]) == [0, 0, 1, 1, 5, 5, 9, 9]

    def test_all_equal(self, lib):
        assert lib.sort8([7] * 8) == [7] * 8

    def test_extremes(self, lib):
        vals = [0xFFFF, 0, 0xFFFF, 0, 1, 0xFFFE, 2, 3]
        assert lib.sort8(vals) == sorted(vals)

    def test_wrong_lane_count_rejected(self, lib):
        with pytest.raises(ValueError):
            lib.sort8([1, 2, 3])


class TestPipeline:
    def test_latency_is_pipeline_depth(self):
        lib = BitonicSharedLibrary(width=16)
        lib.reset()
        out = lib.output_spec.unpack(
            lib.tick(lib.input_spec.pack(valid_in=1, data=[3, 1, 2, 0, 7, 6, 5, 4]))
        )
        ticks = 1
        while not out["valid_out"]:
            out = lib.output_spec.unpack(lib.tick(lib.input_spec.zeros()))
            ticks += 1
        assert ticks == PIPELINE_DEPTH

    def test_one_result_per_cycle_throughput(self):
        lib = BitonicSharedLibrary(width=16)
        lib.reset()
        batches = [[(i * 37 + j * 11) % 1000 for j in range(8)]
                   for i in range(10)]
        results = []
        total = 0
        feed = iter(batches)
        while len(results) < len(batches):
            batch = next(feed, None)
            fields = (
                {"valid_in": 1, "data": batch} if batch is not None else {}
            )
            out = lib.output_spec.unpack(
                lib.tick(lib.input_spec.pack(**fields))
            )
            if out["valid_out"]:
                results.append(out["data"])
            total += 1
        assert total == len(batches) + PIPELINE_DEPTH - 1
        assert all(r == sorted(b) for r, b in zip(results, batches))

    def test_reset_clears_pipeline(self):
        lib = BitonicSharedLibrary(width=16)
        lib.reset()
        lib.tick(lib.input_spec.pack(valid_in=1, data=[1] * 8))
        lib.reset()
        for _ in range(PIPELINE_DEPTH + 2):
            out = lib.output_spec.unpack(lib.tick(lib.input_spec.zeros()))
            assert out["valid_out"] == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=0xFFFF),
                min_size=LANES, max_size=LANES))
def test_property_sorts_any_vector(lib_values):
    lib = test_property_sorts_any_vector._lib
    assert lib.sort8(lib_values) == sorted(lib_values)


# one shared instance for the property test (compilation is not free)
test_property_sorts_any_vector._lib = BitonicSharedLibrary(width=16)
test_property_sorts_any_vector._lib.reset()
