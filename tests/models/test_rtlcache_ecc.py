"""Parity-protected RTL cache variant: a single-bit upset in the data
or parity store becomes a detected-and-corrected refetch, never silent
corruption.  This is the hardened endpoint the fault campaign compares
against the plain cache."""

import pytest

from repro.models.rtlcache import (
    RTLCACHE_ECC_OUTPUT,
    RTLCACHE_OUTPUT,
    RTLCacheECCSharedLibrary,
    load_rtl_cache_ecc_source,
)


@pytest.fixture
def lib():
    lib = RTLCacheECCSharedLibrary(idxw=4, backend="interp")
    lib.reset()
    return lib


def tick(lib, **fields):
    return lib.output_spec.unpack(lib.tick(lib.input_spec.pack(**fields)))


WORDS = [0xA5A5_0000_0000_0000 + i for i in range(8)]


def fill_line(lib, addr, words=WORDS):
    out = tick(lib, req_valid=1, req_addr=addr)
    assert out["miss_valid"] == 1
    return tick(lib, req_valid=1, req_addr=addr, fill_valid=1,
                fill_data=words)


def corrupt_word(lib, addr, word, bit):
    """Flip one stored data bit of the line holding *addr*."""
    index = (addr >> 6) & (lib.lines - 1)
    line = lib.sim.peek_mem("data", index)
    lib.sim.poke_mem("data", index, line ^ (1 << (64 * word + bit)))


class TestEccBehaviour:
    def test_source_is_real_verilog(self):
        src = load_rtl_cache_ecc_source()
        assert "module rtl_cache_ecc" in src
        assert "corrections" in src

    def test_output_spec_extends_plain_cache(self):
        plain = {f.name for f in RTLCACHE_OUTPUT.fields}
        ecc = {f.name for f in RTLCACHE_ECC_OUTPUT.fields}
        assert ecc == plain | {"corrections"}

    def test_clean_hits_count_no_corrections(self, lib):
        out = fill_line(lib, 0x1040)
        assert out["resp_rdata"] == WORDS[0]
        for w in range(8):
            out = tick(lib, req_valid=1, req_addr=0x1040 + 8 * w)
            assert out["resp_was_hit"] == 1
            assert out["resp_rdata"] == WORDS[w]
        assert out["corrections"] == 0

    def test_data_upset_is_detected_and_corrected(self, lib):
        fill_line(lib, 0x1040)
        corrupt_word(lib, 0x1040, word=2, bit=17)
        # the poisoned read does not serve data: it refetches the line
        out = tick(lib, req_valid=1, req_addr=0x1040 + 8 * 2)
        assert out["resp_valid"] == 0
        assert out["miss_valid"] == 1
        assert out["corrections"] == 1
        # memory (write-through authoritative) supplies the truth
        out = tick(lib, req_valid=1, req_addr=0x1040 + 8 * 2,
                   fill_valid=1, fill_data=WORDS)
        assert out["resp_valid"] == 1
        assert out["resp_rdata"] == WORDS[2]
        # the refetch rewrote data + parity: subsequent hits are clean
        out = tick(lib, req_valid=1, req_addr=0x1040 + 8 * 2)
        assert out["resp_was_hit"] == 1
        assert out["resp_rdata"] == WORDS[2]
        assert out["corrections"] == 1

    def test_parity_store_upset_also_corrects(self, lib):
        fill_line(lib, 0x2000)
        index = (0x2000 >> 6) & (lib.lines - 1)
        par = lib.sim.peek_mem("par", index)
        lib.sim.poke_mem("par", index, par ^ (1 << 5))  # word 5's bit
        out = tick(lib, req_valid=1, req_addr=0x2000 + 8 * 5)
        assert out["resp_valid"] == 0 and out["miss_valid"] == 1
        out = tick(lib, req_valid=1, req_addr=0x2000 + 8 * 5,
                   fill_valid=1, fill_data=WORDS)
        assert out["resp_rdata"] == WORDS[5]
        assert out["corrections"] == 1

    def test_other_words_unaffected_by_upset(self, lib):
        fill_line(lib, 0x3000)
        corrupt_word(lib, 0x3000, word=1, bit=0)
        out = tick(lib, req_valid=1, req_addr=0x3000 + 8 * 4)
        assert out["resp_was_hit"] == 1
        assert out["resp_rdata"] == WORDS[4]
        assert out["corrections"] == 0

    def test_write_hit_updates_parity(self, lib):
        fill_line(lib, 0x4000)
        tick(lib, req_valid=1, req_write=1, req_addr=0x4010,
             req_wdata=0xFEED)
        out = tick(lib, req_valid=1, req_addr=0x4010)
        assert out["resp_rdata"] == 0xFEED
        assert out["corrections"] == 0  # parity followed the write

    def test_backends_agree_on_correction_flow(self):
        libs = [RTLCacheECCSharedLibrary(idxw=4, backend=b)
                for b in ("interp", "codegen")]
        outs = []
        for lib in libs:
            lib.reset()
            fill_line(lib, 0x1040)
            corrupt_word(lib, 0x1040, word=3, bit=40)
            seq = [tick(lib, req_valid=1, req_addr=0x1040 + 8 * 3)]
            seq.append(tick(lib, req_valid=1, req_addr=0x1040 + 8 * 3,
                            fill_valid=1, fill_data=WORDS))
            seq.append(tick(lib, req_valid=1, req_addr=0x1040 + 8 * 3))
            outs.append(seq)
        assert outs[0] == outs[1]
