"""Instruction encode/decode and register naming."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.insts import (
    BRANCH_OPS,
    HALT_OP,
    I_OPS,
    IMM_MAX,
    IMM_MIN,
    Inst,
    JAL_OP,
    LOAD_OP,
    LUI_OP,
    R_OPS,
    STORE_OP,
    decode,
    encode,
    reg_number,
)


class TestRegisters:
    def test_numeric_names(self):
        assert reg_number("x0") == 0
        assert reg_number("x31") == 31

    def test_abi_aliases(self):
        assert reg_number("zero") == 0
        assert reg_number("ra") == 1
        assert reg_number("sp") == 2
        assert reg_number("a0") == 12
        assert reg_number("t0") == 5

    def test_case_insensitive(self):
        assert reg_number("A0") == reg_number("a0")

    def test_invalid_rejected(self):
        for bad in ("x32", "q7", "", "x-1"):
            with pytest.raises(ValueError):
                reg_number(bad)


class TestEncodeDecode:
    def test_r_type_roundtrip(self):
        for name, op in R_OPS.items():
            inst = Inst(op, rd=3, rs1=17, rs2=31)
            assert decode(encode(inst)) == inst

    def test_i_type_roundtrip(self):
        for name, op in I_OPS.items():
            for imm in (0, 1, -1, IMM_MAX, IMM_MIN):
                inst = Inst(op, rd=5, rs1=6, imm=imm)
                assert decode(encode(inst)) == inst

    def test_memory_ops_roundtrip(self):
        lw = Inst(LOAD_OP, rd=7, rs1=12, imm=-64)
        sw = Inst(STORE_OP, rs1=12, rs2=7, imm=124)
        assert decode(encode(lw)) == lw
        assert decode(encode(sw)) == sw

    def test_branch_roundtrip(self):
        for op in BRANCH_OPS.values():
            inst = Inst(op, rs1=1, rs2=2, imm=-100)
            assert decode(encode(inst)) == inst

    def test_lui_20bit_imm(self):
        inst = Inst(LUI_OP, rd=9, imm=0xFFFFF)
        assert decode(encode(inst)) == inst

    def test_halt(self):
        assert decode(encode(Inst(HALT_OP))).opcode == HALT_OP

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            decode(0x7C)

    def test_words_fit_32_bits(self):
        worst = Inst(JAL_OP, rd=31, imm=IMM_MIN)
        assert 0 <= encode(worst) < (1 << 32)

    @given(
        op=st.sampled_from(sorted(I_OPS.values())),
        rd=st.integers(min_value=0, max_value=31),
        rs1=st.integers(min_value=0, max_value=31),
        imm=st.integers(min_value=IMM_MIN, max_value=IMM_MAX),
    )
    def test_property_itype_roundtrip(self, op, rd, rs1, imm):
        inst = Inst(op, rd=rd, rs1=rs1, imm=imm)
        word = encode(inst)
        assert 0 <= word < (1 << 32)
        assert decode(word) == inst
