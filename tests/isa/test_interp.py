"""Interpreter: semantics, µop lowering, programs, timing-core runs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import ISAError, assemble, run_program
from repro.isa.programs import bubble_sort, memcpy, sleep_demo, vector_sum
from repro.soc.cpu import uop as U
from repro.soc.mem import PhysicalMemory


def run_src(src: str, mem=None):
    mem = mem or PhysicalMemory()
    thread = run_program("main:\n" + src + "\n halt\n", mem)
    thread.run()
    return thread, mem


class TestALUSemantics:
    def test_arith(self):
        t, _ = run_src("""
            addi t0, zero, 7
            addi t1, zero, 3
            add  t2, t0, t1
            sub  t3, t0, t1
            mul  t4, t0, t1
        """)
        r = t.regs
        from repro.isa.insts import reg_number as R

        assert r[R("t2")] == 10 and r[R("t3")] == 4 and r[R("t4")] == 21

    def test_wraparound_32bit(self):
        t, _ = run_src("""
            li   t0, 0xFFFFFFFF
            addi t0, t0, 1
        """)
        from repro.isa.insts import reg_number as R

        assert t.regs[R("t0")] == 0

    def test_logic_and_shifts(self):
        t, _ = run_src("""
            li   t0, 0xF0F0
            andi t1, t0, 0xF0
            ori  t2, t0, 0x0F
            slli t3, t0, 4
            srli t4, t0, 4
        """)
        from repro.isa.insts import reg_number as R

        r = t.regs
        assert r[R("t1")] == 0xF0
        assert r[R("t2")] == 0xF0FF
        assert r[R("t3")] == 0xF0F00
        assert r[R("t4")] == 0xF0F

    def test_signed_compare_and_sra(self):
        t, _ = run_src("""
            addi t0, zero, -8
            addi t1, zero, 3
            slt  t2, t0, t1
            sltu t3, t0, t1
            sra  t4, t0, t1
        """)
        from repro.isa.insts import reg_number as R

        r = t.regs
        assert r[R("t2")] == 1          # -8 < 3 signed
        assert r[R("t3")] == 0          # huge unsigned
        assert r[R("t4")] == (-1) & 0xFFFFFFFF  # arithmetic shift

    def test_x0_hardwired_zero(self):
        t, _ = run_src("addi zero, zero, 42\n add t0, zero, zero")
        assert t.regs[0] == 0


class TestControlFlow:
    def test_loop_counts(self):
        t, _ = run_src("""
            addi t0, zero, 0
            addi t1, zero, 10
        loop:
            addi t0, t0, 1
            blt  t0, t1, loop
        """)
        from repro.isa.insts import reg_number as R

        assert t.regs[R("t0")] == 10

    def test_call_and_return(self):
        t, _ = run_src("""
            jal  func
            j    end
        func:
            addi a0, zero, 99
            ret
        end:
            nop
        """)
        from repro.isa.insts import reg_number as R

        assert t.regs[R("a0")] == 99

    def test_runaway_detection(self):
        mem = PhysicalMemory()
        thread = run_program("main: j main\n", mem, max_instructions=1000)
        with pytest.raises(ISAError, match="limit"):
            thread.run()


class TestMemory:
    def test_load_store_roundtrip(self):
        t, mem = run_src("""
            li  a0, 0x1000
            li  t0, 0xCAFE
            sw  t0, 0(a0)
            lw  t1, 0(a0)
            sw  t1, 8(a0)
        """)
        assert mem.read_word(0x1000, 4) == 0xCAFE
        assert mem.read_word(0x1008, 4) == 0xCAFE

    def test_data_directives_visible(self):
        mem = PhysicalMemory()
        thread = run_program("""
        main:
            li  a0, 0x2000
            lw  t0, 0(a0)
            addi t0, t0, 1
            sw  t0, 4(a0)
            halt
        .org 0x2000
        data: .word 41
        """, mem)
        thread.run()
        assert mem.read_word(0x2004, 4) == 42


class TestUopLowering:
    def test_kinds_match_instructions(self):
        mem = PhysicalMemory()
        thread = run_program("""
        main:
            addi t0, zero, 1
            lw   t1, 0(zero)
            sw   t1, 8(zero)
            beq  t0, zero, main
            halt
        """, mem)
        kinds = [u[0] for u in thread.uops()]
        # a cold FETCH precedes the first instruction of each i-line
        assert kinds == [U.FETCH, U.ALU, U.LOAD, U.STORE, U.BRANCH]

    def test_load_uop_carries_effective_address(self):
        mem = PhysicalMemory()
        thread = run_program("""
        main:
            li  a0, 0x3000
            lw  t0, 16(a0)
            halt
        """, mem)
        uops = list(thread.uops())
        loads = [u for u in uops if u[0] == U.LOAD]
        assert loads == [(U.LOAD, 0x3010)]

    def test_sleep_instruction_yields_sleep_uop(self):
        mem = PhysicalMemory()
        thread = run_program("""
        main:
            li    t0, 1234
            sleep t0
            halt
        """, mem)
        uops = list(thread.uops())
        assert (U.SLEEP, 1234) in uops

    def test_branch_predictor_learns(self):
        mem = PhysicalMemory()
        thread = run_program("""
        main:
            addi t0, zero, 0
            addi t1, zero, 50
        loop:
            addi t0, t0, 1
            blt  t0, t1, loop
            halt
        """, mem)
        uops = list(thread.uops())
        miss = sum(arg for kind, arg in uops if kind == U.BRANCH)
        assert miss <= 5  # a monotone loop branch becomes predictable


class TestPrograms:
    def test_bubble_sort_sorts(self):
        mem = PhysicalMemory()
        rng = random.Random(3)
        vals = [rng.randrange(0, 1 << 30) for _ in range(48)]
        for i, v in enumerate(vals):
            mem.write_word(0x10_0000 + 4 * i, v, 4)
        run_program(bubble_sort(n=48), mem).run()
        got = [mem.read_word(0x10_0000 + 4 * i, 4) for i in range(48)]
        assert got == sorted(vals)

    def test_memcpy_copies(self):
        mem = PhysicalMemory()
        mem.write(0x10_0000, bytes(range(128)))
        run_program(memcpy(n=128), mem).run()
        assert mem.read(0x20_0000, 128) == bytes(range(128))

    def test_vector_sum(self):
        mem = PhysicalMemory()
        for i in range(32):
            mem.write_word(0x10_0000 + 4 * i, i * 3, 4)
        run_program(vector_sum(n=32), mem).run()
        assert mem.read_word(0x30_0000, 4) == sum(i * 3 for i in range(32))

    def test_sleep_demo_has_three_phases(self):
        mem = PhysicalMemory()
        thread = run_program(sleep_demo(cycles=500), mem)
        uops = list(thread.uops())
        sleeps = [u for u in uops if u[0] == U.SLEEP]
        assert sleeps == [(U.SLEEP, 500)] * 2


class TestOnTimingCore:
    def test_program_runs_on_soc(self, small_soc):
        soc = small_soc
        rng = random.Random(5)
        vals = [rng.randrange(0, 1 << 20) for _ in range(32)]
        for i, v in enumerate(vals):
            soc.physmem.write_word(0x10_0000 + 4 * i, v, 4)
        thread = run_program(bubble_sort(n=32), soc.physmem)
        soc.cores[0].run_stream(thread.uops())
        soc.run_until_done()
        got = [soc.physmem.read_word(0x10_0000 + 4 * i, 4) for i in range(32)]
        assert got == sorted(vals)
        assert soc.cores[0].st_committed.value() == thread.retired - 1
        assert 0.3 < soc.cores[0].ipc() < 4.0


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 31) - 1),
                min_size=2, max_size=24))
def test_property_assembly_sort_matches_python_sort(values):
    mem = PhysicalMemory()
    for i, v in enumerate(values):
        mem.write_word(0x10_0000 + 4 * i, v, 4)
    run_program(bubble_sort(n=len(values)), mem).run()
    got = [mem.read_word(0x10_0000 + 4 * i, 4) for i in range(len(values))]
    assert got == sorted(values)


class TestInstructionFetch:
    def test_cold_fetch_per_line(self):
        from repro.soc.mem import PhysicalMemory

        mem = PhysicalMemory()
        # 40 instructions ~ 160 bytes ~ 3 i-lines
        body = "\n".join("    addi t0, t0, 1" for _ in range(40))
        thread = run_program(f"main:\n{body}\n    halt\n", mem)
        uops = list(thread.uops())
        fetches = [u for u in uops if u[0] == U.FETCH]
        assert len(fetches) == 3
        # fetch addresses are line-aligned and distinct
        addrs = [a for _, a in fetches]
        assert all(a % 64 == 0 for a in addrs)
        assert len(set(addrs)) == 3

    def test_loop_fetches_each_line_once(self):
        from repro.soc.mem import PhysicalMemory

        mem = PhysicalMemory()
        thread = run_program("""
        main:
            addi t0, zero, 0
            addi t1, zero, 50
        loop:
            addi t0, t0, 1
            blt  t0, t1, loop
            halt
        """, mem)
        uops = list(thread.uops())
        fetches = sum(1 for u in uops if u[0] == U.FETCH)
        assert fetches == 1  # whole program fits one line, fetched once

    def test_l1i_sees_fetches_on_soc(self, small_soc):
        from repro.isa.programs import vector_sum

        soc = small_soc
        for i in range(64):
            soc.physmem.write_word(0x10_0000 + 4 * i, i, 4)
        thread = run_program(vector_sum(n=64), soc.physmem)
        soc.cores[0].run_stream(thread.uops())
        soc.run_until_done()
        assert soc.physmem.read_word(0x30_0000, 4) == sum(range(64))
        assert soc.cores[0].st_fetches.value() >= 1
        assert soc.l1is[0].st_misses.value() >= 1
