"""Assembler: directives, labels, pseudo-expansion, errors."""

import pytest

from repro.isa import AsmError, assemble
from repro.isa.insts import I_OPS, JAL_OP, LUI_OP, WORD, decode


def words_of(program):
    return [decode(program.words[a]) for a in sorted(program.words)]


class TestBasics:
    def test_simple_program(self):
        p = assemble("main:\n  addi t0, zero, 5\n  halt\n")
        insts = words_of(p)
        assert insts[0].name == "addi" and insts[0].imm == 5
        assert insts[1].name == "halt"
        assert p.entry == 0

    def test_labels_resolve_forward_and_backward(self):
        p = assemble("""
        start:
            j skip
            nop
        skip:
            j start
            halt
        """)
        insts = words_of(p)
        assert insts[0].name == "jal" and insts[0].imm == 2  # word index
        assert insts[2].name == "jal" and insts[2].imm == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("a:\n nop\na:\n nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AsmError, match="undefined"):
            assemble("j nowhere\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("frobnicate t0\n")

    def test_operand_count_checked(self):
        with pytest.raises(AsmError, match="expects"):
            assemble("add t0, t1\n")

    def test_comments_and_blank_lines(self):
        p = assemble("""
        # a comment
        main:              ; trailing style
            nop            # inline
        """)
        assert len(p.words) == 1


class TestDirectives:
    def test_org_places_code(self):
        p = assemble(".org 0x100\nmain: halt\n")
        assert 0x100 in p.words
        assert p.symbols["main"] == 0x100

    def test_word_data(self):
        p = assemble(".org 0x200\ntbl: .word 1, 2, 0xFF\n")
        assert [p.words[0x200 + 4 * i] for i in range(3)] == [1, 2, 0xFF]

    def test_word_with_label_value(self):
        p = assemble("""
        main: halt
        .org 0x40
        ptr: .word main
        """)
        assert p.words[0x40] == p.symbols["main"]

    def test_space_reserves_zeroed(self):
        p = assemble(".org 0x80\nbuf: .space 12\n")
        assert [p.words[0x80 + 4 * i] for i in range(3)] == [0, 0, 0]

    def test_unknown_directive(self):
        with pytest.raises(AsmError, match="directive"):
            assemble(".banana 3\n")

    def test_segments_coalesce(self):
        p = assemble("a: .word 1, 2\n.org 0x100\nb: .word 3\n")
        segs = p.to_segments()
        assert len(segs) == 2
        assert segs[0] == (0, (1).to_bytes(4, "little") + (2).to_bytes(4, "little"))


class TestPseudos:
    def test_li_expands_to_two_instructions(self):
        p = assemble("main: li a0, 0xDEADBEEF\nhalt\n")
        insts = words_of(p)
        assert insts[0].opcode == LUI_OP
        assert insts[1].opcode == I_OPS["ori"]
        assert len(insts) == 3

    def test_li_size_stable_across_passes(self):
        # label after li must account for the 2-word expansion
        p = assemble("""
        main:
            li a0, 0x12345678
            j after
        after:
            halt
        """)
        assert p.symbols["after"] == 3 * WORD

    def test_mv_nop_ret(self):
        p = assemble("main:\n mv a0, a1\n nop\n ret\n")
        insts = words_of(p)
        assert insts[0].name == "addi" and insts[0].imm == 0
        assert insts[1].name == "addi" and insts[1].rd == 0
        assert insts[2].name == "jalr"

    def test_ble_bgt_swap_operands(self):
        from repro.isa.insts import reg_number

        p = assemble("main:\nloop: ble t0, t1, loop\n bgt t0, t1, loop\n")
        insts = words_of(p)
        t0, t1 = reg_number("t0"), reg_number("t1")
        # ble a,b == bge b,a ; bgt a,b == blt b,a
        assert insts[0].name == "bge"
        assert (insts[0].rs1, insts[0].rs2) == (t1, t0)
        assert insts[1].name == "blt"
        assert (insts[1].rs1, insts[1].rs2) == (t1, t0)

    def test_not_neg(self):
        p = assemble("main:\n not t0, t1\n neg t2, t3\n")
        insts = words_of(p)
        assert insts[0].name == "xori" and insts[0].imm == -1
        assert insts[1].name == "sub" and insts[1].rs1 == 0


class TestImmediates:
    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(AsmError, match="out of range"):
            assemble("main: addi t0, zero, 20000\n")

    def test_hex_and_negative(self):
        p = assemble("main: addi t0, zero, -0x10\n")
        assert words_of(p)[0].imm == -16

    def test_memory_operand_syntax(self):
        p = assemble("main: lw t0, -8(sp)\n sw t0, 12(sp)\n")
        insts = words_of(p)
        assert insts[0].name == "lw" and insts[0].imm == -8
        assert insts[1].name == "sw" and insts[1].imm == 12

    def test_bad_memory_operand(self):
        with pytest.raises(AsmError, match="imm\\(reg\\)"):
            assemble("main: lw t0, t1\n")
