"""Statistics framework: counters, vectors, distributions, groups."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.soc.stats import Distribution, Formula, Scalar, StatGroup, Vector


class TestScalar:
    def test_starts_at_zero(self):
        assert Scalar("s").value() == 0

    def test_inc_and_iadd(self):
        s = Scalar("s")
        s.inc()
        s.inc(4)
        s += 5
        assert s.value() == 10

    def test_set_and_reset(self):
        s = Scalar("s")
        s.set(42)
        assert s.value() == 42
        s.reset()
        assert s.value() == 0

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            Scalar("has space")
        with pytest.raises(ValueError):
            Scalar("")


class TestVector:
    def test_indexing_and_total(self):
        v = Vector("v", 4)
        v.inc(1, 10)
        v.inc(3)
        assert v[1] == 10 and v[3] == 1
        assert v.total() == 11
        assert len(v) == 4

    def test_rows_include_total(self):
        v = Vector("v", 2)
        v.inc(0, 3)
        rows = dict(v.rows())
        assert rows["::0"] == 3
        assert rows["::total"] == 3

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Vector("v", 0)

    def test_reset(self):
        v = Vector("v", 2)
        v.inc(0)
        v.reset()
        assert v.total() == 0


class TestDistribution:
    def test_mean_and_count(self):
        d = Distribution("d", 0, 100, 10)
        for x in (5, 15, 25):
            d.sample(x)
        assert d.count == 3
        assert d.mean() == pytest.approx(15.0)

    def test_overflow_underflow(self):
        d = Distribution("d", 10, 20)
        d.sample(5)
        d.sample(25)
        d.sample(15)
        assert d.underflow == 1
        assert d.overflow == 1
        assert d.count == 3

    def test_stdev_matches_sample_stdev(self):
        d = Distribution("d", 0, 1000)
        values = [3, 7, 7, 19]
        for v in values:
            d.sample(v)
        mean = sum(values) / len(values)
        expected = math.sqrt(
            sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        )
        assert d.stdev() == pytest.approx(expected)

    def test_weighted_samples(self):
        d = Distribution("d", 0, 10)
        d.sample(4, count=5)
        assert d.count == 5
        assert d.mean() == pytest.approx(4.0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            Distribution("d", 10, 0)

    @given(st.lists(st.integers(min_value=-50, max_value=150), min_size=1))
    def test_property_bucket_mass_conserved(self, xs):
        d = Distribution("d", 0, 100, 7)
        for x in xs:
            d.sample(x)
        v = d.value()
        assert sum(v["buckets"]) + v["underflow"] + v["overflow"] == len(xs)


class TestFormula:
    def test_lazy_evaluation(self):
        a = Scalar("a")
        f = Formula("f", lambda: a.value() * 2)
        assert f.value() == 0
        a.inc(21)
        assert f.value() == 42


class TestStatGroup:
    def test_tree_dump_with_dotted_names(self):
        root = StatGroup("system")
        child = StatGroup("cpu0", root)
        child.scalar("cycles").inc(100)
        root.scalar("ticks").inc(7)
        flat = root.dump()
        assert flat["system.cpu0.cycles"] == 100
        assert flat["system.ticks"] == 7

    def test_duplicate_stat_rejected(self):
        g = StatGroup("g")
        g.scalar("x")
        with pytest.raises(ValueError):
            g.scalar("x")

    def test_duplicate_child_rejected(self):
        root = StatGroup("root")
        StatGroup("a", root)
        with pytest.raises(ValueError):
            StatGroup("a", root)

    def test_dump_and_reset_gives_interval_semantics(self):
        g = StatGroup("g")
        s = g.scalar("events")
        s.inc(5)
        first = g.dump_and_reset()
        s.inc(3)
        second = g.dump_and_reset()
        assert first["g.events"] == 5
        assert second["g.events"] == 3

    def test_recursive_reset(self):
        root = StatGroup("r")
        child = StatGroup("c", root)
        s = child.scalar("x")
        s.inc(9)
        root.reset()
        assert s.value() == 0

    def test_path(self):
        root = StatGroup("sys")
        child = StatGroup("llc", root)
        assert child.path() == "sys.llc"

    def test_format_text_contains_markers(self):
        g = StatGroup("g")
        g.scalar("x").inc(1)
        text = g.format_text()
        assert "Begin Simulation Statistics" in text
        assert "g.x" in text

    def test_vector_rows_in_dump(self):
        g = StatGroup("g")
        v = g.vector("banks", 2)
        v.inc(1, 5)
        flat = g.dump()
        assert flat["g.banks::1"] == 5
        assert flat["g.banks::total"] == 5
