"""Core interrupt delivery: handler streams steal core cycles."""

import pytest

from repro.soc.cpu import OoOCore, alu, load, store
from repro.soc.mem import IdealMemory
from repro.soc.simobject import Simulation


def make_rig():
    sim = Simulation()
    core = OoOCore(sim, "cpu")
    mem = IdealMemory(sim, "m", latency_cycles=2)
    core.dcache_port.connect(mem.port)
    return sim, core


def run_to_done(sim, core):
    sim.startup()
    while not core.done:
        sim.run(until=sim.now + 10**6)


class TestInterrupts:
    def test_handler_uops_commit(self):
        sim, core = make_rig()
        core.run_stream([alu(1)] * 1000)
        sim.startup()
        sim.run(until=sim.now + 50 * 500)
        core.raise_interrupt([alu(1)] * 25)
        run_to_done(sim, core)
        assert core.st_committed.value() == 1025
        assert core.st_interrupts.value() == 1

    def test_interrupts_steal_cycles(self):
        def run(with_irqs):
            sim, core = make_rig()
            core.run_stream([alu(1)] * 3000)
            sim.startup()
            sim.run(until=sim.now + 20 * 500)
            if with_irqs:
                for _ in range(10):
                    core.raise_interrupt(
                        [load(0x100), alu(1), store(0x108)] * 10
                    )
            run_to_done(sim, core)
            return core.st_cycles.value()

        base = run(False)
        with_irq = run(True)
        assert with_irq > base + 10 * 30  # handler work + entry/exit

    def test_nested_return_to_interrupted_stream(self):
        sim, core = make_rig()
        core.run_stream([load(i * 8) for i in range(200)])
        sim.startup()
        sim.run(until=sim.now + 30 * 500)
        core.raise_interrupt([alu(1)] * 5)
        core.raise_interrupt([alu(1)] * 5)
        run_to_done(sim, core)
        assert core.st_committed.value() == 200 + 10
        assert core.st_interrupts.value() == 2

    def test_interrupt_while_idle_program_still_finishes(self):
        sim, core = make_rig()
        core.run_stream([alu(1)] * 10)
        run_to_done(sim, core)
        # late interrupt after completion is simply never taken
        core.raise_interrupt([alu(1)])
        sim.run(until=sim.now + 10**6)
        assert core.st_interrupts.value() == 0
