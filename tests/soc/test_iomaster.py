"""IOMaster: ordered MMIO with callbacks."""

from repro.soc.iomaster import IOMaster
from repro.soc.mem import IdealMemory
from repro.soc.simobject import Simulation


def make_rig():
    sim = Simulation()
    io = IOMaster(sim, "io")
    mem = IdealMemory(sim, "mem", latency_cycles=2)
    io.port.connect(mem.port)
    return sim, io, mem


class TestIOMaster:
    def test_write_then_read(self):
        sim, io, mem = make_rig()
        got = []
        io.write_word(0x100, 0xCAFEBABE)
        io.read(0x100, size=4,
                callback=lambda pkt: got.append(int.from_bytes(pkt.data, "little")))
        sim.run(until=10**7)
        assert got == [0xCAFEBABE]

    def test_operations_complete_in_order(self):
        sim, io, _ = make_rig()
        order = []
        for i in range(5):
            io.read(i * 8, callback=lambda pkt, i=i: order.append(i))
        sim.run(until=10**7)
        assert order == [0, 1, 2, 3, 4]

    def test_busy_flag(self):
        sim, io, _ = make_rig()
        assert not io.busy
        io.read(0)
        assert io.busy
        sim.run(until=10**7)
        assert not io.busy

    def test_stats_counters(self):
        sim, io, _ = make_rig()
        io.read(0)
        io.write(8, b"\0\0\0\0")
        sim.run(until=10**7)
        assert io.st_reads.value() == 1
        assert io.st_writes.value() == 1

    def test_write_word_masks_to_size(self):
        sim, io, mem = make_rig()
        io.write_word(0x40, 0x1_2345_6789, size=4)
        sim.run(until=10**7)
        assert mem.physmem.read_word(0x40, 4) == 0x2345_6789

    def test_callbacks_receive_packet(self):
        sim, io, mem = make_rig()
        mem.physmem.write(0x200, b"\x01\x02\x03\x04\x05\x06\x07\x08")
        seen = []
        io.read(0x200, size=8, callback=lambda pkt: seen.append(pkt.data))
        sim.run(until=10**7)
        assert seen == [b"\x01\x02\x03\x04\x05\x06\x07\x08"]
