"""End-to-end memory-system properties under randomized traffic.

Drives random reads/writes through the full hierarchy (L1 → L2 → LLC →
crossbars → DRAM) and checks the two invariants everything else rests
on: no request is ever lost, and every read returns exactly what the
most recent write to that address stored (a sequential-consistency check
for a single ordered requester).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.cache import Cache, StridePrefetcher
from repro.soc.interconnect import Crossbar
from repro.soc.iomaster import IOMaster
from repro.soc.mem import DRAMController, ddr4_2400
from repro.soc.simobject import Simulation


def build_stack(mshrs=8, prefetch=True):
    sim = Simulation()
    io = IOMaster(sim, "io")
    l1 = Cache(sim, "l1", 4 * 1024, 2, 1, mshrs=mshrs)
    pf = StridePrefetcher() if prefetch else None
    l2 = Cache(sim, "l2", 16 * 1024, 4, 3, mshrs=mshrs, prefetcher=pf)
    llc = Cache(sim, "llc", 64 * 1024, 8, 6, mshrs=mshrs * 2)
    xbar = Crossbar(sim, "xbar")
    dram = DRAMController(sim, "dram", ddr4_2400(2))

    io.port.connect(l1.cpu_side)
    l1.mem_side.connect(l2.cpu_side)
    l2.mem_side.connect(llc.cpu_side)
    llc.mem_side.connect(xbar.new_cpu_port())
    dram.connect_xbar(xbar)
    return sim, io


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),                                  # is_write
            st.integers(min_value=0, max_value=255),        # block number
            st.integers(min_value=0, max_value=7),          # word in block
            st.integers(min_value=0, max_value=2**64 - 1),  # data
        ),
        min_size=1,
        max_size=120,
    )
)
def test_property_reads_see_latest_writes(ops):
    sim, io = build_stack()
    reference: dict[int, int] = {}
    failures: list[str] = []
    completed = [0]

    def issue(is_write, addr, data):
        if is_write:
            reference[addr] = data
            io.write(addr, data.to_bytes(8, "little"),
                     callback=lambda pkt: completed.__setitem__(
                         0, completed[0] + 1))
        else:
            expected = reference.get(addr, 0)

            def check(pkt, want=expected, a=addr):
                completed[0] += 1
                got = int.from_bytes(pkt.data, "little")
                if got != want:
                    failures.append(f"{a:#x}: got {got:#x} want {want:#x}")

            io.read(addr, size=8, callback=check)

    for is_write, block, word, data in ops:
        issue(is_write, block * 64 + word * 8, data)

    limit = 10**9
    while completed[0] < len(ops) and sim.now < limit:
        sim.run(until=sim.now + 10**6)
    assert completed[0] == len(ops), "requests were lost in the hierarchy"
    assert not failures, failures[:5]


@pytest.mark.parametrize("mshrs,prefetch", [(1, False), (4, True), (16, True)])
def test_randomized_soak_across_configs(mshrs, prefetch):
    """Heavier fixed-seed soak across structural corner configs."""
    sim, io = build_stack(mshrs=mshrs, prefetch=prefetch)
    rng = random.Random(1234)
    reference: dict[int, int] = {}
    failures: list[str] = []
    completed = [0]
    n = 600

    for _ in range(n):
        addr = (rng.randrange(512) * 64 + rng.randrange(8) * 8)
        if rng.random() < 0.4:
            data = rng.getrandbits(64)
            reference[addr] = data
            io.write(addr, data.to_bytes(8, "little"),
                     callback=lambda pkt: completed.__setitem__(
                         0, completed[0] + 1))
        else:
            want = reference.get(addr, 0)

            def check(pkt, want=want, a=addr):
                completed[0] += 1
                got = int.from_bytes(pkt.data, "little")
                if got != want:
                    failures.append(f"{a:#x}: {got:#x} != {want:#x}")

            io.read(addr, size=8, callback=check)

    while completed[0] < n and sim.now < 10**10:
        sim.run(until=sim.now + 10**7)
    assert completed[0] == n
    assert not failures, failures[:5]
