"""Crossbar: routing, interleaving, queueing, retries, response paths."""

import pytest

from repro.soc.interconnect import AddrRange, Crossbar
from repro.soc.mem import IdealMemory
from repro.soc.packet import MemCmd, Packet
from repro.soc.ports import RequestPort, ResponsePort
from repro.soc.simobject import Simulation


class TestAddrRange:
    def test_plain_containment(self):
        r = AddrRange(0x1000, 0x2000)
        assert r.contains(0x1000)
        assert r.contains(0x1FFF)
        assert not r.contains(0x2000)
        assert not r.contains(0xFFF)

    def test_interleaved_matching(self):
        r0 = AddrRange(0, 1 << 32, intlv_count=2, intlv_match=0)
        r1 = AddrRange(0, 1 << 32, intlv_count=2, intlv_match=1)
        assert r0.contains(0) and not r1.contains(0)
        assert r1.contains(64) and not r0.contains(64)
        assert r0.contains(128)

    def test_interleave_within_bounds_only(self):
        r = AddrRange(0x1000, 0x2000, intlv_count=2, intlv_match=0)
        assert not r.contains(0x2040)


class TestRouting:
    def test_requests_route_by_range(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x")
        received = {0: [], 1: []}

        def sink(idx):
            return ResponsePort(
                f"sink{idx}",
                recv_timing_req=lambda pkt: (received[idx].append(pkt), True)[1],
            )

        drv = RequestPort("drv", recv_timing_resp=lambda pkt: True,
                          recv_req_retry=lambda: None)
        drv.connect(xbar.new_cpu_port())
        xbar.new_mem_port(AddrRange(0, 0x1000)).connect(sink(0))
        xbar.new_mem_port(AddrRange(0x1000, 0x2000)).connect(sink(1))

        drv.send_timing_req(Packet(MemCmd.ReadReq, 0x500, 8))
        drv.send_timing_req(Packet(MemCmd.ReadReq, 0x1500, 8))
        sim.run(until=10**6)
        assert len(received[0]) == 1 and len(received[1]) == 1

    def test_unroutable_address_raises(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x")
        xbar.new_mem_port(AddrRange(0, 0x1000))
        with pytest.raises(ValueError):
            xbar.route(0x5000)

    def test_response_returns_to_originating_port(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x")
        mem = IdealMemory(sim, "mem", latency_cycles=1)
        got = {0: [], 1: []}
        drvs = []
        for i in range(2):
            drv = RequestPort(
                f"drv{i}",
                recv_timing_resp=lambda pkt, i=i: (got[i].append(pkt), True)[1],
                recv_req_retry=lambda: None,
            )
            drv.connect(xbar.new_cpu_port())
            drvs.append(drv)
        xbar.new_mem_port().connect(mem.port)
        drvs[0].send_timing_req(Packet(MemCmd.ReadReq, 0x0, 8))
        drvs[1].send_timing_req(Packet(MemCmd.ReadReq, 0x40, 8))
        sim.run(until=10**6)
        assert len(got[0]) == 1 and len(got[1]) == 1

    def test_sender_state_restored(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x")
        mem = IdealMemory(sim, "mem", latency_cycles=1)
        seen = []
        drv = RequestPort(
            "drv",
            recv_timing_resp=lambda pkt: (seen.append(pkt), True)[1],
            recv_req_retry=lambda: None,
        )
        drv.connect(xbar.new_cpu_port())
        xbar.new_mem_port().connect(mem.port)
        pkt = Packet(MemCmd.ReadReq, 0x40, 8)
        pkt.push_state("mine")
        drv.send_timing_req(pkt)
        sim.run(until=10**6)
        assert seen[0].pop_state() == "mine"


class TestFlowControl:
    def test_queue_full_rejects_and_retries(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x", queue_depth=2)
        mem = IdealMemory(sim, "mem", latency_cycles=1)
        retried = []
        drv = RequestPort(
            "drv",
            recv_timing_resp=lambda pkt: True,
            recv_req_retry=lambda: retried.append(True),
        )
        drv.connect(xbar.new_cpu_port())
        xbar.new_mem_port().connect(mem.port)
        results = [
            drv.send_timing_req(Packet(MemCmd.ReadReq, i * 64, 8))
            for i in range(4)
        ]
        assert results.count(False) >= 1
        assert xbar.st_rejects.value() >= 1
        sim.run(until=10**6)
        assert retried

    def test_latency_applied(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x", latency_cycles=2)
        arrival = []
        sink = ResponsePort(
            "s", recv_timing_req=lambda pkt: (arrival.append(sim.now), True)[1]
        )
        drv = RequestPort("d", recv_timing_resp=lambda pkt: True,
                          recv_req_retry=lambda: None)
        drv.connect(xbar.new_cpu_port())
        xbar.new_mem_port().connect(sink)
        drv.send_timing_req(Packet(MemCmd.ReadReq, 0, 8))
        sim.run(until=10**6)
        # 2GHz clock: 2 cycles = 1000 ticks minimum
        assert arrival[0] >= 1000

    def test_blocked_response_path_drains_on_retry(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x")
        mem = IdealMemory(sim, "mem", latency_cycles=1)
        accept = {"ok": False}
        got = []

        def recv_resp(pkt):
            if accept["ok"]:
                got.append(pkt)
                return True
            return False

        drv = RequestPort("d", recv_timing_resp=recv_resp,
                          recv_req_retry=lambda: None)
        cpu_port = xbar.new_cpu_port()
        drv.connect(cpu_port)
        xbar.new_mem_port().connect(mem.port)
        drv.send_timing_req(Packet(MemCmd.ReadReq, 0, 8))
        sim.run(until=10**6)
        assert got == []  # response rejected
        accept["ok"] = True
        drv.send_retry_resp()
        assert len(got) == 1

    def test_functional_routes_through(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x")
        mem = IdealMemory(sim, "mem")
        drv = RequestPort("d", recv_timing_resp=lambda pkt: True,
                          recv_req_retry=lambda: None)
        drv.connect(xbar.new_cpu_port())
        xbar.new_mem_port().connect(mem.port)
        mem.physmem.write(0x40, b"\x77" * 8)
        pkt = Packet(MemCmd.ReadReq, 0x40, 8)
        drv.send_functional(pkt)
        assert pkt.data == b"\x77" * 8


class TestStats:
    def test_forwarding_counters(self):
        sim = Simulation()
        xbar = Crossbar(sim, "x")
        mem = IdealMemory(sim, "mem", latency_cycles=1)
        drv = RequestPort("d", recv_timing_resp=lambda pkt: True,
                          recv_req_retry=lambda: None)
        drv.connect(xbar.new_cpu_port())
        xbar.new_mem_port().connect(mem.port)
        for i in range(5):
            drv.send_timing_req(Packet(MemCmd.ReadReq, i * 64, 8))
            sim.run(until=sim.now + 10**5)
        assert xbar.st_reqs.value() == 5
        assert xbar.st_resps.value() == 5
