"""IdealMemory: the normalization baseline."""

from repro.soc.interconnect import Crossbar
from repro.soc.mem import IdealMemory
from repro.soc.packet import MemCmd, Packet
from repro.soc.ports import RequestPort
from repro.soc.simobject import Simulation


def driver(sim, peer):
    times = []
    port = RequestPort(
        "drv",
        recv_timing_resp=lambda pkt: (times.append((pkt, sim.now)), True)[1],
        recv_req_retry=lambda: None,
    )
    port.connect(peer)
    return port, times


class TestIdealMemory:
    def test_fixed_latency(self):
        sim = Simulation()
        mem = IdealMemory(sim, "m", latency_cycles=3)
        port, times = driver(sim, mem.port)
        port.send_timing_req(Packet(MemCmd.ReadReq, 0, 64))
        sim.run(until=10**6)
        assert times[0][1] == 3 * 500  # 3 cycles at 2 GHz

    def test_unbounded_concurrency(self):
        """All outstanding requests complete after one latency."""
        sim = Simulation()
        mem = IdealMemory(sim, "m", latency_cycles=2)
        port, times = driver(sim, mem.port)
        for i in range(50):
            assert port.send_timing_req(Packet(MemCmd.ReadReq, i * 64, 64))
        sim.run(until=10**6)
        assert len(times) == 50
        assert all(t == 2 * 500 for _, t in times)

    def test_write_data_stored(self):
        sim = Simulation()
        mem = IdealMemory(sim, "m")
        port, times = driver(sim, mem.port)
        port.send_timing_req(
            Packet(MemCmd.WriteReq, 0x40, 4, data=b"\xde\xad\xbe\xef")
        )
        sim.run(until=10**6)
        assert mem.physmem.read(0x40, 4) == b"\xde\xad\xbe\xef"
        assert len(times) == 1  # write acked

    def test_writeback_has_no_response(self):
        sim = Simulation()
        mem = IdealMemory(sim, "m")
        port, times = driver(sim, mem.port)
        port.send_timing_req(Packet(MemCmd.WritebackDirty, 0x40, 64))
        sim.run(until=10**6)
        assert times == []

    def test_multichannel_ports_interleave(self):
        sim = Simulation()
        mem = IdealMemory(sim, "m", channels=4)
        xbar = Crossbar(sim, "x")
        port, times = driver(sim, xbar.new_cpu_port())
        mem.connect_xbar(xbar)
        for i in range(8):
            port.send_timing_req(Packet(MemCmd.ReadReq, i * 64, 64))
            sim.run(until=sim.now + 10**5)
        assert len(times) == 8
        assert mem.st_reads.value() == 8

    def test_stats(self):
        sim = Simulation()
        mem = IdealMemory(sim, "m")
        port, _ = driver(sim, mem.port)
        port.send_timing_req(Packet(MemCmd.ReadReq, 0, 64))
        port.send_timing_req(Packet(MemCmd.WriteReq, 64, 64, data=b"\0" * 64))
        sim.run(until=10**6)
        assert mem.st_reads.value() == 1
        assert mem.st_writes.value() == 1
        assert mem.st_bytes.value() == 128
