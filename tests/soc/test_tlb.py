"""TLB and page table."""

import pytest

from repro.soc.simobject import Simulation
from repro.soc.tlb import TLB, PageTable


class TestPageTable:
    def test_identity_unmapped(self):
        pt = PageTable()
        assert pt.lookup(0x1234) is None

    def test_mapping_and_offset(self):
        pt = PageTable()
        pt.map(0x10000, 0x80000, 0x2000)
        assert pt.lookup(0x10004) == 0x80004
        assert pt.lookup(0x11FF8) == 0x81FF8
        assert pt.lookup(0x12000) is None

    def test_unaligned_mapping_rejected(self):
        pt = PageTable()
        with pytest.raises(ValueError):
            pt.map(0x10001, 0x80000, 0x1000)


class TestTLB:
    def test_hit_after_miss(self, sim: Simulation):
        tlb = TLB(sim, "tlb", walk_cycles=20)
        paddr, lat = tlb.translate(0x5000)
        assert lat == 20
        paddr2, lat2 = tlb.translate(0x5008)
        assert lat2 == 0
        assert tlb.hits.value() == 1
        assert tlb.misses.value() == 1

    def test_identity_fallback(self, sim: Simulation):
        tlb = TLB(sim, "tlb")
        paddr, _ = tlb.translate(0xABC123)
        assert paddr == 0xABC123

    def test_mapped_translation(self, sim: Simulation):
        pt = PageTable()
        pt.map(0x10000, 0x90000, 0x1000)
        tlb = TLB(sim, "tlb", page_table=pt)
        paddr, _ = tlb.translate(0x10010)
        assert paddr == 0x90010

    def test_strict_mode_raises_on_unmapped(self, sim: Simulation):
        tlb = TLB(sim, "tlb", identity_fallback=False)
        with pytest.raises(KeyError):
            tlb.translate(0xDEAD000)

    def test_lru_eviction(self, sim: Simulation):
        tlb = TLB(sim, "tlb", entries=2)
        tlb.translate(0x1000)
        tlb.translate(0x2000)
        tlb.translate(0x1000)   # refresh
        tlb.translate(0x3000)   # evicts 0x2000
        tlb.translate(0x1000)
        assert tlb.hits.value() == 2
        tlb.translate(0x2000)   # must walk again
        assert tlb.misses.value() == 4

    def test_flush_clears_entries(self, sim: Simulation):
        tlb = TLB(sim, "tlb")
        tlb.translate(0x1000)
        tlb.flush()
        tlb.translate(0x1000)
        assert tlb.misses.value() == 2
