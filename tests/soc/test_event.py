"""Event queue: ordering, priorities, cancellation, run-until semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.soc.event import (
    ClockDomain,
    Event,
    EventPriority,
    EventQueue,
    frequency_to_period,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        for t in (50, 10, 30):
            q.schedule_fn(lambda t=t: fired.append(t), t)
        q.run()
        assert fired == [10, 30, 50]

    def test_same_tick_insertion_order(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule_fn(lambda i=i: fired.append(i), 100)
        q.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_orders_within_tick(self):
        q = EventQueue()
        fired = []
        q.schedule_fn(lambda: fired.append("stats"), 10, EventPriority.STATS)
        q.schedule_fn(lambda: fired.append("clock"), 10, EventPriority.CLOCK)
        q.schedule_fn(lambda: fired.append("default"), 10)
        q.run()
        assert fired == ["clock", "default", "stats"]

    def test_cur_tick_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule_fn(lambda: seen.append(q.cur_tick), 123)
        q.run()
        assert seen == [123]
        assert q.cur_tick == 123

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule_fn(lambda: None, 100)
        q.run()
        with pytest.raises(ValueError):
            q.schedule_fn(lambda: None, 50)

    def test_double_schedule_rejected(self):
        q = EventQueue()
        ev = Event(lambda: None, "e")
        q.schedule(ev, 10)
        with pytest.raises(RuntimeError):
            q.schedule(ev, 20)

    def test_event_can_be_rescheduled_after_firing(self):
        q = EventQueue()
        count = []
        ev = Event(lambda: count.append(1), "tick")
        q.schedule(ev, 10)
        q.run()
        q.schedule(ev, 20)
        q.run()
        assert len(count) == 2

    def test_events_scheduled_during_execution(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append("first")
            q.schedule_fn(lambda: fired.append("second"), q.cur_tick + 5)

        q.schedule_fn(first, 10)
        q.run()
        assert fired == ["first", "second"]
        assert q.cur_tick == 15


class TestCancellation:
    def test_deschedule_prevents_firing(self):
        q = EventQueue()
        fired = []
        ev = Event(lambda: fired.append(1), "e")
        q.schedule(ev, 10)
        q.deschedule(ev)
        q.run()
        assert fired == []

    def test_deschedule_unscheduled_rejected(self):
        q = EventQueue()
        ev = Event(lambda: None, "e")
        with pytest.raises(RuntimeError):
            q.deschedule(ev)

    def test_reschedule_moves_event(self):
        q = EventQueue()
        seen = []
        ev = Event(lambda: seen.append(q.cur_tick), "e")
        q.schedule(ev, 10)
        q.reschedule(ev, 99)
        q.run()
        assert seen == [99]

    def test_len_counts_only_live_events(self):
        q = EventQueue()
        ev = Event(lambda: None, "e")
        q.schedule(ev, 10)
        q.schedule_fn(lambda: None, 20)
        assert len(q) == 2
        q.deschedule(ev)
        assert len(q) == 1
        assert not q.empty()

    def test_len_tracks_fired_events(self):
        q = EventQueue()
        for t in (10, 20, 30):
            q.schedule_fn(lambda: None, t)
        q.run(until=25)
        assert len(q) == 1
        q.run()
        assert len(q) == 0 and q.empty()


class TestCompaction:
    def test_churn_does_not_grow_heap_unboundedly(self):
        q = EventQueue()
        ev = Event(lambda: None, "churny")
        q.schedule(ev, 1)
        for t in range(2, 5002):
            q.reschedule(ev, t)
        # 5000 reschedules leave one live event; without compaction the
        # heap would hold ~5000 dead entries.
        assert len(q) == 1
        assert len(q._heap) <= 2 * EventQueue.COMPACT_MIN
        assert q.compactions > 0

    def test_events_survive_compaction(self):
        q = EventQueue()
        fired = []
        keepers = [
            q.schedule_fn(lambda t=t: fired.append(t), 10_000 + t)
            for t in range(5)
        ]
        ev = Event(lambda: fired.append(-1), "churny")
        q.schedule(ev, 1)
        for t in range(2, 500):
            q.reschedule(ev, t)
        q.deschedule(ev)
        assert q.compactions > 0
        assert len(q) == len(keepers)
        q.run()
        assert fired == list(range(5))

    def test_small_heaps_never_compact(self):
        q = EventQueue()
        ev = Event(lambda: None, "e")
        q.schedule(ev, 1)
        for t in range(2, EventQueue.COMPACT_MIN // 2):
            q.reschedule(ev, t)
        assert q.compactions == 0

    def test_deschedule_during_callback_keeps_queue_consistent(self):
        # A callback that deschedules enough events to trigger a
        # compaction while run() holds its heap alias.
        q = EventQueue()
        fired = []
        victims = [
            q.schedule_fn(lambda: fired.append("victim"), 1000 + t)
            for t in range(200)
        ]
        survivor = q.schedule_fn(lambda: fired.append("survivor"), 5000)

        def purge():
            for v in victims:
                q.deschedule(v)
            fired.append("purge")

        q.schedule_fn(purge, 10)
        q.run()
        assert fired == ["purge", "survivor"]
        assert q.compactions > 0
        assert q.empty()
        assert not survivor.scheduled


class TestSameTimestampOrdering:
    """Same-tick CLOCK events (RTL tick groups) fire in insertion order
    under the tuple-heap fast path — the invariant the parallel RTL
    scheduler's peel/flush protocol must reproduce exactly."""

    def test_same_tick_clock_events_fire_in_insertion_order(self):
        q = EventQueue()
        fired = []
        for i in range(4):
            q.schedule_fn(lambda i=i: fired.append(i), 500,
                          EventPriority.CLOCK, name=f"rtl{i}")
        q.run()
        assert fired == [0, 1, 2, 3]

    def test_same_tick_order_survives_reschedule_cycle(self):
        # A tick event that reschedules itself (the RTLObject pattern)
        # keeps firing after every other same-tick member scheduled
        # earlier in that cycle, for every cycle.
        q = EventQueue()
        fired = []
        evs = [Event(None, f"rtl{i}") for i in range(3)]

        def make_cb(i):
            def cb():
                fired.append((q.cur_tick, i))
                if q.cur_tick < 30:
                    q.schedule(evs[i], q.cur_tick + 10, EventPriority.CLOCK)
            return cb

        for i, ev in enumerate(evs):
            ev.callback = make_cb(i)
            q.schedule(ev, 10, EventPriority.CLOCK)
        q.run()
        assert fired == [(t, i) for t in (10, 20, 30) for i in range(3)]

    def test_same_tick_order_survives_compaction(self):
        # Threshold-triggered compaction rebuilds the heap; seq numbers
        # survive, so same-(tick, priority) order must be unchanged.
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule_fn(lambda i=i: fired.append(i), 10_000,
                          EventPriority.CLOCK, name=f"rtl{i}")
        churn = Event(lambda: None, "churny")
        q.schedule(churn, 1)
        for t in range(2, 500):
            q.reschedule(churn, t)
        q.deschedule(churn)
        assert q.compactions > 0
        q.run()
        assert fired == [0, 1, 2, 3, 4]


class TestGroupDispatch:
    """peel_group / begin_capture / flush_captured — the seam the
    parallel RTL scheduler uses must account events exactly like
    serial pops and replay serial seq allocation."""

    def _group(self, q, n, tick=100):
        evs = [Event(lambda: None, f"rtl{i}") for i in range(n)]
        for ev in evs:
            q.schedule(ev, tick, EventPriority.CLOCK)
        return evs

    def test_peel_pops_members_in_seq_order(self):
        q = EventQueue()
        evs = self._group(q, 3)
        order = []

        def lead():
            handles = {ev._entry: i for i, ev in enumerate(evs)}
            order.extend(
                handles[h]
                for h in q.peel_group(q.cur_tick, EventPriority.CLOCK,
                                      handles)
            )

        q.schedule_fn(lead, 100, EventPriority.MINIMUM)
        q.run()
        assert order == [0, 1, 2]

    def test_peel_accounts_executed_and_live_like_serial(self):
        q = EventQueue()
        evs = self._group(q, 3)
        counts = {}

        def lead():
            handles = {ev._entry for ev in evs}
            q.peel_group(q.cur_tick, EventPriority.CLOCK, handles)
            counts["executed"] = q.executed
            counts["live"] = len(q)

        q.schedule_fn(lead, 100, EventPriority.MINIMUM)
        q.run()
        # lead + 3 peeled members, nothing left live
        assert q.executed == 4
        assert counts["executed"] == 4  # members counted inside the peel
        assert counts["live"] == 0
        assert all(not ev.scheduled for ev in evs)

    def test_peel_stops_at_non_member_and_later_tick(self):
        q = EventQueue()
        evs = self._group(q, 2)
        outsider = Event(lambda: None, "dram")
        q.schedule(outsider, 100, EventPriority.CLOCK)  # after the group
        later = Event(lambda: None, "rtl-later")
        q.schedule(later, 200, EventPriority.CLOCK)
        peeled = {}

        def lead():
            handles = {ev._entry for ev in evs}
            handles.add(later._entry)  # member, but at a later tick
            peeled["n"] = len(
                q.peel_group(q.cur_tick, EventPriority.CLOCK, handles)
            )

        q.schedule_fn(lead, 100, EventPriority.MINIMUM)
        q.run()
        assert peeled["n"] == 2            # stopped at the outsider
        assert not outsider.scheduled      # ran normally afterwards
        assert q.executed == 5

    def test_peel_discards_dead_tops(self):
        q = EventQueue()
        evs = self._group(q, 3)
        q.deschedule(evs[0])
        n = {}

        def lead():
            handles = {ev._entry for ev in evs[1:]}
            n["peeled"] = len(
                q.peel_group(q.cur_tick, EventPriority.CLOCK, handles)
            )

        q.schedule_fn(lead, 100, EventPriority.MINIMUM)
        q.run()
        assert n["peeled"] == 2

    def test_capture_flush_matches_serial_seq_allocation(self):
        # Two queues receive the same schedule() calls; one through a
        # capture window flushed in the same order.  Their live entries
        # must carry identical (tick, priority, seq) triples — the raw
        # values checkpoints serialize.
        serial, grouped = EventQueue(), EventQueue()
        for target in (serial, grouped):
            target.schedule_fn(lambda: None, 50)  # pre-existing seq drift
        serial.schedule_fn(lambda: None, 110, name="a")
        serial.schedule_fn(lambda: None, 105, name="b")
        grouped.begin_capture()
        grouped.schedule_fn(lambda: None, 110, name="a")
        grouped.schedule_fn(lambda: None, 105, name="b")
        buf = grouped.end_capture()
        grouped.flush_captured(buf)
        key = lambda q: [(e[0], e[1], e[2], e[3].name)  # noqa: E731
                         for e in q.live_entries()]
        assert key(serial) == key(grouped)
        assert serial._seq == grouped._seq

    def test_capture_keeps_scheduled_and_len_truthful(self):
        q = EventQueue()
        q.begin_capture()
        ev = q.schedule_fn(lambda: None, 10)
        assert ev.scheduled
        assert len(q) == 1
        q.flush_captured(q.end_capture())
        q.run()
        assert q.executed == 1

    def test_deschedule_while_buffered_flushes_dead_entry(self):
        # Heap composition parity: the dead handle still lands in the
        # heap (and is skipped at pop), exactly like lazy cancellation.
        q = EventQueue()
        fired = []
        q.begin_capture()
        ev = q.schedule_fn(lambda: fired.append(1), 10)
        q.deschedule(ev)
        q.flush_captured(q.end_capture())
        assert len(q._heap) == 1
        assert len(q) == 0
        q.run()
        assert fired == []

    def test_nested_capture_rejected(self):
        q = EventQueue()
        q.begin_capture()
        with pytest.raises(RuntimeError):
            q.begin_capture()
        q.flush_captured(q.end_capture())

    def test_end_capture_without_begin_rejected(self):
        q = EventQueue()
        with pytest.raises(RuntimeError):
            q.end_capture()


class TestRunUntil:
    def test_until_stops_before_boundary_events(self):
        q = EventQueue()
        fired = []
        q.schedule_fn(lambda: fired.append(10), 10)
        q.schedule_fn(lambda: fired.append(20), 20)
        q.run(until=20)
        assert fired == [10]
        assert q.cur_tick == 20
        q.run()
        assert fired == [10, 20]

    def test_until_advances_time_with_empty_queue(self):
        q = EventQueue()
        q.run(until=500)
        assert q.cur_tick == 500

    def test_max_events_limit(self):
        q = EventQueue()
        fired = []
        for t in range(10):
            q.schedule_fn(lambda t=t: fired.append(t), t + 1)
        q.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_run_resumable(self):
        q = EventQueue()
        fired = []
        for t in (5, 15, 25):
            q.schedule_fn(lambda t=t: fired.append(t), t)
        q.run(until=10)
        q.run(until=20)
        q.run()
        assert fired == [5, 15, 25]

    def test_executed_counter(self):
        q = EventQueue()
        for t in range(4):
            q.schedule_fn(lambda: None, t + 1)
        q.run()
        assert q.executed == 4


class TestClockDomain:
    def test_2ghz_period(self):
        assert frequency_to_period(2e9) == 500

    def test_1ghz_period(self):
        assert frequency_to_period(1e9) == 1000

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            frequency_to_period(0)

    def test_cycle_tick_roundtrip(self):
        clk = ClockDomain(2e9)
        assert clk.cycles_to_ticks(7) == 3500
        assert clk.ticks_to_cycles(3500) == 7

    def test_next_edge_alignment(self):
        clk = ClockDomain(1e9)
        assert clk.next_edge(0) == 0
        assert clk.next_edge(1) == 1000
        assert clk.next_edge(1000) == 1000
        assert clk.next_edge(1001) == 2000

    @given(st.integers(min_value=0, max_value=10**12))
    def test_next_edge_is_aligned_and_not_before(self, now):
        clk = ClockDomain(2e9)
        edge = clk.next_edge(now)
        assert edge >= now
        assert edge % clk.period == 0
        assert edge - now < clk.period


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=-5, max_value=5),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_property_events_fire_in_nondecreasing_order(spec):
    """Whatever is scheduled, callbacks observe non-decreasing time and
    (tick, priority) ordering."""
    q = EventQueue()
    observed = []
    for tick, prio in spec:
        q.schedule_fn(lambda t=tick, p=prio: observed.append((t, p)), tick, prio)
    q.run()
    assert observed == sorted(observed, key=lambda x: (x[0], x[1]))
