"""Packet and MemCmd semantics."""

import pytest

from repro.soc.packet import MemCmd, Packet


class TestMemCmd:
    def test_read_classification(self):
        assert MemCmd.ReadReq.is_read and MemCmd.ReadReq.is_request
        assert MemCmd.ReadResp.is_read and MemCmd.ReadResp.is_response

    def test_write_classification(self):
        assert MemCmd.WriteReq.is_write and MemCmd.WriteReq.needs_response
        assert MemCmd.WritebackDirty.is_write
        assert not MemCmd.WritebackDirty.needs_response

    def test_response_mapping(self):
        assert MemCmd.ReadReq.response_for() is MemCmd.ReadResp
        assert MemCmd.WriteReq.response_for() is MemCmd.WriteResp
        assert MemCmd.PrefetchReq.response_for() is MemCmd.PrefetchResp

    def test_response_for_nonrequest_rejected(self):
        with pytest.raises(ValueError):
            MemCmd.ReadResp.response_for()
        with pytest.raises(ValueError):
            MemCmd.WritebackDirty.response_for()


class TestPacket:
    def test_ids_are_unique(self):
        a = Packet(MemCmd.ReadReq, 0, 8)
        b = Packet(MemCmd.ReadReq, 0, 8)
        assert a.pkt_id != b.pkt_id

    def test_block_addr(self):
        pkt = Packet(MemCmd.ReadReq, 0x1234, 8)
        assert pkt.block_addr(64) == 0x1200

    def test_negative_addr_rejected(self):
        with pytest.raises(ValueError):
            Packet(MemCmd.ReadReq, -1, 8)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(MemCmd.ReadReq, 0, 0)

    def test_make_response_in_place(self):
        pkt = Packet(MemCmd.ReadReq, 0x100, 4)
        resp = pkt.make_response(b"\x01\x02\x03\x04")
        assert resp is pkt
        assert pkt.cmd is MemCmd.ReadResp
        assert pkt.data == b"\x01\x02\x03\x04"

    def test_make_response_validates_length(self):
        pkt = Packet(MemCmd.ReadReq, 0, 4)
        with pytest.raises(ValueError):
            pkt.make_response(b"\x00")

    def test_sender_state_stack_lifo(self):
        pkt = Packet(MemCmd.ReadReq, 0, 8)
        pkt.push_state("a")
        pkt.push_state("b")
        assert pkt.pop_state() == "b"
        assert pkt.pop_state() == "a"

    def test_sender_state_underflow(self):
        pkt = Packet(MemCmd.ReadReq, 0, 8)
        with pytest.raises(RuntimeError):
            pkt.pop_state()

    def test_meta_is_per_packet(self):
        a = Packet(MemCmd.ReadReq, 0, 8)
        b = Packet(MemCmd.ReadReq, 0, 8)
        a.meta["x"] = 1
        assert "x" not in b.meta
