"""Periodic stats dumper."""

import io

import pytest

from repro.soc.cpu import alu
from repro.soc.statsdump import StatsDumper
from repro.soc.system import SoC, SoCConfig


class TestStatsDumper:
    def test_snapshots_at_interval(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        dumper = StatsDumper(soc.sim, interval_cycles=1000)
        soc.cores[0].run_stream([alu(1)] * 9000)
        soc.run_until_done()
        dumper.stop()
        assert len(dumper.snapshots) >= 2
        ticks = [t for t, _ in dumper.snapshots]
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(g == 1000 * 500 for g in gaps)  # 1000 cycles at 2GHz

    def test_series_extraction_monotonic(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        dumper = StatsDumper(soc.sim, interval_cycles=500)
        soc.cores[0].run_stream([alu(1)] * 6000)
        soc.run_until_done()
        dumper.stop()
        series = dumper.series("system.cpu0.committed")
        assert len(series) >= 2
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] <= 6000

    def test_reset_on_dump_gives_deltas(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        dumper = StatsDumper(soc.sim, interval_cycles=500,
                             reset_on_dump=True)
        soc.cores[0].run_stream([alu(1)] * 6000)
        soc.run_until_done()
        dumper.stop()
        deltas = [flat["system.cpu0.committed"]
                  for _, flat in dumper.snapshots]
        # per-interval committed counts, not cumulative
        assert all(d <= 2000 for d in deltas)
        assert sum(deltas) <= 6000

    def test_stream_output(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        out = io.StringIO()
        dumper = StatsDumper(soc.sim, interval_cycles=1000, stream=out)
        soc.cores[0].run_stream([alu(1)] * 3000)
        soc.run_until_done()
        dumper.stop()
        text = out.getvalue()
        assert "---- tick" in text
        assert "system.cpu0.committed" in text

    def test_callback(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        seen = []
        StatsDumper(soc.sim, interval_cycles=1000,
                    on_dump=lambda t, flat: seen.append(t))
        soc.cores[0].run_stream([alu(1)] * 5000)
        soc.run_until_done()
        assert seen

    def test_bad_interval(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        with pytest.raises(ValueError):
            StatsDumper(soc.sim, interval_cycles=0)

    def test_stop_deschedules_mid_run(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        dumper = StatsDumper(soc.sim, interval_cycles=500)
        soc.cores[0].run_stream([alu(1)] * 3000)
        soc.run_until_done()
        dumper.stop()
        count = len(dumper.snapshots)
        assert count >= 2
        assert not dumper._event.scheduled
        # more simulated work after stop() must not grow the history
        soc.cores[0].run_stream([alu(1)] * 3000)
        soc.run_until_done()
        assert len(dumper.snapshots) == count

    def test_stop_is_idempotent(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        dumper = StatsDumper(soc.sim, interval_cycles=500)
        soc.cores[0].run_stream([alu(1)] * 1500)
        soc.run_until_done()
        dumper.stop()
        dumper.stop()
        assert not dumper._event.scheduled

    def test_series_missing_key_is_empty(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        dumper = StatsDumper(soc.sim, interval_cycles=500)
        soc.cores[0].run_stream([alu(1)] * 3000)
        soc.run_until_done()
        dumper.stop()
        assert dumper.series("system.no.such.stat") == []
