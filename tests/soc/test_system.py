"""SoC builder: Table 1 defaults, wiring, end-to-end workload runs."""

import pytest

from repro.soc.cpu import alu, load, store
from repro.soc.system import SoC, SoCConfig


class TestTable1Defaults:
    def test_core_parameters(self):
        cfg = SoCConfig()
        assert cfg.num_cores == 8
        assert cfg.core.issue_width == 3
        assert cfg.core.rob_size == 192
        assert cfg.core.ldq_size == 48
        assert cfg.core.stq_size == 48
        assert cfg.freq_hz == 2e9

    def test_cache_parameters(self):
        cfg = SoCConfig()
        assert cfg.l1i.size == 64 * 1024 and cfg.l1i.assoc == 4
        assert cfg.l1i.latency == 2 and cfg.l1i.mshrs == 8
        assert cfg.l1d.mshrs == 24
        assert cfg.l2.size == 256 * 1024 and cfg.l2.assoc == 8
        assert cfg.l2.latency == 9 and cfg.l2.prefetcher
        assert cfg.llc.size == 16 * 1024 * 1024 and cfg.llc.assoc == 16
        assert cfg.llc.latency == 20

    def test_xbar_parameters(self):
        cfg = SoCConfig()
        assert cfg.xbar_latency == 2


class TestConstruction:
    def test_default_build_has_all_components(self):
        soc = SoC(SoCConfig(num_cores=2, memory="DDR4-1ch"))
        assert len(soc.cores) == 2
        assert len(soc.l1ds) == 2 and len(soc.l1is) == 2 and len(soc.l2s) == 2
        assert soc.llc is not None
        assert soc.mem_ctrl is not None

    def test_memory_presets_buildable(self):
        for mem in ("DDR4-1ch", "DDR4-4ch", "GDDR5", "HBM", "ideal"):
            soc = SoC(SoCConfig(num_cores=1, memory=mem))
            assert soc.mem_ctrl is not None

    def test_no_llc_configuration(self):
        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch", with_llc=False))
        assert soc.llc is None
        assert soc.sysbus is soc.membus

    def test_unknown_memory_rejected(self):
        with pytest.raises(KeyError):
            SoC(SoCConfig(num_cores=1, memory="DDR7"))


class TestExecution:
    def test_single_core_workload(self, small_soc):
        soc = small_soc
        soc.cores[0].run_stream([load(i * 8) for i in range(200)])
        soc.run_until_done()
        assert soc.cores[0].st_committed.value() == 200
        # accesses hit the hierarchy
        assert soc.l1ds[0].st_misses.value() > 0

    def test_multicore_shared_llc(self):
        soc = SoC(SoCConfig(num_cores=2, memory="DDR4-2ch"))
        # both cores read the same region: second core's misses should
        # partially hit in the shared LLC
        addrs = [i * 64 for i in range(100)]
        soc.cores[0].run_stream([load(a) for a in addrs])
        soc.run_until_done(cores=[soc.cores[0]])
        llc_hits_before = soc.llc.st_hits.value()
        soc.cores[1].run_stream([load(a) for a in addrs])
        soc.run_until_done(cores=[soc.cores[1]])
        assert soc.llc.st_hits.value() > llc_hits_before

    def test_writes_reach_physical_memory(self, small_soc):
        soc = small_soc
        soc.cores[0].run_stream([store(0x4000 + i * 8) for i in range(10)])
        soc.run_until_done()
        # store µops write zero payloads; functional image must have frames
        assert soc.physmem.footprint() >= 0  # no crash; data path exercised
        assert soc.cores[0].st_stores.value() == 10

    def test_timeout_raises(self, small_soc):
        soc = small_soc

        def endless():
            while True:
                yield alu(1)

        soc.cores[0].run_stream(endless())
        with pytest.raises(TimeoutError):
            soc.run_until_done(max_ticks=10**6)

    def test_load_memory_backdoor(self, small_soc):
        soc = small_soc
        soc.load_memory(0x8000, b"\x11\x22\x33")
        assert soc.physmem.read(0x8000, 3) == b"\x11\x22\x33"

    def test_stats_dump_has_component_entries(self, small_soc):
        soc = small_soc
        soc.cores[0].run_stream([alu(1)] * 10)
        soc.run_until_done()
        flat = soc.sim.stats_dump()
        assert any("cpu0" in k for k in flat)
        assert any("l1d0" in k for k in flat)
        assert any("mem" in k for k in flat)
