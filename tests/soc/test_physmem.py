"""Functional backing store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.mem.physmem import FRAME_SIZE, PhysicalMemory


class TestBasics:
    def test_reads_are_zero_filled(self):
        mem = PhysicalMemory()
        assert mem.read(0x1234, 16) == b"\0" * 16

    def test_write_read_roundtrip(self):
        mem = PhysicalMemory()
        mem.write(0x1000, b"hello world")
        assert mem.read(0x1000, 11) == b"hello world"

    def test_cross_frame_access(self):
        mem = PhysicalMemory()
        addr = FRAME_SIZE - 4
        mem.write(addr, b"ABCDEFGH")
        assert mem.read(addr, 8) == b"ABCDEFGH"
        assert mem.read(FRAME_SIZE, 4) == b"EFGH"

    def test_word_helpers(self):
        mem = PhysicalMemory()
        mem.write_word(0x100, 0xDEADBEEF, size=4)
        assert mem.read_word(0x100, size=4) == 0xDEADBEEF

    def test_word_truncates_to_size(self):
        mem = PhysicalMemory()
        mem.write_word(0x0, 0x1_0000_0001, size=4)
        assert mem.read_word(0x0, size=4) == 1

    def test_out_of_range_rejected(self):
        mem = PhysicalMemory(size=4096)
        with pytest.raises(ValueError):
            mem.read(4090, 10)
        with pytest.raises(ValueError):
            mem.write(4096, b"x")

    def test_negative_addr_rejected(self):
        mem = PhysicalMemory()
        with pytest.raises(ValueError):
            mem.read(-1, 1)

    def test_zero_size_memory_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(size=0)

    def test_footprint_is_sparse(self):
        mem = PhysicalMemory()
        mem.write(10 * FRAME_SIZE, b"x")
        mem.write(99 * FRAME_SIZE, b"y")
        assert mem.footprint() == 2 * FRAME_SIZE

    def test_overwrite(self):
        mem = PhysicalMemory()
        mem.write(0, b"aaaa")
        mem.write(1, b"bb")
        assert mem.read(0, 4) == b"abba"


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3 * FRAME_SIZE),
            st.binary(min_size=1, max_size=200),
        ),
        max_size=20,
    )
)
def test_property_matches_reference_bytearray(writes):
    """PhysicalMemory behaves exactly like one big zero-filled bytearray."""
    mem = PhysicalMemory()
    ref = bytearray(4 * FRAME_SIZE)
    for addr, data in writes:
        mem.write(addr, data)
        ref[addr : addr + len(data)] = data
    assert mem.read(0, len(ref)) == bytes(ref)
