"""Event-count power model (the McPAT companion)."""

import pytest

from repro.soc.cpu import alu, load
from repro.soc.power import PowerCoefficients, estimate_power
from repro.soc.system import SoC, SoCConfig


def run_soc(n_loads=500, memory="DDR4-1ch"):
    soc = SoC(SoCConfig(num_cores=1, memory=memory))
    soc.cores[0].run_stream(
        u for i in range(n_loads) for u in (load(i * 64), alu(1))
    )
    soc.run_until_done()
    return soc


class TestPowerModel:
    def test_components_present(self):
        report = estimate_power(run_soc())
        names = {c.name for c in report.components}
        assert {"cores", "caches", "llc", "interconnect", "memory"} <= names

    def test_energy_positive_and_consistent(self):
        report = estimate_power(run_soc())
        assert report.total_nj > 0
        assert report.average_watts > 0
        assert report.total_nj == pytest.approx(
            sum(c.total_nj for c in report.components)
        )

    def test_energy_scales_with_activity(self):
        small = estimate_power(run_soc(n_loads=200))
        big = estimate_power(run_soc(n_loads=2000))
        assert big.component("cores").dynamic_nj > (
            3 * small.component("cores").dynamic_nj
        )
        assert big.component("memory").dynamic_nj > (
            3 * small.component("memory").dynamic_nj
        )

    def test_dram_static_scales_with_channels(self):
        one = estimate_power(run_soc(memory="DDR4-1ch"))
        four = estimate_power(run_soc(memory="DDR4-4ch"))
        # per-channel background power
        ratio = (
            four.component("memory").static_nj
            / four.sim_seconds
        ) / (one.component("memory").static_nj / one.sim_seconds)
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_custom_coefficients(self):
        soc = run_soc()
        base = estimate_power(soc)
        doubled = estimate_power(
            soc, PowerCoefficients(core_per_inst_pj=140.0)
        )
        assert doubled.component("cores").dynamic_nj > (
            base.component("cores").dynamic_nj
        )

    def test_rtl_component_uses_area_estimate(self):
        from repro.models.pmu import PMURTLObject, PMUSharedLibrary, load_pmu_source
        from repro.rtl.synth import estimate_verilog

        soc = SoC(SoCConfig(num_cores=1, memory="DDR4-1ch"))
        pmu = PMURTLObject(soc.sim, "pmu", PMUSharedLibrary(),
                           clock=soc.sim.default_clock)
        soc.attach_rtl_cpu_side(pmu)
        soc.cores[0].run_stream([alu(1)] * 2000)
        soc.run_until_done()
        pmu.stop()

        area = estimate_verilog(load_pmu_source(), top="pmu",
                                params={"NCOUNTERS": 20})
        with_area = estimate_power(soc, rtl_kluts={"pmu": area.luts / 1000})
        small = estimate_power(soc, rtl_kluts={"pmu": 0.1})
        assert with_area.component("rtl_models").dynamic_nj > (
            10 * small.component("rtl_models").dynamic_nj
        )

    def test_report_formatting(self):
        text = estimate_power(run_soc()).format_text()
        assert "cores" in text and "W average" in text

    def test_unknown_component_lookup(self):
        report = estimate_power(run_soc())
        with pytest.raises(KeyError):
            report.component("gpu")


class TestSynthEstimator:
    def test_pmu_matches_paper_order_of_magnitude(self):
        """Table 1 footnote: the PMU synthesises to ~5k LUTs on a KC705."""
        from repro.models.pmu import load_pmu_source
        from repro.rtl.synth import estimate_verilog

        report = estimate_verilog(load_pmu_source(), top="pmu",
                                  params={"NCOUNTERS": 20})
        assert 2_000 < report.luts < 10_000
        assert report.ram_bits == 2 * 20 * 32  # counters + thresholds

    def test_area_scales_with_parameters(self):
        from repro.models.pmu import load_pmu_source
        from repro.rtl.synth import estimate_verilog

        small = estimate_verilog(load_pmu_source(), top="pmu",
                                 params={"NCOUNTERS": 4})
        large = estimate_verilog(load_pmu_source(), top="pmu",
                                 params={"NCOUNTERS": 20})
        assert large.luts > 2 * small.luts

    def test_registers_counted_as_ffs(self):
        from repro.rtl.synth import estimate_verilog

        report = estimate_verilog("""
        module t (input clk, input [15:0] d, output [15:0] q);
            reg [15:0] r;
            always @(posedge clk) r <= d;
            assign q = r;
        endmodule
        """)
        assert report.ffs == 16

    def test_multiplier_dominates(self):
        from repro.rtl.synth import estimate_verilog

        report = estimate_verilog("""
        module t (input [15:0] a, input [15:0] b, output [15:0] y);
            assign y = a * b + 1;
        endmodule
        """)
        assert report.by_category["mul"] > report.by_category["arith"]

    def test_generate_multiplies_area(self):
        from repro.rtl.synth import estimate_verilog

        src = """
        module t #(parameter N = {n}) (input [31:0] a, output [31:0] y);
            wire [31:0] acc [0:N];
            genvar i;
            for (i = 0; i < N; i = i + 1) begin : g
                assign y[i] = a[i] & a[(i + 1) % 32];
            end
        endmodule
        """
        small = estimate_verilog(src.format(n=4), top="t")
        large = estimate_verilog(src.format(n=16), top="t")
        assert large.luts > 2 * small.luts

    def test_report_text(self):
        from repro.models.rtlcache import load_rtl_cache_source
        from repro.rtl.synth import estimate_verilog

        text = estimate_verilog(load_rtl_cache_source(),
                                top="rtl_cache").format_text()
        assert "LUTs" in text and "RAM bits" in text
