"""DRAM controller: presets, geometry, row-buffer behaviour, bandwidth,
queue backpressure and write draining."""

import pytest

from repro.soc.interconnect import Crossbar
from repro.soc.mem import (
    BLOCK,
    DRAMController,
    MEMORY_PRESETS,
    ddr4_2400,
    gddr5,
    hbm,
)
from repro.soc.packet import MemCmd, Packet
from repro.soc.ports import RequestPort
from repro.soc.simobject import Simulation


class Driver:
    def __init__(self, sim, port_peer):
        self.sim = sim
        self.responses = []
        self.resp_times = []
        self.port = RequestPort(
            "drv",
            recv_timing_resp=self._on_resp,
            recv_req_retry=lambda: None,
        )
        self.port.connect(port_peer)

    def _on_resp(self, pkt):
        self.responses.append(pkt)
        self.resp_times.append(self.sim.now)
        return True

    def read(self, addr, size=64):
        return self.port.send_timing_req(
            Packet(MemCmd.ReadReq, addr, size, requestor="drv")
        )

    def write(self, addr, data):
        return self.port.send_timing_req(
            Packet(MemCmd.WriteReq, addr, len(data), data=data, requestor="drv")
        )

    def drain(self, ticks=10**8):
        self.sim.run(until=self.sim.now + ticks)


class TestPresets:
    def test_table1_bandwidths(self):
        assert ddr4_2400(1).peak_bw == pytest.approx(18.75)
        assert ddr4_2400(4).peak_bw == pytest.approx(75.0)
        assert gddr5().peak_bw == pytest.approx(112.0)
        assert hbm().peak_bw == pytest.approx(128.0)

    def test_table1_geometry(self):
        assert ddr4_2400().row_buffer_bytes == 8192
        assert gddr5().channels == 4
        assert gddr5().row_buffer_bytes == 2048
        assert hbm().channels == 8

    def test_table1_queues(self):
        cfg = ddr4_2400()
        assert cfg.read_queue == 64
        assert cfg.write_queue == 128

    def test_presets_table_complete(self):
        assert set(MEMORY_PRESETS) == {
            "DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM"
        }

    def test_with_channels(self):
        cfg = ddr4_2400(1).with_channels(4)
        assert cfg.channels == 4
        assert "4ch" in cfg.name

    def test_burst_time(self):
        # 64B at 18.75 GB/s = 3.41ns
        assert ddr4_2400().burst_ns == pytest.approx(64 / 18.75)


class TestGeometryDecode:
    def test_channel_interleave_by_block(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(4))
        assert ctrl.channel_of(0).index == 0
        assert ctrl.channel_of(BLOCK).index == 1
        assert ctrl.channel_of(4 * BLOCK).index == 0

    def test_bank_and_row_decode(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(1))
        ch = ctrl.channels[0]
        b0, r0 = ch.decode(0)
        b1, r1 = ch.decode(8192)     # next row buffer -> next bank
        assert b0 != b1 or r0 != r1
        bN, rN = ch.decode(8192 * ctrl.cfg.banks_per_channel)
        assert bN == b0 and rN == r0 + 1


class TestTiming:
    def test_unloaded_read_latency_in_expected_range(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(1))
        drv = Driver(sim, ctrl.port)
        drv.read(0)
        drv.drain()
        assert len(drv.responses) == 1
        lat_ns = drv.resp_times[0] / 1000
        # row miss: tRP+tRCD+tCAS (~42ns) + burst + frontend
        assert 40 <= lat_ns <= 80

    def test_row_hits_faster_than_conflicts(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(1))
        drv = Driver(sim, ctrl.port)
        drv.read(0)
        drv.drain()
        drv.read(64)       # same row: hit
        drv.drain()
        assert ctrl.st_row_hits.value() == 1
        assert ctrl.st_row_conflicts.value() == 1

    def test_streaming_reaches_near_peak_bandwidth(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(1))
        drv = Driver(sim, ctrl.port)
        n = 500
        issued = 0
        addr = 0

        def pump():
            nonlocal issued, addr
            while issued < n:
                if not drv.read(addr):
                    sim.eventq.schedule_fn(pump, sim.now + 10_000, name="pump")
                    return
                addr += 64
                issued += 1

        pump()
        while len(drv.responses) < n:
            drv.drain(10**7)
        elapsed_ns = drv.resp_times[-1] / 1000
        gbps = n * 64 / elapsed_ns
        assert gbps > 0.85 * 18.75, f"only {gbps:.1f} GB/s"

    def test_writes_acknowledged_quickly(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(1))
        drv = Driver(sim, ctrl.port)
        drv.write(0, b"\x00" * 64)
        drv.drain(100_000)  # 100ns
        assert len(drv.responses) == 1

    def test_functional_write_visible_to_timing_read(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(1))
        drv = Driver(sim, ctrl.port)
        ctrl.physmem.write(0x80, b"\x42" * 64)
        drv.read(0x80)
        drv.drain()
        assert drv.responses[0].data == b"\x42" * 64


class TestBackpressure:
    def test_read_queue_full_rejects(self):
        sim = Simulation()
        cfg = ddr4_2400(1)
        ctrl = DRAMController(sim, "m", cfg)
        drv = Driver(sim, ctrl.port)
        accepted = sum(drv.read(i * 64) for i in range(cfg.read_queue + 20))
        assert accepted <= cfg.read_queue + 2
        assert ctrl.st_rejected.value() > 0

    def test_retry_after_slot_frees(self):
        sim = Simulation()
        ctrl = DRAMController(sim, "m", ddr4_2400(1))
        retried = []
        drv = Driver(sim, ctrl.port)
        drv.port._recv_req_retry = lambda: retried.append(True)
        for i in range(80):
            drv.read(i * 64)
        drv.drain()
        assert retried

    def test_write_drain_under_write_burst(self):
        sim = Simulation()
        cfg = ddr4_2400(1)
        ctrl = DRAMController(sim, "m", cfg)
        drv = Driver(sim, ctrl.port)
        for i in range(110):
            drv.write(i * 64, b"\0" * 64)
        drv.drain()
        assert ctrl.st_writes_drained.value() == 110


class TestMultiChannel:
    def test_channels_serve_in_parallel(self):
        """4 channels stream markedly faster than 1 for spread traffic.

        A single requester is capped by its own 128-bit crossbar port
        (~32 GB/s at 2 GHz), so the expected speedup over DDR4-1ch's
        18.75 GB/s is ~1.7x, not 4x.
        """

        def stream_time(channels):
            sim = Simulation()
            ctrl = DRAMController(sim, "m", ddr4_2400(channels))
            xbar = Crossbar(sim, "x")
            drv = Driver(sim, xbar.new_cpu_port())
            ctrl.connect_xbar(xbar)
            n = 256
            state = {"issued": 0}

            def pump():
                while state["issued"] < n:
                    if not drv.read(state["issued"] * 64):
                        sim.eventq.schedule_fn(pump, sim.now + 5000, name="p")
                        return
                    state["issued"] += 1

            pump()
            while len(drv.responses) < n:
                drv.drain(10**7)
            return drv.resp_times[-1]

        t1 = stream_time(1)
        t4 = stream_time(4)
        assert t4 < t1 / 1.5, (t1, t4)
