"""Timing ports: binding, the three-call retry protocol, functional path."""

import pytest

from repro.soc.packet import MemCmd, Packet
from repro.soc.ports import RequestPort, RequestPortWithRetry, ResponsePort


def _pkt() -> Packet:
    return Packet(MemCmd.ReadReq, 0x40, 8)


class TestBinding:
    def test_connect_pairs_ports(self):
        req = RequestPort("req")
        resp = ResponsePort("resp")
        req.connect(resp)
        assert req.peer is resp and resp.peer is req
        assert req.connected and resp.connected

    def test_connect_from_response_side(self):
        req = RequestPort("req")
        resp = ResponsePort("resp")
        resp.connect(req)
        assert req.peer is resp

    def test_double_connect_rejected(self):
        req = RequestPort("r1")
        resp = ResponsePort("s1")
        req.connect(resp)
        with pytest.raises(RuntimeError):
            RequestPort("r2").connect(resp)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            RequestPort("a").connect(RequestPort("b"))  # type: ignore[arg-type]

    def test_send_unbound_rejected(self):
        with pytest.raises(RuntimeError):
            RequestPort("r").send_timing_req(_pkt())


class TestProtocol:
    def _pair(self, accept_req=True, accept_resp=True):
        log = []
        resp = ResponsePort(
            "resp",
            recv_timing_req=lambda pkt: (log.append(("req", pkt)), accept_req)[1],
            recv_resp_retry=lambda: log.append(("resp_retry", None)),
            recv_functional=lambda pkt: log.append(("func", pkt)),
        )
        req = RequestPort(
            "req",
            recv_timing_resp=lambda pkt: (log.append(("resp", pkt)), accept_resp)[1],
            recv_req_retry=lambda: log.append(("req_retry", None)),
        )
        req.connect(resp)
        return req, resp, log

    def test_accepted_request_reaches_handler(self):
        req, resp, log = self._pair()
        pkt = _pkt()
        assert req.send_timing_req(pkt)
        assert log == [("req", pkt)]

    def test_rejected_request_marks_waiting(self):
        req, resp, log = self._pair(accept_req=False)
        assert not req.send_timing_req(_pkt())
        assert req.waiting_retry

    def test_retry_notification(self):
        req, resp, log = self._pair(accept_req=False)
        req.send_timing_req(_pkt())
        resp.send_retry_req()
        assert ("req_retry", None) in log
        assert not req.waiting_retry

    def test_response_path(self):
        req, resp, log = self._pair()
        pkt = _pkt().make_response(b"\0" * 8)
        assert resp.send_timing_resp(pkt)
        assert ("resp", pkt) in log

    def test_rejected_response_and_retry(self):
        req, resp, log = self._pair(accept_resp=False)
        assert not resp.send_timing_resp(_pkt())
        assert resp.resp_waiting_retry
        req.send_retry_resp()
        assert ("resp_retry", None) in log
        assert not resp.resp_waiting_retry

    def test_functional_bypasses_timing(self):
        req, resp, log = self._pair()
        pkt = _pkt()
        req.send_functional(pkt)
        assert log == [("func", pkt)]


class TestRequestPortWithRetry:
    def _sink(self, accept_first_n: int):
        """A ResponsePort that rejects after the first N requests."""
        state = {"accepted": 0}
        received = []

        def recv(pkt):
            if state["accepted"] < accept_first_n:
                state["accepted"] += 1
                received.append(pkt)
                return True
            return False

        resp = ResponsePort("sink", recv_timing_req=recv)
        return resp, received, state

    def test_try_send_immediate(self):
        resp, received, _ = self._sink(10)
        port = RequestPortWithRetry("p")
        port.connect(resp)
        assert port.try_send(_pkt())
        assert not port.blocked
        assert len(received) == 1

    def test_try_send_parks_on_reject(self):
        resp, received, state = self._sink(0)
        port = RequestPortWithRetry("p")
        port.connect(resp)
        assert not port.try_send(_pkt())
        assert port.blocked
        # unblock the sink and retry
        state["accepted"] = -10
        resp.send_retry_req()
        assert not port.blocked
        assert len(received) == 1

    def test_try_send_while_blocked_rejected(self):
        resp, _, _ = self._sink(0)
        port = RequestPortWithRetry("p")
        port.connect(resp)
        port.try_send(_pkt())
        with pytest.raises(RuntimeError):
            port.try_send(_pkt())

    def test_on_unblock_callback(self):
        resp, _, state = self._sink(0)
        port = RequestPortWithRetry("p")
        port.connect(resp)
        fired = []
        port.on_unblock(lambda: fired.append(True))
        port.try_send(_pkt())
        state["accepted"] = -10
        resp.send_retry_req()
        assert fired == [True]
