"""Cache: hits/misses, MSHR coalescing and limits, eviction/writeback,
prefetching.  Uses an IdealMemory downstream so timing is deterministic."""

import pytest

from repro.soc.cache import BLOCK, Cache, StridePrefetcher
from repro.soc.mem import IdealMemory, PhysicalMemory
from repro.soc.packet import MemCmd, Packet
from repro.soc.ports import RequestPort
from repro.soc.simobject import Simulation


class Harness:
    """Drives a cache's cpu_side and records responses."""

    def __init__(self, sim: Simulation, cache: Cache):
        self.sim = sim
        self.responses: list[Packet] = []
        self.rejects = 0
        self.port = RequestPort(
            "driver",
            recv_timing_resp=lambda pkt: (self.responses.append(pkt), True)[1],
            recv_req_retry=lambda: None,
        )
        self.port.connect(cache.cpu_side)

    def read(self, addr: int, size: int = 8) -> bool:
        ok = self.port.send_timing_req(
            Packet(MemCmd.ReadReq, addr, size, requestor="drv")
        )
        if not ok:
            self.rejects += 1
        return ok

    def write(self, addr: int, data: bytes) -> bool:
        ok = self.port.send_timing_req(
            Packet(MemCmd.WriteReq, addr, len(data), data=data, requestor="drv")
        )
        if not ok:
            self.rejects += 1
        return ok

    def drain(self, ticks: int = 10**7) -> None:
        self.sim.run(until=self.sim.now + ticks)


@pytest.fixture
def rig():
    sim = Simulation()
    cache = Cache(sim, "c", size=4 * 1024, assoc=2, latency_cycles=2, mshrs=4)
    mem = IdealMemory(sim, "mem", latency_cycles=5)
    cache.mem_side.connect(mem.port)
    return sim, cache, Harness(sim, cache), mem


class TestHitMiss:
    def test_cold_miss_then_hit(self, rig):
        sim, cache, h, _ = rig
        h.read(0x100)
        h.drain()
        assert cache.st_misses.value() == 1
        h.read(0x108)  # same block
        h.drain()
        assert cache.st_hits.value() == 1
        assert len(h.responses) == 2

    def test_distinct_blocks_all_miss(self, rig):
        sim, cache, h, _ = rig
        for i in range(3):
            h.read(i * BLOCK)
            h.drain()
        assert cache.st_misses.value() == 3

    def test_response_carries_data(self, rig):
        sim, cache, h, mem = rig
        mem.physmem.write(0x200, b"\xaa" * 8)
        h.read(0x200)
        h.drain()
        assert h.responses[0].data == b"\xaa" * 8

    def test_write_then_read_returns_written_data(self, rig):
        sim, cache, h, mem = rig
        h.write(0x300, b"\x11" * 8)
        h.drain()
        h.read(0x300)
        h.drain()
        assert h.responses[-1].data == b"\x11" * 8

    def test_line_straddling_request_rejected(self, rig):
        sim, cache, h, _ = rig
        with pytest.raises(ValueError):
            h.read(BLOCK - 4, size=8)

    def test_hit_latency_is_configured_latency(self, rig):
        sim, cache, h, _ = rig
        h.read(0x100)
        h.drain()
        start = sim.now
        h.read(0x100)
        h.drain()
        latency_ticks = h.responses[1].resp_tick or sim.now
        # hit = 2 cycles of the 2GHz clock = 1000 ticks
        assert cache.st_hits.value() == 1


class TestMSHR:
    def test_same_block_misses_coalesce(self, rig):
        sim, cache, h, _ = rig
        h.read(0x400)
        h.read(0x408)
        h.read(0x410)
        h.drain()
        assert cache.st_misses.value() == 3
        assert cache.st_coalesced.value() == 2
        assert len(h.responses) == 3

    def test_mshr_exhaustion_rejects(self, rig):
        sim, cache, h, _ = rig
        accepted = sum(h.read(i * BLOCK) for i in range(6))
        # 4 MSHRs -> at most 4 outstanding blocks accepted at once
        assert accepted == 4
        assert cache.st_mshr_rejects.value() == 2
        h.drain()
        assert len(h.responses) == 4

    def test_retry_sent_after_fill(self, rig):
        sim, cache, h, _ = rig
        retried = []
        h.port._recv_req_retry = lambda: retried.append(True)
        for i in range(5):
            h.read(i * BLOCK)
        h.drain()
        assert retried, "cache must send a retry once an MSHR frees"

    def test_mshr_occupancy_tracks_outstanding(self, rig):
        sim, cache, h, _ = rig
        h.read(0)
        h.read(BLOCK)
        assert cache.mshr_occupancy() == 2
        h.drain()
        assert cache.mshr_occupancy() == 0


class TestEviction:
    def test_eviction_after_filling_a_set(self, rig):
        sim, cache, h, _ = rig
        sets = cache.num_sets
        # 3 blocks mapping to set 0 with assoc 2 -> one eviction
        for i in range(3):
            h.read(i * sets * BLOCK)
            h.drain()
        assert cache.st_evictions.value() == 1

    def test_lru_victim_selection(self, rig):
        sim, cache, h, _ = rig
        sets = cache.num_sets
        a, b, c = (i * sets * BLOCK for i in range(3))
        h.read(a); h.drain()
        h.read(b); h.drain()
        h.read(a); h.drain()   # touch a: b becomes LRU
        h.read(c); h.drain()   # evicts b
        assert cache.contains(a) and cache.contains(c)
        assert not cache.contains(b)

    def test_dirty_eviction_emits_writeback(self, rig):
        sim, cache, h, mem = rig
        sets = cache.num_sets
        h.write(0, b"\xcc" * 8); h.drain()
        h.read(1 * sets * BLOCK); h.drain()
        h.read(2 * sets * BLOCK); h.drain()
        assert cache.st_writebacks.value() == 1

    def test_clean_eviction_no_writeback(self, rig):
        sim, cache, h, _ = rig
        sets = cache.num_sets
        for i in range(3):
            h.read(i * sets * BLOCK); h.drain()
        assert cache.st_writebacks.value() == 0


class TestWritebackAbsorption:
    def test_l2_absorbs_l1_writeback(self):
        sim = Simulation()
        l1 = Cache(sim, "l1", 1024, 2, 1, mshrs=4)
        l2 = Cache(sim, "l2", 8 * 1024, 4, 2, mshrs=8)
        mem = IdealMemory(sim, "mem", latency_cycles=3)
        h = Harness(sim, l1)
        l1.mem_side.connect(l2.cpu_side)
        l2.mem_side.connect(mem.port)

        sets = l1.num_sets
        h.write(0, b"\x55" * 8); h.drain()
        h.read(1 * sets * 64); h.drain()
        h.read(2 * sets * 64); h.drain()  # evict dirty line from L1
        assert l1.st_writebacks.value() == 1
        # L2 has the block (allocated by the earlier fill): absorbed
        assert l2.contains(0)


class TestPrefetcher:
    def test_stride_stream_triggers_prefetches(self):
        sim = Simulation()
        pf = StridePrefetcher(degree=2)
        cache = Cache(sim, "c", 64 * 1024, 4, 2, mshrs=16, prefetcher=pf)
        mem = IdealMemory(sim, "mem", latency_cycles=3)
        cache.mem_side.connect(mem.port)
        h = Harness(sim, cache)
        for i in range(8):
            h.read(i * BLOCK)
            h.drain()
        assert cache.st_prefetches.value() > 0

    def test_prefetch_hits_counted(self):
        sim = Simulation()
        pf = StridePrefetcher(degree=4)
        cache = Cache(sim, "c", 64 * 1024, 4, 2, mshrs=16, prefetcher=pf)
        mem = IdealMemory(sim, "mem", latency_cycles=3)
        cache.mem_side.connect(mem.port)
        h = Harness(sim, cache)
        for i in range(16):
            h.read(i * BLOCK)
            h.drain()
        assert cache.st_prefetch_hits.value() > 0
        # prefetching reduced demand misses below the block count
        assert cache.st_misses.value() < 16

    def test_random_stream_no_prefetch_storm(self):
        sim = Simulation()
        pf = StridePrefetcher(degree=2)
        cache = Cache(sim, "c", 64 * 1024, 4, 2, mshrs=16, prefetcher=pf)
        mem = IdealMemory(sim, "mem", latency_cycles=3)
        cache.mem_side.connect(mem.port)
        h = Harness(sim, cache)
        import random

        rng = random.Random(9)
        for _ in range(30):
            h.read(rng.randrange(0, 1 << 20) & ~63)
            h.drain()
        assert cache.st_prefetches.value() <= 6


class TestMissListeners:
    def test_listener_fires_per_demand_miss(self, rig):
        sim, cache, h, _ = rig
        events = []
        cache.miss_listeners.append(lambda pkt: events.append(pkt.addr))
        h.read(0x100); h.drain()
        h.read(0x100); h.drain()
        h.read(0x100 + BLOCK); h.drain()
        assert len(events) == 2


class TestGeometry:
    def test_bad_size_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            Cache(sim, "c", size=1000, assoc=3, latency_cycles=1, mshrs=4)

    def test_occupancy_counts_lines(self, rig):
        sim, cache, h, _ = rig
        h.read(0); h.read(BLOCK)
        h.drain()
        assert cache.occupancy() == 2
