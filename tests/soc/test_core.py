"""OoO core model: issue/commit behaviour, queues, sleep, event wires."""

import pytest

from repro.soc.cpu import OoOCore, UopStream, alu, branch, load, sleep, store
from repro.soc.cpu.core import EventWire
from repro.soc.mem import IdealMemory
from repro.soc.simobject import Simulation


def make_rig(latency=1, **core_kwargs):
    sim = Simulation()
    core = OoOCore(sim, "cpu", **core_kwargs)
    mem = IdealMemory(sim, "mem", latency_cycles=latency)
    core.dcache_port.connect(mem.port)
    return sim, core, mem


def run_to_done(sim, core, max_ticks=10**10):
    sim.startup()
    while not core.done and sim.now < max_ticks:
        sim.run(until=sim.now + 10**6)
    assert core.done, "core did not finish"


class TestCommit:
    def test_all_uops_commit(self):
        sim, core, _ = make_rig()
        core.run_stream([alu(1)] * 100)
        run_to_done(sim, core)
        assert core.st_committed.value() == 100

    def test_alu_only_ipc_close_to_issue_width(self):
        sim, core, _ = make_rig()
        core.run_stream([alu(1)] * 3000)
        run_to_done(sim, core)
        assert core.ipc() > 2.0  # 3-wide issue

    def test_commit_width_bounds_ipc(self):
        sim, core, _ = make_rig(issue_width=8, commit_width=2)
        core.run_stream([alu(1)] * 2000)
        run_to_done(sim, core)
        assert core.ipc() <= 2.0 + 1e-9

    def test_loads_and_stores_counted(self):
        sim, core, _ = make_rig()
        core.run_stream([load(0x100), store(0x200), alu(1)] * 50)
        run_to_done(sim, core)
        assert core.st_loads.value() == 50
        assert core.st_stores.value() == 50
        assert core.st_committed.value() == 150


class TestBranches:
    def test_mispredicts_slow_execution(self):
        def stream(mispredict):
            return [u for _ in range(500)
                    for u in (alu(1), branch(mispredict))]

        sim1, core1, _ = make_rig()
        core1.run_stream(stream(False))
        run_to_done(sim1, core1)

        sim2, core2, _ = make_rig()
        core2.run_stream(stream(True))
        run_to_done(sim2, core2)

        assert core2.st_mispredicts.value() == 500
        assert core1.st_mispredicts.value() == 0
        assert core2.st_cycles.value() > 3 * core1.st_cycles.value()

    def test_branch_stats(self):
        sim, core, _ = make_rig()
        core.run_stream([branch(False), branch(True)] * 10)
        run_to_done(sim, core)
        assert core.st_branches.value() == 20
        assert core.st_mispredicts.value() == 10


class TestMemoryBehaviour:
    def test_load_latency_hides_with_ilp(self):
        """Independent loads overlap: runtime << loads * latency."""
        sim, core, _ = make_rig(latency=20)
        n = 200
        core.run_stream([load(i * 64) for i in range(n)])
        run_to_done(sim, core)
        serial_cycles = n * 20
        assert core.st_cycles.value() < serial_cycles / 2

    def test_ldq_bounds_outstanding_loads(self):
        sim, core, mem = make_rig(latency=50, ldq_size=4)
        core.run_stream([load(i * 64) for i in range(40)])
        sim.startup()
        peak = 0
        while not core.done:
            sim.run(until=sim.now + 1000)
            peak = max(peak, core._ldq_used)
        assert peak <= 4

    def test_rob_limits_window(self):
        sim, core, _ = make_rig(latency=100, rob_size=8)
        core.run_stream([load(0x40), *([alu(1)] * 20)] * 10)
        sim.startup()
        peak = 0
        while not core.done:
            sim.run(until=sim.now + 1000)
            peak = max(peak, len(core._rob))
        assert peak <= 8


class TestSleep:
    def test_sleep_advances_cycles_without_commits(self):
        sim, core, _ = make_rig()
        core.run_stream([alu(1), sleep(5000), alu(1)])
        run_to_done(sim, core)
        assert core.st_sleep_cycles.value() == 5000
        assert core.st_cycles.value() >= 5000
        assert core.st_committed.value() == 2

    def test_sleep_drains_rob_first(self):
        sim, core, _ = make_rig(latency=30)
        core.run_stream([load(0x40), sleep(100), alu(1)])
        run_to_done(sim, core)
        assert core.st_committed.value() == 2


class TestEventWire:
    def test_pulse_and_drain(self):
        w = EventWire("w")
        w.pulse(3)
        assert w.drain(2) == 2
        assert w.count == 1
        assert w.drain() == 1
        assert w.count == 0

    def test_commit_wire_totals_match(self):
        sim, core, _ = make_rig()
        core.run_stream([alu(1)] * 123)
        sim.startup()
        drained = 0
        while not core.done:
            sim.run(until=sim.now + 500)
            drained += core.commit_wire.drain()
        drained += core.commit_wire.drain()
        assert drained == 123


class TestDone:
    def test_on_done_callback(self):
        sim, core, _ = make_rig()
        fired = []
        core.run_stream([alu(1)] * 10)
        core.on_done = lambda: fired.append(True)
        run_to_done(sim, core)
        assert fired == [True]

    def test_empty_stream_finishes(self):
        sim, core, _ = make_rig()
        core.run_stream([])
        run_to_done(sim, core)
        assert core.st_committed.value() == 0

    def test_uop_stream_lookahead(self):
        s = UopStream(iter([alu(1), alu(2)]))
        assert s.peek() == (0, 1)
        assert s.pop() == (0, 1)
        assert s.pop() == (0, 2)
        assert s.exhausted
        assert s.consumed == 2
