"""Setuptools shim.

Kept so that ``pip install -e .`` works on minimal offline environments
where the ``wheel`` package (required for PEP 660 editable installs with
older setuptools) is unavailable: pip falls back to the legacy
``setup.py develop`` path when this file exists.
"""

from setuptools import setup

setup()
